//! The paper's motivating scenario: rank a small set of "search result"
//! nodes in a large social network — most of them low-centrality, exactly
//! where plain sampling estimators produce meaningless rankings.
//!
//! Run with: `cargo run --release --example social_subset`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_baselines::{exact_betweenness, kadabra, KadabraConfig};
use saphyra_gen::datasets::{flickr_sim, SizeClass};
use saphyra_stats::{relative_errors, spearman_vs_truth};

fn main() {
    let g = flickr_sim(SizeClass::Small, 7);
    println!(
        "flickr-sim: {} nodes, {} edges (BA core + pendant leaves)",
        g.num_nodes(),
        g.num_edges()
    );

    // 60 random "search results".
    let mut rng = StdRng::seed_from_u64(1);
    let mut targets: Vec<u32> = Vec::new();
    while targets.len() < 60 {
        let v = rng.gen_range(0..g.num_nodes() as u32);
        if !targets.contains(&v) {
            targets.push(v);
        }
    }
    targets.sort_unstable();

    println!("computing exact ground truth (parallel Brandes)...");
    let truth = exact_betweenness(&g, 0);
    let truth_sub: Vec<f64> = targets.iter().map(|&v| truth[v as usize]).collect();

    let (eps, delta) = (0.05, 0.01);

    // SaPHyRa_bc on the subset.
    let t0 = std::time::Instant::now();
    let index = BcIndex::new(&g);
    let est = index.rank_subset(&targets, &SaphyraBcConfig::new(eps, delta), &mut rng);
    let t_saphyra = t0.elapsed().as_secs_f64();

    // KADABRA must estimate the whole network to answer the same query.
    let t0 = std::time::Instant::now();
    let kad = kadabra(&g, &KadabraConfig::new(eps, delta), &mut rng);
    let t_kadabra = t0.elapsed().as_secs_f64();
    let kad_sub = kad.subset(&targets);

    let rho_s = spearman_vs_truth(&est.bc, &truth_sub);
    let rho_k = spearman_vs_truth(&kad_sub, &truth_sub);
    let fz_s = relative_errors(&est.bc, &truth_sub, 150.0, 10).false_zero_frac;
    let fz_k = relative_errors(&kad_sub, &truth_sub, 150.0, 10).false_zero_frac;

    println!(
        "\n{:<12} {:>9} {:>12} {:>14}",
        "algorithm", "time(s)", "spearman ρ", "false zeros %"
    );
    println!(
        "{:<12} {:>9.3} {:>12.3} {:>14.1}",
        "SaPHyRa",
        t_saphyra,
        rho_s,
        100.0 * fz_s
    );
    println!(
        "{:<12} {:>9.3} {:>12.3} {:>14.1}",
        "KADABRA",
        t_kadabra,
        rho_k,
        100.0 * fz_k
    );
    println!(
        "\nSaPHyRa's exact subspace guarantees zero false zeros (Lemma 19): {}",
        if fz_s == 0.0 {
            "confirmed ✓"
        } else {
            "VIOLATED"
        }
    );
    assert_eq!(fz_s, 0.0);
}
