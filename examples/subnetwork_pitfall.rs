//! The paper's opening motivation, quantified: computing centrality on a
//! *cut-out* subnetwork (here: one metropolitan area extracted from the
//! road network) misjudges the nodes' importance in the complete network —
//! through-traffic vanishes at the cut. SaPHyRa_bc ranks the same nodes
//! *within* the full network, at comparable cost, with a guarantee.
//!
//! Run with: `cargo run --release --example subnetwork_pitfall`

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_gen::datasets::{road_sim, SizeClass};
use saphyra_graph::brandes::betweenness_exact_parallel;
use saphyra_graph::subgraph::Subgraph;
use saphyra_stats::spearman_vs_truth;

fn main() {
    let road = road_sim(SizeClass::Small, 21);
    let g = &road.graph;
    let area = road.case_study_areas().remove(3); // FL analogue: largest area
    let targets = area.nodes(&road);
    println!(
        "road network: {} nodes; area {:?}: {} nodes",
        g.num_nodes(),
        area.name,
        targets.len()
    );

    // Ground truth: exact betweenness in the COMPLETE network.
    let truth_full = betweenness_exact_parallel(g, 0);
    let truth_sub: Vec<f64> = targets.iter().map(|&v| truth_full[v as usize]).collect();

    // The pitfall: cut the area out and compute exact centrality inside it.
    let t0 = std::time::Instant::now();
    let cut = Subgraph::induced(g, &targets);
    let bc_cut_local = betweenness_exact_parallel(&cut.graph, 0);
    let bc_cut: Vec<f64> = targets
        .iter()
        .map(|&v| bc_cut_local[cut.local_of(v).unwrap() as usize])
        .collect();
    let t_cut = t0.elapsed().as_secs_f64();

    // The remedy: SaPHyRa_bc on the full network, targets = the area.
    let t0 = std::time::Instant::now();
    let index = BcIndex::new(g);
    let mut rng = StdRng::seed_from_u64(4);
    let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.02, 0.05), &mut rng);
    let t_saphyra = t0.elapsed().as_secs_f64();

    let rho_cut = spearman_vs_truth(&bc_cut, &truth_sub);
    let rho_saphyra = spearman_vs_truth(&est.bc, &truth_sub);
    println!("\n{:<28} {:>9} {:>12}", "method", "time(s)", "spearman ρ");
    println!(
        "{:<28} {:>9.3} {:>12.3}",
        "exact BC on cut-out area", t_cut, rho_cut
    );
    println!(
        "{:<28} {:>9.3} {:>12.3}",
        "SaPHyRa_bc on full network", t_saphyra, rho_saphyra
    );
    println!(
        "\nthe cut-out loses all through-traffic: its 'exact' answer ranks the area worse\n\
         than a sampled ranking that sees the whole network (§I of the paper)."
    );
    assert!(
        rho_saphyra > rho_cut,
        "expected subnetwork analysis to underperform: {rho_saphyra} vs {rho_cut}"
    );
}
