//! The exact-computation dividend of the bi-component machinery: exact
//! betweenness via per-component weighted Brandes ("shattering", the
//! paper's [22]) versus textbook Brandes, on a pendant-heavy network.
//!
//! Run with: `cargo run --release --example exact_oracle`

use saphyra::bc::BcIndex;
use saphyra_gen::datasets::{flickr_sim, SizeClass};
use saphyra_graph::brandes::betweenness_exact;

fn main() {
    let g = flickr_sim(SizeClass::Small, 11);
    println!(
        "flickr-sim: {} nodes, {} edges (half of them pendant leaves)",
        g.num_nodes(),
        g.num_edges()
    );

    let t0 = std::time::Instant::now();
    let index = BcIndex::new(&g);
    let shattered = index.exact_betweenness_shattered();
    let t_shattered = t0.elapsed().as_secs_f64();
    println!(
        "decomposition: {} bi-components (largest {})",
        index.bic.num_bicomps,
        (0..index.bic.num_bicomps as u32)
            .map(|b| index.bic.size_of(b))
            .max()
            .unwrap_or(0)
    );

    let t0 = std::time::Instant::now();
    let brandes = betweenness_exact(&g);
    let t_brandes = t0.elapsed().as_secs_f64();

    let max_err = shattered
        .iter()
        .zip(&brandes)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("\nbrandes    {t_brandes:.3}s");
    println!("shattered  {t_shattered:.3}s  (includes the decomposition)");
    println!("max |difference| = {max_err:.2e}");
    assert!(max_err < 1e-10, "oracles disagree");
    println!(
        "speedup {:.1}x — every pendant leaf becomes a 2-node block whose pair\n\
         dependencies are closed-form, so the weighted Brandes only sweeps the core.",
        t_brandes / t_shattered.max(1e-9)
    );
}
