//! Framework generality (paper §II-A): the same sample-space-partitioning
//! machinery ranking nodes by k-path centrality instead of betweenness.
//!
//! Run with: `cargo run --release --example framework_kpath`

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::kpath::{kpath_direct_monte_carlo, rank_kpath};
use saphyra_gen::ba::barabasi_albert;
use saphyra_stats::spearman_vs_truth;

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let g = barabasi_albert(2000, 3, &mut rng);
    println!(
        "BA network: {} nodes, {} edges; ranking 30 nodes by {}-path centrality",
        g.num_nodes(),
        g.num_edges(),
        6
    );

    let targets: Vec<u32> = (0..30u32).map(|i| i * 61 % 2000).collect();
    let k = 6;

    // SaPHyRa partition: exact mass of the l = 1 walks (λ̂ = 1/k) plus
    // adaptive sampling of the l ≥ 2 walks.
    let t0 = std::time::Instant::now();
    let est = rank_kpath(&g, &targets, k, 0.01, 0.05, &mut rng);
    let t_part = t0.elapsed().as_secs_f64();

    // Reference: brute-force Monte Carlo over the full walk space.
    let reference = kpath_direct_monte_carlo(&g, &targets, k, 2_000_000, &mut rng);

    let rho = spearman_vs_truth(&est.kpc, &reference);
    println!(
        "partitioned estimator: {} samples in {:.3}s; λ = {:.3}",
        est.inner.outcome.samples_used, t_part, est.inner.lambda
    );
    println!("spearman ρ vs high-precision reference: {rho:.3}");

    println!("\ntop 5 targets by k-path centrality:");
    for &i in est.inner.ranking().iter().take(5) {
        println!(
            "  node {:>5}: kpc = {:.5} (exact-part {:.5})",
            targets[i], est.kpc[i], est.inner.exact_part[i]
        );
    }
    assert!(rho > 0.8, "rank quality degraded: {rho}");
}
