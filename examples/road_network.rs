//! The Fig. 7 scenario: rank the intersections of one metropolitan area
//! inside a country-scale road network, without analyzing a cut-out
//! subnetwork (which the paper warns misestimates centrality).
//!
//! Run with: `cargo run --release --example road_network`

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_baselines::exact_betweenness;
use saphyra_gen::datasets::{road_sim, SizeClass};
use saphyra_stats::{rank_deviation, spearman_vs_truth};

fn main() {
    let road = road_sim(SizeClass::Small, 3);
    let g = &road.graph;
    println!(
        "usa-road-sim: {} nodes, {} edges ({}×{} perturbed grid)",
        g.num_nodes(),
        g.num_edges(),
        road.width,
        road.height
    );

    let index = BcIndex::new(g);
    println!(
        "decomposition: {} bi-components, {} cutpoints, γ = {:.4}",
        index.bic.num_bicomps,
        index.bic.is_cutpoint.iter().filter(|&&c| c).count(),
        index.gamma
    );

    println!("computing exact ground truth (parallel Brandes)...");
    let truth = exact_betweenness(g, 0);

    let mut rng = StdRng::seed_from_u64(9);
    println!(
        "\n{:<6} {:>7} {:>9} {:>10} {:>12} {:>9}",
        "area", "nodes", "time(s)", "samples", "spearman ρ", "rankdev%"
    );
    for area in road.case_study_areas() {
        let targets = area.nodes(&road);
        let truth_sub: Vec<f64> = targets.iter().map(|&v| truth[v as usize]).collect();
        let t0 = std::time::Instant::now();
        let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.05, 0.01), &mut rng);
        let secs = t0.elapsed().as_secs_f64();
        println!(
            "{:<6} {:>7} {:>9.3} {:>10} {:>12.3} {:>9.1}",
            area.name,
            targets.len(),
            secs,
            est.stats.samples,
            spearman_vs_truth(&est.bc, &truth_sub),
            100.0 * rank_deviation(&est.bc, &truth_sub),
        );
    }
    println!("\nsmaller areas rank faster — the subset-aware speedup of Fig. 7b.");
}
