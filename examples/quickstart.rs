//! Quickstart: rank a handful of nodes by betweenness centrality with
//! SaPHyRa_bc and compare against the exact values.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_graph::brandes::betweenness_exact;
use saphyra_graph::fixtures;

fn main() {
    // The paper's Fig. 2 example graph: 11 nodes, five bi-components,
    // cutpoints c, d, i.
    let g = fixtures::paper_fig2();
    println!(
        "graph: {} nodes, {} edges (paper Fig. 2)",
        g.num_nodes(),
        g.num_edges()
    );

    // One-time preprocessing: biconnected decomposition, block-cut tree,
    // out-reach sets (O(n + m)).
    let index = BcIndex::new(&g);
    println!(
        "decomposition: {} bi-components, γ = {:.4}",
        index.bic.num_bicomps, index.gamma
    );

    // Rank a target subset with an (ε, δ) guarantee.
    let targets: Vec<u32> = vec![0, 2, 3, 6, 8]; // a, c, d, g, i
    let names = ["a", "c", "d", "g", "i"];
    let cfg = SaphyraBcConfig::new(0.02, 0.05);
    let mut rng = StdRng::seed_from_u64(42);
    let est = index.rank_subset(&targets, &cfg, &mut rng);

    let exact = betweenness_exact(&g);
    println!(
        "\n{:<6} {:>10} {:>10} {:>8}",
        "node", "saphyra", "exact", "err"
    );
    for i in est.ranking() {
        let v = targets[i];
        println!(
            "{:<6} {:>10.5} {:>10.5} {:>8.5}",
            names[i],
            est.bc[i],
            exact[v as usize],
            (est.bc[i] - exact[v as usize]).abs()
        );
    }
    println!(
        "\nsamples: {} (pilot {}), exact-subspace mass λ̂ = {:.3}, VC bound = {}",
        est.stats.samples, est.stats.pilot_samples, est.stats.lambda_hat, est.stats.vc.vc_subset
    );
    assert!(est
        .bc
        .iter()
        .zip(&targets)
        .all(|(b, &v)| (b - exact[v as usize]).abs() < cfg.eps));
    println!("all estimates within ε = {} of exact values ✓", cfg.eps);
}
