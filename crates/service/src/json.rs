//! Minimal JSON value, parser and serializer (std-only — the container has
//! no crates.io access, so serde is not available).
//!
//! Serialization is **deterministic**: objects are ordered vectors that
//! serialize in insertion order, and `f64` formatting uses Rust's shortest
//! round-trip `Display`. Two structurally identical values always produce
//! byte-identical text — the property the service's wire-level determinism
//! contract and its response cache rest on.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order (serialization determinism).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer (at most
    /// [`MAX_SAFE_INT`] — larger values cannot round-trip through a JSON
    /// double).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= MAX_SAFE_INT as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document (must consume the full input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

/// Largest integer a JSON double represents exactly (2⁵³). Integers above
/// this silently lose precision in the `f64`-backed [`Json::Num`];
/// producers must validate before encoding (see the `From<u64>` /
/// `From<usize>` impls), and [`Json::as_u64`] rejects anything larger.
pub const MAX_SAFE_INT: u64 = 1 << 53;

/// Convenience constructors keeping call sites terse.
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}
impl From<u64> for Json {
    /// Panics (debug) on integers above [`MAX_SAFE_INT`] — encoding them
    /// would silently corrupt the value. Callers encoding user input must
    /// range-check first.
    fn from(x: u64) -> Json {
        debug_assert!(x <= MAX_SAFE_INT, "{x} exceeds the exact f64 range");
        Json::Num(x as f64)
    }
}
impl From<usize> for Json {
    /// See `From<u64>`: values above [`MAX_SAFE_INT`] are a caller bug.
    fn from(x: usize) -> Json {
        debug_assert!(x as u64 <= MAX_SAFE_INT, "{x} exceeds the exact f64 range");
        Json::Num(x as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!(
                "unexpected byte '{}' at offset {}",
                b as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let x: f64 = text
            .parse()
            .map_err(|_| format!("invalid number {text:?} at offset {start}"))?;
        if !x.is_finite() {
            return Err(format!("non-finite number {text:?} at offset {start}"));
        }
        Ok(Json::Num(x))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid unicode escape".to_string())?,
                            );
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                b if b < 0x20 => return Err("unescaped control character".to_string()),
                b if b < 0x80 => out.push(b as char),
                lead => {
                    // Decode exactly one UTF-8 character from its lead
                    // byte. Validating only the character's own bytes keeps
                    // string parsing O(n) — re-validating the remaining
                    // input per character would be O(n²) on
                    // multibyte-heavy bodies, a DoS vector at the 64 MiB
                    // body cap.
                    let start = self.pos - 1;
                    let len = match lead {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid utf-8 in string".to_string()),
                    };
                    let ch = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| "invalid utf-8 in string".to_string())?;
                    out.push(ch);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_string())?;
        let v = u32::from_str_radix(text, 16).map_err(|_| "invalid \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

fn is_negative_zero(x: f64) -> bool {
    x == 0.0 && x.is_sign_negative()
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                // JSON has no NaN/Infinity literals and the parser rejects
                // them, so the serializer must never emit them: non-finite
                // values serialize as `null` (infallible-by-construction —
                // to_string output always re-parses).
                if !x.is_finite() {
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 2f64.powi(53) && !is_negative_zero(*x) {
                    // Integers print without a fraction; `-0.0` must skip
                    // this path or `as i64` silently drops its sign.
                    write!(f, "{}", *x as i64)
                } else {
                    // Shortest round-trip Display (deterministic); prints
                    // `-0.0` as "-0", which re-parses sign-exact.
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            r#"null"#,
            r#"true"#,
            r#"[1,2,3]"#,
            r#"{"a":1,"b":[true,null],"c":"x"}"#,
            r#"{"nested":{"deep":{"deeper":[{"x":0.5}]}}}"#,
            r#"-12.25"#,
            r#""esc \" \\ \n""#,
        ] {
            let v = Json::parse(text).unwrap();
            let printed = v.to_string();
            assert_eq!(Json::parse(&printed).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let v = Json::Obj(vec![
            ("b".into(), Json::from(2u32)),
            ("a".into(), Json::Arr(vec![Json::from(0.5), Json::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"b":2,"a":[0.5,null]}"#);
        assert_eq!(v.to_string(), v.clone().to_string());
    }

    #[test]
    fn rejects_garbage() {
        for text in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nul",
            "1 2",
            "\"unterminated",
            "[1e999]",
            "{\"a\":NaN}",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} accepted");
        }
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""A😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A😀");
    }

    #[test]
    fn non_finite_serializes_as_null_and_round_trips() {
        // JSON has no NaN/Infinity: Display must never emit Rust's "NaN" /
        // "inf" spellings, which the parser (correctly) rejects. Everything
        // to_string produces must re-parse.
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let printed = Json::Num(x).to_string();
            assert_eq!(printed, "null", "{x} must serialize as null");
            assert_eq!(Json::parse(&printed).unwrap(), Json::Null);
        }
        // Inside containers too (the service serializes score arrays).
        let v = Json::Arr(vec![Json::Num(1.5), Json::Num(f64::NAN)]);
        let printed = v.to_string();
        assert_eq!(printed, "[1.5,null]");
        Json::parse(&printed).unwrap();
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let printed = Json::Num(-0.0).to_string();
        assert_eq!(printed, "-0");
        let reparsed = Json::parse(&printed).unwrap().as_f64().unwrap();
        assert_eq!(reparsed.to_bits(), (-0.0f64).to_bits(), "sign of -0.0 lost");
        // Positive zero still takes the integer fast path.
        assert_eq!(Json::Num(0.0).to_string(), "0");
    }

    #[test]
    fn large_multibyte_string_parses_in_linear_time() {
        // 1M three-byte characters (~3 MiB). The old parser re-validated
        // the entire remaining input per character — O(n²), which at this
        // size takes minutes; the linear parser takes milliseconds. The
        // generous wall-clock bound below only fails on quadratic
        // behavior, not on slow machines.
        let payload = "愛".repeat(1_000_000);
        let doc = format!("\"{payload}\"");
        let t0 = std::time::Instant::now();
        let v = Json::parse(&doc).unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "multibyte string parse took {:?} — quadratic re-validation regressed",
            t0.elapsed()
        );
        assert_eq!(v.as_str().unwrap(), payload);
        // Mixed ASCII/multibyte round-trips through the new decode path.
        let v = Json::parse("\"aé愛😀z\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "aé愛😀z");
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn string_rejects_truncated_or_invalid_utf8_bytes() {
        // Json::parse takes &str so raw invalid UTF-8 can't reach it, but
        // the decoder must still fail closed on impossible lead bytes.
        let mut p = Parser {
            bytes: b"\"\xff\"",
            pos: 0,
        };
        assert!(p.string().is_err());
        let mut p = Parser {
            bytes: b"\"\xe6\x84", // 3-byte lead, only 2 bytes present
            pos: 0,
        };
        assert!(p.string().is_err());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":3,"s":"x","a":[1],"b":true}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
