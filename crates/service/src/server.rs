//! The ranking service: request routing, deterministic rank computation,
//! response caching, and the `TcpListener` + thread-pool runtime.
//!
//! ## Determinism contract
//!
//! For a fixed request body, the `/rank` response **body** is byte-identical
//! across runs, worker counts and rayon thread counts: the estimate itself
//! is bit-identical for a given seed (PR 1's counter-based chunk RNG
//! streams), JSON objects serialize in fixed field order, and `f64`
//! formatting is Rust's shortest round-trip `Display`. Cache hits replay
//! the stored body verbatim, so they cannot break the contract; whether a
//! response was served from cache is reported out-of-band in the
//! `X-Saphyra-Cache` header (`hit` / `miss`).
//!
//! ## Concurrency model
//!
//! Graph entries (graph + decomposition) are immutable `Arc`s from the
//! [`Registry`]; every `/rank` request builds its own sampler scratch
//! (`BcApproxProblem` / `HrSampler`), so concurrent requests share only
//! read-only state. The response cache is a mutex held only for
//! lookup/insert — never during sampling. Identical requests racing a cold
//! cache are collapsed behind one in-flight computation (single-flight):
//! the first request computes, the rest block on a condvar and replay the
//! same bytes (`X-Saphyra-Cache: shared`).
//!
//! ## Connection model
//!
//! Connections are persistent (HTTP/1.1 keep-alive): each worker runs a
//! per-connection request loop until the client sends `Connection: close`
//! or disconnects, the idle read timeout elapses between requests, or the
//! per-connection request cap is reached (the last response then carries
//! `Connection: close`). Workers therefore bound concurrent *connections*,
//! not requests — size [`ServiceConfig::workers`] to the expected client
//! count, and keep the idle timeout finite so abandoned connections hand
//! their worker back.

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, SystemTime};

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::SaphyraBcConfig;
use saphyra::closeness::rank_harmonic;
use saphyra::kpath::rank_kpath;
use saphyra::params;
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::{io as graph_io, NodeId};

use crate::cache::LruCache;
use crate::http::{read_request, Request, Response};
use crate::json::Json;
use crate::persist::{self, valid_graph_name};
use crate::registry::{GraphEntry, Registry};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads handling connections (0 = available parallelism).
    pub workers: usize,
    /// Completed-ranking cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// How long a persistent connection may sit idle between requests
    /// before the server closes it (also bounds how long a worker can be
    /// held by a silent client).
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it with
    /// `Connection: close` (0 = unlimited).
    pub max_requests_per_conn: usize,
    /// State directory for registry persistence. When set, graph loads
    /// write crash-safe snapshots there ([`crate::persist`]), every
    /// `/rank` request appends a journal line, and construction restores
    /// all `*.snap` files into the registry — skipping re-decomposition
    /// entirely for intact snapshots. `None` disables persistence (the
    /// pre-PR-4 behavior). Persistence failures degrade with a warning on
    /// stderr; they never fail a request or a boot.
    pub state_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 128,
            idle_timeout: Duration::from_secs(10),
            max_requests_per_conn: 1024,
            state_dir: None,
        }
    }
}

/// Centrality measures the service can rank by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Measure {
    Betweenness,
    KPath,
    Harmonic,
}

impl Measure {
    fn parse(s: &str) -> Option<Measure> {
        match s {
            "bc" | "betweenness" => Some(Measure::Betweenness),
            "kpath" => Some(Measure::KPath),
            "harmonic" | "closeness" => Some(Measure::Harmonic),
            _ => None,
        }
    }

    fn as_str(&self) -> &'static str {
        match self {
            Measure::Betweenness => "bc",
            Measure::KPath => "kpath",
            Measure::Harmonic => "harmonic",
        }
    }
}

/// Everything that makes a `/rank` response unique. `eps`/`delta` enter by
/// bit pattern: distinct floats that print identically are still distinct
/// requests. `epoch` pins the key to one *load* of the graph: a request
/// that raced a same-name reload and computed against the old entry
/// inserts under the old epoch and can never be served to requests
/// resolving the new entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RankKey {
    graph: String,
    epoch: u64,
    measure: Measure,
    targets: Vec<NodeId>,
    eps_bits: u64,
    delta_bits: u64,
    seed: u64,
    khops: usize,
}

/// A validated `/rank` request.
struct RankParams {
    graph: String,
    measure: Measure,
    targets: Vec<NodeId>,
    eps: f64,
    delta: f64,
    seed: u64,
    khops: usize,
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn error_response(status: u16, message: impl Into<String>) -> Response {
    Response::json(
        status,
        obj(vec![("error", Json::from(message.into()))]).to_string(),
    )
}

/// One in-flight `/rank` computation: the leader fills `done` and notifies;
/// waiters block on the condvar. The inner `Option` is `None` when the
/// leader failed without a body (it panicked), in which case waiters answer
/// 500 rather than hanging or recomputing.
#[derive(Debug, Default)]
struct Inflight {
    done: Mutex<Option<Option<Arc<String>>>>,
    cv: Condvar,
}

/// Removes the leader's in-flight entry on every exit path — including a
/// panic in the computation, where waiters would otherwise block forever.
struct InflightGuard<'a> {
    service: &'a Service,
    key: RankKey,
    slot: Arc<Inflight>,
}

impl InflightGuard<'_> {
    /// Publishes the computed body to waiters (the guard's drop then only
    /// removes the map entry).
    fn publish(&self, body: Arc<String>) {
        *self.slot.done.lock().unwrap() = Some(Some(body));
        self.slot.cv.notify_all();
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut done = self.slot.done.lock().unwrap();
        if done.is_none() {
            *done = Some(None); // leader died without a body
            self.slot.cv.notify_all();
        }
        drop(done);
        self.service.inflight.lock().unwrap().remove(&self.key);
    }
}

/// Shared service state: registry, cache, in-flight map, counters. Routing
/// lives in [`Service::handle`], which is pure with respect to the network
/// layer and therefore directly testable.
#[derive(Debug)]
pub struct Service {
    registry: Registry,
    cache: Mutex<LruCache<RankKey, Arc<String>>>,
    inflight: Mutex<HashMap<RankKey, Arc<Inflight>>>,
    requests: AtomicU64,
    connections: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_shared: AtomicU64,
    computations: AtomicU64,
    decompositions: AtomicU64,
    snapshots_loaded: AtomicU64,
    persist: Option<PersistState>,
    /// Serializes the snapshot-write + registry-insert pair of a graph
    /// load. Without it, two concurrent same-name loads can finish in
    /// opposite orders on disk and in memory — the running service would
    /// then rank one graph and a restart silently restore the other.
    load_publish: Mutex<()>,
    workers: usize,
    idle_timeout: Duration,
    max_requests_per_conn: usize,
}

/// Open persistence resources of a service with a state directory.
#[derive(Debug)]
struct PersistState {
    dir: PathBuf,
    journal: persist::Journal,
}

impl Service {
    /// Creates the state for a server with the given configuration. With
    /// [`ServiceConfig::state_dir`] set, the directory is created if
    /// missing, every snapshot in it is restored into the registry, and
    /// the request journal is opened for appending. Persistence problems
    /// (unwritable dir, damaged snapshots) warn on stderr and degrade —
    /// they never panic and never abort construction.
    pub fn new(cfg: ServiceConfig) -> Self {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let persist = cfg.state_dir.as_ref().and_then(|dir| {
            let open = std::fs::create_dir_all(dir)
                .and_then(|()| persist::Journal::open(dir))
                .map(|journal| PersistState {
                    dir: dir.clone(),
                    journal,
                });
            match open {
                Ok(state) => Some(state),
                Err(e) => {
                    eprintln!(
                        "warning: state dir {} unusable ({e}); persistence disabled",
                        dir.display()
                    );
                    None
                }
            }
        });
        let service = Service {
            registry: Registry::new(),
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            inflight: Mutex::new(HashMap::new()),
            requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_shared: AtomicU64::new(0),
            computations: AtomicU64::new(0),
            decompositions: AtomicU64::new(0),
            snapshots_loaded: AtomicU64::new(0),
            persist,
            load_publish: Mutex::new(()),
            workers,
            idle_timeout: cfg.idle_timeout,
            max_requests_per_conn: cfg.max_requests_per_conn,
        };
        // Restore straight from the configured dir, NOT via `persist`: a
        // readable-but-unwritable state dir (read-only remount, tightened
        // perms) must still restore every intact snapshot — only the
        // *write* side (snapshots + journal) degrades.
        if let Some(dir) = cfg.state_dir.as_ref() {
            service.restore_from_dir(dir);
        }
        service
    }

    /// Restores every `*.snap` snapshot in `dir` into the registry
    /// (name-sorted). Intact snapshots skip decomposition entirely; a
    /// snapshot whose decomposition section is damaged or
    /// version-mismatched falls back to recomputing it from the restored
    /// graph with a warning (and rewrites the repaired snapshot, so the
    /// recompute cost is paid once, not on every subsequent boot); a
    /// snapshot whose graph section is damaged, or whose embedded name
    /// does not match its file stem, is skipped with a warning. Returns
    /// `(restored, recomputed)` counts.
    ///
    /// `serve --state-dir` boots call this through [`Service::new`]; the
    /// offline `saphyra snapshot replay` path calls it directly on a
    /// journal-less service.
    pub fn restore_from_dir(&self, dir: &Path) -> (usize, usize) {
        let paths = match persist::scan_snapshots(dir) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("warning: cannot scan {}: {e}", dir.display());
                return (0, 0);
            }
        };
        let (mut restored, mut recomputed) = (0usize, 0usize);
        for path in paths {
            let snap = match persist::load_snapshot(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("warning: skipping snapshot {}: {e}", path.display());
                    continue;
                }
            };
            // The file stem is the registry's authority on which name a
            // snapshot serves (`<name>.snap` is what loads write). A file
            // whose embedded name disagrees — e.g. an offline
            // `snapshot save --name g other.snap` dropped into the dir —
            // must not shadow the genuine `g.snap` by scan order.
            let stem = path.file_stem().and_then(|s| s.to_str());
            if stem != Some(snap.name.as_str()) {
                eprintln!(
                    "warning: skipping snapshot {}: embedded graph name {:?} does not match \
                     the file stem",
                    path.display(),
                    snap.name
                );
                continue;
            }
            let entry = match snap.dec {
                Ok(dec) => {
                    self.snapshots_loaded.fetch_add(1, Ordering::Relaxed);
                    restored += 1;
                    GraphEntry::from_parts(snap.name, snap.graph, dec)
                }
                Err(reason) => {
                    eprintln!(
                        "warning: snapshot {}: decomposition unusable ({reason}); recomputing",
                        path.display()
                    );
                    self.decompositions.fetch_add(1, Ordering::Relaxed);
                    recomputed += 1;
                    let entry = GraphEntry::build(snap.name, snap.graph);
                    // Self-heal: rewrite the repaired snapshot so the next
                    // boot restores instead of recomputing again.
                    match persist::save_snapshot(&path, &entry.name, &entry.graph, &entry.dec) {
                        Ok(()) => eprintln!("repaired snapshot {}", path.display()),
                        Err(e) => {
                            eprintln!("warning: cannot rewrite {}: {e}", path.display())
                        }
                    }
                    entry
                }
            };
            self.registry.insert(entry);
        }
        (restored, recomputed)
    }

    /// The graph registry (pre-loading graphs before `serve` is handy in
    /// tests and benches).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Lifetime cache-hit count.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache-miss count.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Lifetime count of requests that waited on another request's
    /// in-flight computation and replayed its bytes.
    pub fn cache_shared(&self) -> u64 {
        self.cache_shared.load(Ordering::Relaxed)
    }

    /// Lifetime count of ranking computations actually performed (misses
    /// minus single-flight collapsing).
    pub fn computations(&self) -> u64 {
        self.computations.load(Ordering::Relaxed)
    }

    /// Lifetime count of TCP connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Lifetime count of graph decompositions this service computed
    /// (graph loads plus snapshot-fallback recomputes). A service booted
    /// purely from intact snapshots reports 0 — the whole point of
    /// persistence.
    pub fn decompositions(&self) -> u64 {
        self.decompositions.load(Ordering::Relaxed)
    }

    /// Lifetime count of registry entries restored from snapshots without
    /// recomputation.
    pub fn snapshots_loaded(&self) -> u64 {
        self.snapshots_loaded.load(Ordering::Relaxed)
    }

    /// Routes one request. The boolean asks the runtime to shut down.
    pub fn handle(&self, req: &Request) -> (Response, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let resp = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/graphs") => self.list_graphs(),
            ("POST", "/graphs") => self.load_graph(req),
            ("POST", "/rank") => {
                // Parse the body exactly once; ranking and the journal
                // both consume the same parsed value.
                let body = req
                    .body_str()
                    .map_err(|e| e.to_string())
                    .and_then(|t| Json::parse(t).map_err(|e| format!("invalid JSON body: {e}")));
                let resp = match &body {
                    Ok(json) => self.rank(json),
                    Err(e) => error_response(400, e.clone()),
                };
                self.journal_rank(body.ok(), &resp);
                resp
            }
            ("POST", "/shutdown") => {
                let body = obj(vec![("status", Json::from("shutting down"))]).to_string();
                return (Response::json(200, body), true);
            }
            ("GET" | "POST", _) => error_response(404, format!("no such endpoint {}", req.path)),
            _ => error_response(405, format!("method {} not allowed", req.method)),
        };
        (resp, false)
    }

    fn healthz(&self) -> Response {
        let body = obj(vec![
            ("status", Json::from("ok")),
            ("graphs", Json::from(self.registry.len())),
            ("workers", Json::from(self.workers)),
            (
                "requests",
                Json::from(self.requests.load(Ordering::Relaxed)),
            ),
            ("connections", Json::from(self.connections())),
            ("cache_hits", Json::from(self.cache_hits())),
            ("cache_misses", Json::from(self.cache_misses())),
            ("cache_shared", Json::from(self.cache_shared())),
            ("computations", Json::from(self.computations())),
            ("decompositions", Json::from(self.decompositions())),
            ("snapshots_loaded", Json::from(self.snapshots_loaded())),
        ])
        .to_string();
        Response::json(200, body)
    }

    /// Appends one journal line for a handled `/rank` request (no-op
    /// without a state dir). `request` is the already-parsed body (`None`
    /// when it was not valid JSON). Journal failures warn; the response
    /// already computed is served regardless.
    fn journal_rank(&self, request: Option<Json>, resp: &Response) {
        let Some(p) = &self.persist else { return };
        let ts = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let cache = resp
            .headers
            .iter()
            .find(|(k, _)| k == "X-Saphyra-Cache")
            .map(|(_, v)| v.as_str());
        let line = persist::journal_line(ts, resp.status, cache, request);
        if let Err(e) = p.journal.append(&line) {
            eprintln!("warning: journal append failed: {e}");
        }
    }

    fn list_graphs(&self) -> Response {
        let graphs: Vec<Json> = self.registry.list().iter().map(|e| graph_info(e)).collect();
        Response::json(200, obj(vec![("graphs", Json::Arr(graphs))]).to_string())
    }

    fn load_graph(&self, req: &Request) -> Response {
        let body = match req
            .body_str()
            .map_err(|e| e.to_string())
            .and_then(|t| Json::parse(t).map_err(|e| format!("invalid JSON body: {e}")))
        {
            Ok(v) => v,
            Err(e) => return error_response(400, e),
        };
        let name = match body.get("name").and_then(Json::as_str) {
            Some(n) if valid_graph_name(n) => n.to_string(),
            Some(n) => {
                let why = "want 1-64 chars of [A-Za-z0-9._-], no leading dot";
                return error_response(400, format!("invalid graph name {n:?} ({why})"));
            }
            None => return error_response(400, "missing required string field \"name\""),
        };

        let graph = match (body.get("path"), body.get("network")) {
            (Some(path), None) => {
                let Some(path) = path.as_str() else {
                    return error_response(400, "\"path\" must be a string");
                };
                match graph_io::load_edge_list(path) {
                    Ok(g) => g,
                    Err(e) => return error_response(400, format!("cannot load {path}: {e}")),
                }
            }
            (None, Some(network)) => {
                let Some(network) = network.as_str() else {
                    return error_response(400, "\"network\" must be a string");
                };
                let Ok(net) = network.parse::<SimNetwork>() else {
                    return error_response(400, format!("unknown network {network:?}"));
                };
                let size = body.get("size").and_then(Json::as_str).unwrap_or("tiny");
                let Ok(size) = size.parse::<SizeClass>() else {
                    return error_response(400, format!("unknown size class {size:?}"));
                };
                let seed = match opt_u64(&body, "seed", 2022) {
                    Ok(s) => s,
                    Err(e) => return error_response(400, e),
                };
                net.build(size, seed)
            }
            _ => {
                return error_response(
                    400,
                    "body must have exactly one of \"path\" (edge-list file) or \"network\" (generator)",
                )
            }
        };

        let entry = GraphEntry::build(name.clone(), graph);
        self.decompositions.fetch_add(1, Ordering::Relaxed);
        let info = graph_info(&entry);
        // Publish atomically with respect to other loads: snapshot write
        // and registry insert must land in the same order for every
        // loader, or disk and memory could end up holding different
        // graphs under one name. The expensive decomposition above stays
        // outside the critical section.
        let publish = self.load_publish.lock().unwrap();
        // Snapshot before publishing: a crash right after the write leaves
        // a snapshot for a load the client never saw confirmed — harmless
        // (the next boot restores it); the reverse order could confirm a
        // load that a restart then forgets.
        let persisted = match &self.persist {
            None => None,
            Some(p) => {
                let path = persist::snapshot_path(&p.dir, &name);
                match persist::save_snapshot(&path, &name, &entry.graph, &entry.dec) {
                    Ok(()) => Some(true),
                    Err(e) => {
                        eprintln!("warning: cannot snapshot {}: {e}", path.display());
                        Some(false)
                    }
                }
            }
        };
        let replaced = self.registry.insert(entry);
        drop(publish);
        if replaced {
            // Correctness is already guaranteed by the epoch in RankKey
            // (old-entry results can never alias the new load); dropping
            // the dead entries here is memory hygiene.
            self.cache.lock().unwrap().retain(|k| k.graph != name);
        }
        let Json::Obj(mut fields) = info else {
            unreachable!()
        };
        fields.push(("replaced".to_string(), Json::Bool(replaced)));
        if let Some(persisted) = persisted {
            fields.push(("persisted".to_string(), Json::Bool(persisted)));
        }
        Response::json(200, Json::Obj(fields).to_string())
    }

    fn rank(&self, body: &Json) -> Response {
        let p = match self.parse_rank_request(body) {
            Ok(p) => p,
            Err(resp) => return *resp,
        };
        let Some(entry) = self.registry.get(&p.graph) else {
            return error_response(
                404,
                format!("unknown graph {:?} (POST /graphs first)", p.graph),
            );
        };
        if let Err(e) = params::check_targets(&p.targets, entry.graph.num_nodes()) {
            return error_response(400, e);
        }

        let key = RankKey {
            graph: p.graph.clone(),
            epoch: entry.epoch,
            measure: p.measure,
            targets: p.targets.clone(),
            eps_bits: p.eps.to_bits(),
            delta_bits: p.delta.to_bits(),
            seed: p.seed,
            khops: p.khops,
        };
        if let Some(body) = self.cache.lock().unwrap().get(&key).cloned() {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Response::json(200, body.as_str()).with_header("X-Saphyra-Cache", "hit");
        }

        // Single-flight: identical concurrent cold requests collapse behind
        // one in-flight computation. Lock order is inflight → cache; the
        // cache re-check under the inflight lock closes the race where the
        // leader finishes (cache insert + map removal) between our cache
        // miss above and the map lookup here.
        let guard = {
            let mut inflight = self.inflight.lock().unwrap();
            if let Some(body) = self.cache.lock().unwrap().get(&key).cloned() {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Response::json(200, body.as_str()).with_header("X-Saphyra-Cache", "hit");
            }
            match inflight.get(&key) {
                Some(slot) => {
                    let slot = Arc::clone(slot);
                    drop(inflight);
                    let mut done = slot.done.lock().unwrap();
                    while done.is_none() {
                        done = slot.cv.wait(done).unwrap();
                    }
                    return match done.as_ref().unwrap() {
                        Some(body) => {
                            self.cache_shared.fetch_add(1, Ordering::Relaxed);
                            Response::json(200, body.as_str())
                                .with_header("X-Saphyra-Cache", "shared")
                        }
                        None => error_response(500, "ranking computation failed"),
                    };
                }
                None => {
                    let slot = Arc::new(Inflight::default());
                    inflight.insert(key.clone(), Arc::clone(&slot));
                    InflightGuard {
                        service: self,
                        key: key.clone(),
                        slot,
                    }
                }
            }
        };
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.computations.fetch_add(1, Ordering::Relaxed);

        // Compute outside every lock; the guard publishes the bytes to any
        // waiters and clears the in-flight entry even if this panics.
        let body = Arc::new(compute_rank_body(&entry, &p));
        self.cache.lock().unwrap().insert(key, Arc::clone(&body));
        guard.publish(Arc::clone(&body));
        drop(guard);
        Response::json(200, body.as_str()).with_header("X-Saphyra-Cache", "miss")
    }

    /// Validates an already-parsed `/rank` body into [`RankParams`].
    fn parse_rank_request(&self, body: &Json) -> Result<RankParams, Box<Response>> {
        let bad = |msg: String| Box::new(error_response(400, msg));
        let graph = body
            .get("graph")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing required string field \"graph\"".into()))?
            .to_string();
        let measure_name = body.get("measure").and_then(Json::as_str).unwrap_or("bc");
        let measure = Measure::parse(measure_name).ok_or_else(|| {
            bad(format!(
                "unknown measure {measure_name:?} (want bc|kpath|harmonic)"
            ))
        })?;

        let targets_json = body
            .get("targets")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing required array field \"targets\"".into()))?;
        let mut targets = Vec::with_capacity(targets_json.len());
        for t in targets_json {
            let id = t
                .as_u64()
                .filter(|&v| v <= u32::MAX as u64)
                .ok_or_else(|| bad(format!("target {t} is not a node id")))?;
            targets.push(id as NodeId);
        }

        let eps = opt_f64(body, "eps", 0.01).map_err(&bad)?;
        let delta = opt_f64(body, "delta", 0.01).map_err(&bad)?;
        let seed = opt_u64(body, "seed", 2022).map_err(&bad)?;
        let khops = opt_u64(body, "khops", 5).map_err(&bad)? as usize;

        params::check_eps(eps).map_err(&bad)?;
        params::check_delta(delta).map_err(&bad)?;
        if measure == Measure::KPath {
            params::check_khops(khops).map_err(&bad)?;
        }

        Ok(RankParams {
            graph,
            measure,
            targets,
            eps,
            delta,
            seed,
            khops,
        })
    }
}

fn opt_f64(body: &Json, key: &str, default: f64) -> Result<f64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

fn opt_u64(body: &Json, key: &str, default: u64) -> Result<u64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer <= 2^53")),
    }
}

fn graph_info(entry: &GraphEntry) -> Json {
    obj(vec![
        ("name", Json::from(entry.name.as_str())),
        ("nodes", Json::from(entry.graph.num_nodes())),
        ("edges", Json::from(entry.graph.num_edges())),
        ("bicomps", Json::from(entry.dec.bic.num_bicomps)),
        ("gamma", Json::Num(entry.dec.gamma)),
    ])
}

/// Computes the deterministic `/rank` response body.
fn compute_rank_body(entry: &GraphEntry, p: &RankParams) -> String {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let (scores, stats) = match p.measure {
        Measure::Betweenness => {
            let est = entry.dec.rank_subset(
                &entry.graph,
                &p.targets,
                &SaphyraBcConfig::new(p.eps, p.delta),
                &mut rng,
            );
            let stats = obj(vec![
                ("samples", Json::from(est.stats.samples)),
                ("nmax", Json::from(est.stats.nmax)),
                ("converged_early", Json::from(est.stats.converged_early)),
                ("vc_subset", Json::from(est.stats.vc.vc_subset)),
                ("lambda_hat", Json::Num(est.stats.lambda_hat)),
            ]);
            (est.bc, stats)
        }
        Measure::KPath => {
            let est = rank_kpath(&entry.graph, &p.targets, p.khops, p.eps, p.delta, &mut rng);
            let stats = obj(vec![
                ("samples", Json::from(est.inner.outcome.samples_used)),
                ("nmax", Json::from(est.inner.outcome.nmax)),
                (
                    "converged_early",
                    Json::from(est.inner.outcome.converged_early),
                ),
                ("lambda", Json::Num(est.inner.lambda)),
            ]);
            (est.kpc, stats)
        }
        Measure::Harmonic => {
            let est = rank_harmonic(&entry.graph, &p.targets, p.eps, p.delta, &mut rng);
            let stats = obj(vec![
                ("samples", Json::from(est.inner.outcome.samples_used)),
                ("nmax", Json::from(est.inner.outcome.nmax)),
                (
                    "converged_early",
                    Json::from(est.inner.outcome.converged_early),
                ),
                ("lambda", Json::Num(est.inner.lambda)),
            ]);
            (est.hc, stats)
        }
    };
    let ranks = saphyra_stats::ranks_by_value(&scores);

    obj(vec![
        ("graph", Json::from(p.graph.as_str())),
        ("measure", Json::from(p.measure.as_str())),
        ("eps", Json::Num(p.eps)),
        ("delta", Json::Num(p.delta)),
        ("seed", Json::from(p.seed)),
        ("khops", Json::from(p.khops)),
        (
            "targets",
            Json::Arr(p.targets.iter().map(|&t| Json::from(t)).collect()),
        ),
        (
            "scores",
            Json::Arr(scores.iter().map(|&x| Json::Num(x)).collect()),
        ),
        (
            "ranks",
            Json::Arr(ranks.iter().map(|&r| Json::from(r)).collect()),
        ),
        ("stats", stats),
    ])
    .to_string()
}

/// Shutdown latch shared by the acceptor and the workers: setting the flag
/// plus a self-connect unblocks the blocking `accept`.
#[derive(Debug)]
struct ShutdownSignal {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl ShutdownSignal {
    fn trigger(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            // Wake the acceptor; errors are fine (it may already be gone).
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }

    fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A running server: bound address plus the runtime threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<ShutdownSignal>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Requests shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Blocks until the server shuts down (via [`ServerHandle::shutdown`]
    /// or `POST /shutdown`), then joins every thread.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Triggers shutdown and joins.
    pub fn shutdown_and_join(self) {
        self.shutdown.trigger();
        self.join();
    }
}

/// Binds `addr` and starts the acceptor + worker threads. Returns
/// immediately; use [`ServerHandle::join`] to block.
pub fn serve(addr: &str, cfg: ServiceConfig) -> io::Result<ServerHandle> {
    serve_with(addr, Arc::new(Service::new(cfg)))
}

/// [`serve`] with externally constructed state (lets tests and benches
/// pre-load graphs into the registry before the first request).
pub fn serve_with(addr: &str, service: Arc<Service>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(ShutdownSignal {
        flag: AtomicBool::new(false),
        addr: local,
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let worker_count = service.workers;
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        workers.push(
            std::thread::Builder::new()
                .name(format!("saphyra-worker-{i}"))
                .spawn(move || loop {
                    let stream = match rx.lock().unwrap().recv() {
                        Ok(s) => s,
                        Err(_) => break, // acceptor gone
                    };
                    handle_connection(&service, &shutdown, stream);
                })?,
        );
    }

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("saphyra-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.is_set() {
                        break;
                    }
                    if let Ok(stream) = stream {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
                // Dropping `tx` here drains the workers.
            })?
    };

    Ok(ServerHandle {
        addr: local,
        service,
        shutdown,
        acceptor,
        workers,
    })
}

/// How often an idle worker wakes to re-check the shutdown flag while
/// waiting for a connection's next request. Bounds shutdown latency when
/// workers are parked on idle persistent connections.
const IDLE_POLL: Duration = Duration::from_millis(200);

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Serves one persistent connection: a request loop that ends when the
/// client closes or asks to (`Connection: close`), the idle timeout
/// elapses, the per-connection request cap is reached, or shutdown is
/// requested. The final response of a connection carries
/// `Connection: close` so clients stop reusing it.
///
/// Between requests the worker waits for the next request's first byte in
/// short [`IDLE_POLL`] slices (no bytes are consumed while polling), so it
/// observes both the shutdown flag and the idle-timeout budget promptly;
/// once a request starts arriving, the full idle timeout bounds the read.
fn handle_connection(service: &Service, shutdown: &ShutdownSignal, stream: TcpStream) {
    use std::io::BufRead;

    service.connections.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    // Responses are written whole; Nagle would only add delayed-ACK
    // latency on persistent connections.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    let mut served = 0usize;
    let poll = service.idle_timeout.min(IDLE_POLL);
    loop {
        // Idle phase: poll for the next request without consuming bytes.
        let mut idled = Duration::ZERO;
        let _ = stream.set_read_timeout(Some(poll));
        loop {
            if shutdown.is_set() {
                return;
            }
            match reader.fill_buf() {
                Ok([]) => return, // peer closed between requests
                Ok(_) => break,   // next request has started arriving
                Err(e) if is_timeout(&e) => {
                    idled += poll;
                    if idled >= service.idle_timeout {
                        return; // idle timeout: close quietly
                    }
                }
                Err(_) => return,
            }
        }
        let _ = stream.set_read_timeout(Some(service.idle_timeout));
        match read_request(&mut reader) {
            Ok(Some(req)) => {
                served += 1;
                let (resp, shut) = service.handle(&req);
                let at_cap =
                    service.max_requests_per_conn != 0 && served >= service.max_requests_per_conn;
                let keep_alive = !req.wants_close() && !shut && !at_cap && !shutdown.is_set();
                let write_ok = resp.write_to(&mut stream, keep_alive).is_ok();
                // Trigger even when the response write failed: the request
                // WAS handled, and a /shutdown whose client died must still
                // stop the server.
                if shut {
                    shutdown.trigger();
                }
                if !write_ok || !keep_alive {
                    break;
                }
            }
            Ok(None) => break, // peer closed (also the shutdown self-wake)
            // Timeout mid-request: the peer stalled; close quietly.
            Err(e) if is_timeout(&e) => break,
            Err(e) => {
                let _ = error_response(400, format!("malformed request: {e}"))
                    .write_to(&mut stream, false);
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn service_with_grid() -> Service {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            ..ServiceConfig::default()
        });
        svc.registry().insert(GraphEntry::build(
            "grid",
            saphyra_graph::fixtures::grid_graph(5, 5),
        ));
        svc
    }

    #[test]
    fn healthz_and_listing() {
        let svc = service_with_grid();
        let (resp, shut) = svc.handle(&get("/healthz"));
        assert_eq!(resp.status, 200);
        assert!(!shut);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("graphs").unwrap().as_u64(), Some(1));

        let (resp, _) = svc.handle(&get("/graphs"));
        let v = Json::parse(&resp.body).unwrap();
        let graphs = v.get("graphs").unwrap().as_arr().unwrap();
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].get("name").unwrap().as_str(), Some("grid"));
        assert_eq!(graphs[0].get("nodes").unwrap().as_u64(), Some(25));
    }

    #[test]
    fn rank_is_deterministic_and_cached() {
        let svc = service_with_grid();
        let body = r#"{"graph":"grid","targets":[6,12,18],"eps":0.1,"delta":0.1,"seed":7}"#;
        let (r1, _) = svc.handle(&post("/rank", body));
        assert_eq!(r1.status, 200, "{}", r1.body);
        assert!(r1
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "miss"));
        let (r2, _) = svc.handle(&post("/rank", body));
        assert_eq!(r2.body, r1.body, "cache hit must replay identical bytes");
        assert!(r2
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "hit"));
        assert_eq!(svc.cache_hits(), 1);
        assert_eq!(svc.cache_misses(), 1);

        let v = Json::parse(&r1.body).unwrap();
        assert_eq!(v.get("measure").unwrap().as_str(), Some("bc"));
        assert_eq!(v.get("scores").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("ranks").unwrap().as_arr().unwrap().len(), 3);
        // Grid center 12 dominates the off-center targets.
        let ranks = v.get("ranks").unwrap().as_arr().unwrap();
        assert_eq!(ranks[1].as_u64(), Some(1));
    }

    #[test]
    fn single_flight_collapses_identical_concurrent_cold_requests() {
        let svc = service_with_grid();
        let body = r#"{"graph":"grid","targets":[6,12,18],"eps":0.1,"delta":0.1,"seed":11}"#;
        let n = 8;
        let responses: Vec<Response> = std::thread::scope(|scope| {
            let svc = &svc;
            let handles: Vec<_> = (0..n)
                .map(|_| scope.spawn(move || svc.handle(&post("/rank", body)).0))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Exactly one ranking computation ran, whatever the interleaving.
        assert_eq!(svc.computations(), 1, "single-flight failed to collapse");
        let cache_state = |r: &Response| {
            r.headers
                .iter()
                .find(|(k, _)| k == "X-Saphyra-Cache")
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        let misses = responses
            .iter()
            .filter(|r| cache_state(r) == "miss")
            .count();
        assert_eq!(misses, 1, "exactly one request must be the leader");
        for r in &responses {
            assert_eq!(r.status, 200, "{}", r.body);
            assert_eq!(r.body, responses[0].body, "shared bytes diverged");
            // Non-leaders either waited on the in-flight computation
            // ("shared") or arrived after it landed in the cache ("hit").
            assert!(matches!(cache_state(r).as_str(), "miss" | "shared" | "hit"));
        }
        // Counters are consistent: every request is accounted exactly once.
        assert_eq!(
            svc.cache_misses() + svc.cache_shared() + svc.cache_hits(),
            n as u64
        );
    }

    #[test]
    fn single_flight_does_not_collapse_distinct_requests() {
        let svc = service_with_grid();
        let bodies: Vec<String> = (0..4)
            .map(|s| {
                format!(r#"{{"graph":"grid","targets":[6,12],"eps":0.1,"delta":0.1,"seed":{s}}}"#)
            })
            .collect();
        std::thread::scope(|scope| {
            for body in &bodies {
                let svc = &svc;
                scope.spawn(move || {
                    let (r, _) = svc.handle(&post("/rank", body));
                    assert_eq!(r.status, 200, "{}", r.body);
                });
            }
        });
        assert_eq!(svc.computations(), 4, "distinct keys must all compute");
    }

    #[test]
    fn rank_measures_kpath_and_harmonic() {
        let svc = service_with_grid();
        for measure in ["kpath", "harmonic"] {
            let body = format!(
                r#"{{"graph":"grid","targets":[2,12,22],"measure":"{measure}","eps":0.2,"delta":0.1,"seed":3}}"#
            );
            let (r, _) = svc.handle(&post("/rank", &body));
            assert_eq!(r.status, 200, "{measure}: {}", r.body);
            let v = Json::parse(&r.body).unwrap();
            assert_eq!(v.get("measure").unwrap().as_str(), Some(measure));
        }
    }

    #[test]
    fn rank_rejects_bad_requests() {
        let svc = service_with_grid();
        for (body, want) in [
            (r#"{"#, 400),
            (r#"{"targets":[1]}"#, 400),                  // no graph
            (r#"{"graph":"grid"}"#, 400),                 // no targets
            (r#"{"graph":"nope","targets":[1]}"#, 404),   // unknown graph
            (r#"{"graph":"grid","targets":[]}"#, 400),    // empty targets
            (r#"{"graph":"grid","targets":[999]}"#, 400), // out of range
            (r#"{"graph":"grid","targets":[1,1]}"#, 400), // duplicate
            (r#"{"graph":"grid","targets":[1],"eps":0}"#, 400), // eps = 0
            (r#"{"graph":"grid","targets":[1],"eps":1.5}"#, 400), // eps > 1
            (r#"{"graph":"grid","targets":[1],"delta":1}"#, 400), // delta = 1
            (r#"{"graph":"grid","targets":[1],"eps":"x"}"#, 400), // non-numeric
            (r#"{"graph":"grid","targets":[1],"seed":-1}"#, 400), // negative seed
            (r#"{"graph":"grid","targets":[1],"measure":"pr"}"#, 400), // unknown measure
            (
                r#"{"graph":"grid","targets":[1],"measure":"kpath","khops":1}"#,
                400,
            ),
            (r#"{"graph":"grid","targets":[1.5]}"#, 400), // fractional id
        ] {
            let (r, _) = svc.handle(&post("/rank", body));
            assert_eq!(r.status, want, "body {body}: got {} ({})", r.status, r.body);
        }
        // khops is ignored (not validated) for non-kpath measures.
        let (r, _) = svc.handle(&post(
            "/rank",
            r#"{"graph":"grid","targets":[1],"khops":1,"eps":0.3,"delta":0.1}"#,
        ));
        assert_eq!(r.status, 200, "{}", r.body);
    }

    #[test]
    fn load_graph_via_generator_and_replacement_purges_cache() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            ..ServiceConfig::default()
        });
        let (r, _) = svc.handle(&post(
            "/graphs",
            r#"{"name":"fl","network":"flickr","size":"tiny","seed":5}"#,
        ));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("replaced").unwrap().as_bool(), Some(false));
        let nodes = v.get("nodes").unwrap().as_u64().unwrap();
        assert!(nodes > 10);

        let rank = r#"{"graph":"fl","targets":[1,2,3],"eps":0.2,"delta":0.1,"seed":1}"#;
        let (r1, _) = svc.handle(&post("/rank", rank));
        assert_eq!(r1.status, 200, "{}", r1.body);

        // Reload under the same name with a different seed: stale rankings
        // must not survive.
        let (r, _) = svc.handle(&post(
            "/graphs",
            r#"{"name":"fl","network":"flickr","size":"tiny","seed":6}"#,
        ));
        assert_eq!(
            Json::parse(&r.body)
                .unwrap()
                .get("replaced")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        let (r2, _) = svc.handle(&post("/rank", rank));
        assert!(r2
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "miss"));
        assert_ne!(
            r1.body, r2.body,
            "stale cache entry served for reloaded graph"
        );
    }

    #[test]
    fn load_graph_rejects_garbage() {
        let svc = Service::new(ServiceConfig::default());
        for body in [
            r#"{}"#,
            r#"{"name":"x"}"#,
            r#"{"name":"../etc","path":"/etc/passwd"}"#,
            r#"{"name":".g","network":"flickr"}"#, // leading dot: the boot scan would skip its snapshot
            r#"{"name":"x","network":"nope"}"#,
            r#"{"name":"x","network":"flickr","size":"huge"}"#,
            r#"{"name":"x","path":"/nonexistent/file.txt"}"#,
            r#"{"name":"x","path":"p","network":"flickr"}"#,
        ] {
            let (r, _) = svc.handle(&post("/graphs", body));
            assert_eq!(r.status, 400, "body {body}: {}", r.body);
        }
    }

    #[test]
    fn unknown_routes() {
        let svc = Service::new(ServiceConfig::default());
        let (r, _) = svc.handle(&get("/nope"));
        assert_eq!(r.status, 404);
        let (r, _) = svc.handle(&Request {
            method: "DELETE".to_string(),
            path: "/rank".to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        });
        assert_eq!(r.status, 405);
    }

    #[test]
    fn shutdown_route_requests_shutdown() {
        let svc = Service::new(ServiceConfig::default());
        let (r, shut) = svc.handle(&post("/shutdown", ""));
        assert_eq!(r.status, 200);
        assert!(shut);
    }
}
