//! The ranking service: request routing, deterministic rank computation,
//! response caching, and the `TcpListener` + thread-pool runtime.
//!
//! ## Determinism contract
//!
//! For a fixed request body, the `/rank` response **body** is byte-identical
//! across runs, worker counts and rayon thread counts: the estimate itself
//! is bit-identical for a given seed (PR 1's counter-based chunk RNG
//! streams), JSON objects serialize in fixed field order, and `f64`
//! formatting is Rust's shortest round-trip `Display`. Cache hits replay
//! the stored body verbatim, so they cannot break the contract; whether a
//! response was served from cache is reported out-of-band in the
//! `X-Saphyra-Cache` header (`hit` / `miss`).
//!
//! ## Concurrency model
//!
//! Graph entries (graph + decomposition) are immutable `Arc`s from the
//! [`Registry`]; every `/rank` request builds its own sampler scratch
//! (`BcApproxProblem` / `HrSampler`), so concurrent requests share only
//! read-only state. The response cache is the single mutex, held only for
//! lookup/insert — never during sampling. Two identical requests racing a
//! cold cache may both compute (last insert wins); both compute the same
//! bytes, so the contract still holds.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::SaphyraBcConfig;
use saphyra::closeness::rank_harmonic;
use saphyra::kpath::rank_kpath;
use saphyra::params;
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::{io as graph_io, NodeId};

use crate::cache::LruCache;
use crate::http::{read_request, Request, Response};
use crate::json::Json;
use crate::registry::{GraphEntry, Registry};

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads handling connections (0 = available parallelism).
    pub workers: usize,
    /// Completed-ranking cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 128,
        }
    }
}

/// Centrality measures the service can rank by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Measure {
    Betweenness,
    KPath,
    Harmonic,
}

impl Measure {
    fn parse(s: &str) -> Option<Measure> {
        match s {
            "bc" | "betweenness" => Some(Measure::Betweenness),
            "kpath" => Some(Measure::KPath),
            "harmonic" | "closeness" => Some(Measure::Harmonic),
            _ => None,
        }
    }

    fn as_str(&self) -> &'static str {
        match self {
            Measure::Betweenness => "bc",
            Measure::KPath => "kpath",
            Measure::Harmonic => "harmonic",
        }
    }
}

/// Everything that makes a `/rank` response unique. `eps`/`delta` enter by
/// bit pattern: distinct floats that print identically are still distinct
/// requests. `epoch` pins the key to one *load* of the graph: a request
/// that raced a same-name reload and computed against the old entry
/// inserts under the old epoch and can never be served to requests
/// resolving the new entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RankKey {
    graph: String,
    epoch: u64,
    measure: Measure,
    targets: Vec<NodeId>,
    eps_bits: u64,
    delta_bits: u64,
    seed: u64,
    khops: usize,
}

/// A validated `/rank` request.
struct RankParams {
    graph: String,
    measure: Measure,
    targets: Vec<NodeId>,
    eps: f64,
    delta: f64,
    seed: u64,
    khops: usize,
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn error_response(status: u16, message: impl Into<String>) -> Response {
    Response::json(
        status,
        obj(vec![("error", Json::from(message.into()))]).to_string(),
    )
}

/// Shared service state: registry, cache, counters. Routing lives in
/// [`Service::handle`], which is pure with respect to the network layer and
/// therefore directly testable.
#[derive(Debug)]
pub struct Service {
    registry: Registry,
    cache: Mutex<LruCache<RankKey, Arc<String>>>,
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    workers: usize,
}

impl Service {
    /// Creates the state for a server with the given configuration.
    pub fn new(cfg: ServiceConfig) -> Self {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        Service {
            registry: Registry::new(),
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            requests: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            workers,
        }
    }

    /// The graph registry (pre-loading graphs before `serve` is handy in
    /// tests and benches).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Lifetime cache-hit count.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache-miss count.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Routes one request. The boolean asks the runtime to shut down.
    pub fn handle(&self, req: &Request) -> (Response, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let resp = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/graphs") => self.list_graphs(),
            ("POST", "/graphs") => self.load_graph(req),
            ("POST", "/rank") => self.rank(req),
            ("POST", "/shutdown") => {
                let body = obj(vec![("status", Json::from("shutting down"))]).to_string();
                return (Response::json(200, body), true);
            }
            ("GET" | "POST", _) => error_response(404, format!("no such endpoint {}", req.path)),
            _ => error_response(405, format!("method {} not allowed", req.method)),
        };
        (resp, false)
    }

    fn healthz(&self) -> Response {
        let body = obj(vec![
            ("status", Json::from("ok")),
            ("graphs", Json::from(self.registry.len())),
            ("workers", Json::from(self.workers)),
            (
                "requests",
                Json::from(self.requests.load(Ordering::Relaxed)),
            ),
            ("cache_hits", Json::from(self.cache_hits())),
            ("cache_misses", Json::from(self.cache_misses())),
        ])
        .to_string();
        Response::json(200, body)
    }

    fn list_graphs(&self) -> Response {
        let graphs: Vec<Json> = self.registry.list().iter().map(|e| graph_info(e)).collect();
        Response::json(200, obj(vec![("graphs", Json::Arr(graphs))]).to_string())
    }

    fn load_graph(&self, req: &Request) -> Response {
        let body = match req
            .body_str()
            .map_err(|e| e.to_string())
            .and_then(|t| Json::parse(t).map_err(|e| format!("invalid JSON body: {e}")))
        {
            Ok(v) => v,
            Err(e) => return error_response(400, e),
        };
        let name = match body.get("name").and_then(Json::as_str) {
            Some(n) if valid_graph_name(n) => n.to_string(),
            Some(n) => {
                return error_response(
                    400,
                    format!("invalid graph name {n:?} (want 1-64 chars of [A-Za-z0-9._-])"),
                )
            }
            None => return error_response(400, "missing required string field \"name\""),
        };

        let graph = match (body.get("path"), body.get("network")) {
            (Some(path), None) => {
                let Some(path) = path.as_str() else {
                    return error_response(400, "\"path\" must be a string");
                };
                match graph_io::load_edge_list(path) {
                    Ok(g) => g,
                    Err(e) => return error_response(400, format!("cannot load {path}: {e}")),
                }
            }
            (None, Some(network)) => {
                let Some(network) = network.as_str() else {
                    return error_response(400, "\"network\" must be a string");
                };
                let Ok(net) = network.parse::<SimNetwork>() else {
                    return error_response(400, format!("unknown network {network:?}"));
                };
                let size = body.get("size").and_then(Json::as_str).unwrap_or("tiny");
                let Ok(size) = size.parse::<SizeClass>() else {
                    return error_response(400, format!("unknown size class {size:?}"));
                };
                let seed = match opt_u64(&body, "seed", 2022) {
                    Ok(s) => s,
                    Err(e) => return error_response(400, e),
                };
                net.build(size, seed)
            }
            _ => {
                return error_response(
                    400,
                    "body must have exactly one of \"path\" (edge-list file) or \"network\" (generator)",
                )
            }
        };

        let entry = GraphEntry::build(name.clone(), graph);
        let info = graph_info(&entry);
        let replaced = self.registry.insert(entry);
        if replaced {
            // Correctness is already guaranteed by the epoch in RankKey
            // (old-entry results can never alias the new load); dropping
            // the dead entries here is memory hygiene.
            self.cache.lock().unwrap().retain(|k| k.graph != name);
        }
        let Json::Obj(mut fields) = info else {
            unreachable!()
        };
        fields.push(("replaced".to_string(), Json::Bool(replaced)));
        Response::json(200, Json::Obj(fields).to_string())
    }

    fn rank(&self, req: &Request) -> Response {
        let p = match self.parse_rank_request(req) {
            Ok(p) => p,
            Err(resp) => return *resp,
        };
        let Some(entry) = self.registry.get(&p.graph) else {
            return error_response(
                404,
                format!("unknown graph {:?} (POST /graphs first)", p.graph),
            );
        };
        if let Err(e) = params::check_targets(&p.targets, entry.graph.num_nodes()) {
            return error_response(400, e);
        }

        let key = RankKey {
            graph: p.graph.clone(),
            epoch: entry.epoch,
            measure: p.measure,
            targets: p.targets.clone(),
            eps_bits: p.eps.to_bits(),
            delta_bits: p.delta.to_bits(),
            seed: p.seed,
            khops: p.khops,
        };
        if let Some(body) = self.cache.lock().unwrap().get(&key).cloned() {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Response::json(200, body.as_str()).with_header("X-Saphyra-Cache", "hit");
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Compute outside the cache lock; concurrent misses on the same key
        // duplicate work but produce identical bytes.
        let body = Arc::new(compute_rank_body(&entry, &p));
        self.cache.lock().unwrap().insert(key, Arc::clone(&body));
        Response::json(200, body.as_str()).with_header("X-Saphyra-Cache", "miss")
    }

    fn parse_rank_request(&self, req: &Request) -> Result<RankParams, Box<Response>> {
        let bad = |msg: String| Box::new(error_response(400, msg));
        let body = req
            .body_str()
            .map_err(|e| bad(e.to_string()))
            .and_then(|t| Json::parse(t).map_err(|e| bad(format!("invalid JSON body: {e}"))))?;

        let graph = body
            .get("graph")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing required string field \"graph\"".into()))?
            .to_string();
        let measure_name = body.get("measure").and_then(Json::as_str).unwrap_or("bc");
        let measure = Measure::parse(measure_name).ok_or_else(|| {
            bad(format!(
                "unknown measure {measure_name:?} (want bc|kpath|harmonic)"
            ))
        })?;

        let targets_json = body
            .get("targets")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing required array field \"targets\"".into()))?;
        let mut targets = Vec::with_capacity(targets_json.len());
        for t in targets_json {
            let id = t
                .as_u64()
                .filter(|&v| v <= u32::MAX as u64)
                .ok_or_else(|| bad(format!("target {t} is not a node id")))?;
            targets.push(id as NodeId);
        }

        let eps = opt_f64(&body, "eps", 0.01).map_err(&bad)?;
        let delta = opt_f64(&body, "delta", 0.01).map_err(&bad)?;
        let seed = opt_u64(&body, "seed", 2022).map_err(&bad)?;
        let khops = opt_u64(&body, "khops", 5).map_err(&bad)? as usize;

        params::check_eps(eps).map_err(&bad)?;
        params::check_delta(delta).map_err(&bad)?;
        if measure == Measure::KPath {
            params::check_khops(khops).map_err(&bad)?;
        }

        Ok(RankParams {
            graph,
            measure,
            targets,
            eps,
            delta,
            seed,
            khops,
        })
    }
}

fn opt_f64(body: &Json, key: &str, default: f64) -> Result<f64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

fn opt_u64(body: &Json, key: &str, default: u64) -> Result<u64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer <= 2^53")),
    }
}

fn valid_graph_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

fn graph_info(entry: &GraphEntry) -> Json {
    obj(vec![
        ("name", Json::from(entry.name.as_str())),
        ("nodes", Json::from(entry.graph.num_nodes())),
        ("edges", Json::from(entry.graph.num_edges())),
        ("bicomps", Json::from(entry.dec.bic.num_bicomps)),
        ("gamma", Json::Num(entry.dec.gamma)),
    ])
}

/// Computes the deterministic `/rank` response body.
fn compute_rank_body(entry: &GraphEntry, p: &RankParams) -> String {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let (scores, stats) = match p.measure {
        Measure::Betweenness => {
            let est = entry.dec.rank_subset(
                &entry.graph,
                &p.targets,
                &SaphyraBcConfig::new(p.eps, p.delta),
                &mut rng,
            );
            let stats = obj(vec![
                ("samples", Json::from(est.stats.samples)),
                ("nmax", Json::from(est.stats.nmax)),
                ("converged_early", Json::from(est.stats.converged_early)),
                ("vc_subset", Json::from(est.stats.vc.vc_subset)),
                ("lambda_hat", Json::Num(est.stats.lambda_hat)),
            ]);
            (est.bc, stats)
        }
        Measure::KPath => {
            let est = rank_kpath(&entry.graph, &p.targets, p.khops, p.eps, p.delta, &mut rng);
            let stats = obj(vec![
                ("samples", Json::from(est.inner.outcome.samples_used)),
                ("nmax", Json::from(est.inner.outcome.nmax)),
                (
                    "converged_early",
                    Json::from(est.inner.outcome.converged_early),
                ),
                ("lambda", Json::Num(est.inner.lambda)),
            ]);
            (est.kpc, stats)
        }
        Measure::Harmonic => {
            let est = rank_harmonic(&entry.graph, &p.targets, p.eps, p.delta, &mut rng);
            let stats = obj(vec![
                ("samples", Json::from(est.inner.outcome.samples_used)),
                ("nmax", Json::from(est.inner.outcome.nmax)),
                (
                    "converged_early",
                    Json::from(est.inner.outcome.converged_early),
                ),
                ("lambda", Json::Num(est.inner.lambda)),
            ]);
            (est.hc, stats)
        }
    };
    let ranks = saphyra_stats::ranks_by_value(&scores);

    obj(vec![
        ("graph", Json::from(p.graph.as_str())),
        ("measure", Json::from(p.measure.as_str())),
        ("eps", Json::Num(p.eps)),
        ("delta", Json::Num(p.delta)),
        ("seed", Json::from(p.seed)),
        ("khops", Json::from(p.khops)),
        (
            "targets",
            Json::Arr(p.targets.iter().map(|&t| Json::from(t)).collect()),
        ),
        (
            "scores",
            Json::Arr(scores.iter().map(|&x| Json::Num(x)).collect()),
        ),
        (
            "ranks",
            Json::Arr(ranks.iter().map(|&r| Json::from(r)).collect()),
        ),
        ("stats", stats),
    ])
    .to_string()
}

/// Shutdown latch shared by the acceptor and the workers: setting the flag
/// plus a self-connect unblocks the blocking `accept`.
#[derive(Debug)]
struct ShutdownSignal {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl ShutdownSignal {
    fn trigger(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            // Wake the acceptor; errors are fine (it may already be gone).
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }

    fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A running server: bound address plus the runtime threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<ShutdownSignal>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Requests shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Blocks until the server shuts down (via [`ServerHandle::shutdown`]
    /// or `POST /shutdown`), then joins every thread.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Triggers shutdown and joins.
    pub fn shutdown_and_join(self) {
        self.shutdown.trigger();
        self.join();
    }
}

/// Binds `addr` and starts the acceptor + worker threads. Returns
/// immediately; use [`ServerHandle::join`] to block.
pub fn serve(addr: &str, cfg: ServiceConfig) -> io::Result<ServerHandle> {
    serve_with(addr, Arc::new(Service::new(cfg)))
}

/// [`serve`] with externally constructed state (lets tests and benches
/// pre-load graphs into the registry before the first request).
pub fn serve_with(addr: &str, service: Arc<Service>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(ShutdownSignal {
        flag: AtomicBool::new(false),
        addr: local,
    });

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let worker_count = service.workers;
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let rx = Arc::clone(&rx);
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        workers.push(
            std::thread::Builder::new()
                .name(format!("saphyra-worker-{i}"))
                .spawn(move || loop {
                    let stream = match rx.lock().unwrap().recv() {
                        Ok(s) => s,
                        Err(_) => break, // acceptor gone
                    };
                    handle_connection(&service, &shutdown, stream);
                })?,
        );
    }

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("saphyra-acceptor".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.is_set() {
                        break;
                    }
                    if let Ok(stream) = stream {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                }
                // Dropping `tx` here drains the workers.
            })?
    };

    Ok(ServerHandle {
        addr: local,
        service,
        shutdown,
        acceptor,
        workers,
    })
}

fn handle_connection(service: &Service, shutdown: &ShutdownSignal, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    match read_request(&mut reader) {
        Ok(Some(req)) => {
            let (resp, shut) = service.handle(&req);
            let _ = resp.write_to(&mut stream);
            if shut {
                shutdown.trigger();
            }
        }
        Ok(None) => {} // peer connected and closed (e.g. the shutdown wake)
        Err(e) => {
            let _ = error_response(400, format!("malformed request: {e}")).write_to(&mut stream);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn service_with_grid() -> Service {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
        });
        svc.registry().insert(GraphEntry::build(
            "grid",
            saphyra_graph::fixtures::grid_graph(5, 5),
        ));
        svc
    }

    #[test]
    fn healthz_and_listing() {
        let svc = service_with_grid();
        let (resp, shut) = svc.handle(&get("/healthz"));
        assert_eq!(resp.status, 200);
        assert!(!shut);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("graphs").unwrap().as_u64(), Some(1));

        let (resp, _) = svc.handle(&get("/graphs"));
        let v = Json::parse(&resp.body).unwrap();
        let graphs = v.get("graphs").unwrap().as_arr().unwrap();
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].get("name").unwrap().as_str(), Some("grid"));
        assert_eq!(graphs[0].get("nodes").unwrap().as_u64(), Some(25));
    }

    #[test]
    fn rank_is_deterministic_and_cached() {
        let svc = service_with_grid();
        let body = r#"{"graph":"grid","targets":[6,12,18],"eps":0.1,"delta":0.1,"seed":7}"#;
        let (r1, _) = svc.handle(&post("/rank", body));
        assert_eq!(r1.status, 200, "{}", r1.body);
        assert!(r1
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "miss"));
        let (r2, _) = svc.handle(&post("/rank", body));
        assert_eq!(r2.body, r1.body, "cache hit must replay identical bytes");
        assert!(r2
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "hit"));
        assert_eq!(svc.cache_hits(), 1);
        assert_eq!(svc.cache_misses(), 1);

        let v = Json::parse(&r1.body).unwrap();
        assert_eq!(v.get("measure").unwrap().as_str(), Some("bc"));
        assert_eq!(v.get("scores").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("ranks").unwrap().as_arr().unwrap().len(), 3);
        // Grid center 12 dominates the off-center targets.
        let ranks = v.get("ranks").unwrap().as_arr().unwrap();
        assert_eq!(ranks[1].as_u64(), Some(1));
    }

    #[test]
    fn rank_measures_kpath_and_harmonic() {
        let svc = service_with_grid();
        for measure in ["kpath", "harmonic"] {
            let body = format!(
                r#"{{"graph":"grid","targets":[2,12,22],"measure":"{measure}","eps":0.2,"delta":0.1,"seed":3}}"#
            );
            let (r, _) = svc.handle(&post("/rank", &body));
            assert_eq!(r.status, 200, "{measure}: {}", r.body);
            let v = Json::parse(&r.body).unwrap();
            assert_eq!(v.get("measure").unwrap().as_str(), Some(measure));
        }
    }

    #[test]
    fn rank_rejects_bad_requests() {
        let svc = service_with_grid();
        for (body, want) in [
            (r#"{"#, 400),
            (r#"{"targets":[1]}"#, 400),                  // no graph
            (r#"{"graph":"grid"}"#, 400),                 // no targets
            (r#"{"graph":"nope","targets":[1]}"#, 404),   // unknown graph
            (r#"{"graph":"grid","targets":[]}"#, 400),    // empty targets
            (r#"{"graph":"grid","targets":[999]}"#, 400), // out of range
            (r#"{"graph":"grid","targets":[1,1]}"#, 400), // duplicate
            (r#"{"graph":"grid","targets":[1],"eps":0}"#, 400), // eps = 0
            (r#"{"graph":"grid","targets":[1],"eps":1.5}"#, 400), // eps > 1
            (r#"{"graph":"grid","targets":[1],"delta":1}"#, 400), // delta = 1
            (r#"{"graph":"grid","targets":[1],"eps":"x"}"#, 400), // non-numeric
            (r#"{"graph":"grid","targets":[1],"seed":-1}"#, 400), // negative seed
            (r#"{"graph":"grid","targets":[1],"measure":"pr"}"#, 400), // unknown measure
            (
                r#"{"graph":"grid","targets":[1],"measure":"kpath","khops":1}"#,
                400,
            ),
            (r#"{"graph":"grid","targets":[1.5]}"#, 400), // fractional id
        ] {
            let (r, _) = svc.handle(&post("/rank", body));
            assert_eq!(r.status, want, "body {body}: got {} ({})", r.status, r.body);
        }
        // khops is ignored (not validated) for non-kpath measures.
        let (r, _) = svc.handle(&post(
            "/rank",
            r#"{"graph":"grid","targets":[1],"khops":1,"eps":0.3,"delta":0.1}"#,
        ));
        assert_eq!(r.status, 200, "{}", r.body);
    }

    #[test]
    fn load_graph_via_generator_and_replacement_purges_cache() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
        });
        let (r, _) = svc.handle(&post(
            "/graphs",
            r#"{"name":"fl","network":"flickr","size":"tiny","seed":5}"#,
        ));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = Json::parse(&r.body).unwrap();
        assert_eq!(v.get("replaced").unwrap().as_bool(), Some(false));
        let nodes = v.get("nodes").unwrap().as_u64().unwrap();
        assert!(nodes > 10);

        let rank = r#"{"graph":"fl","targets":[1,2,3],"eps":0.2,"delta":0.1,"seed":1}"#;
        let (r1, _) = svc.handle(&post("/rank", rank));
        assert_eq!(r1.status, 200, "{}", r1.body);

        // Reload under the same name with a different seed: stale rankings
        // must not survive.
        let (r, _) = svc.handle(&post(
            "/graphs",
            r#"{"name":"fl","network":"flickr","size":"tiny","seed":6}"#,
        ));
        assert_eq!(
            Json::parse(&r.body)
                .unwrap()
                .get("replaced")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        let (r2, _) = svc.handle(&post("/rank", rank));
        assert!(r2
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "miss"));
        assert_ne!(
            r1.body, r2.body,
            "stale cache entry served for reloaded graph"
        );
    }

    #[test]
    fn load_graph_rejects_garbage() {
        let svc = Service::new(ServiceConfig::default());
        for body in [
            r#"{}"#,
            r#"{"name":"x"}"#,
            r#"{"name":"../etc","path":"/etc/passwd"}"#,
            r#"{"name":"x","network":"nope"}"#,
            r#"{"name":"x","network":"flickr","size":"huge"}"#,
            r#"{"name":"x","path":"/nonexistent/file.txt"}"#,
            r#"{"name":"x","path":"p","network":"flickr"}"#,
        ] {
            let (r, _) = svc.handle(&post("/graphs", body));
            assert_eq!(r.status, 400, "body {body}: {}", r.body);
        }
    }

    #[test]
    fn unknown_routes() {
        let svc = Service::new(ServiceConfig::default());
        let (r, _) = svc.handle(&get("/nope"));
        assert_eq!(r.status, 404);
        let (r, _) = svc.handle(&Request {
            method: "DELETE".to_string(),
            path: "/rank".to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        });
        assert_eq!(r.status, 405);
    }

    #[test]
    fn shutdown_route_requests_shutdown() {
        let svc = Service::new(ServiceConfig::default());
        let (r, shut) = svc.handle(&post("/shutdown", ""));
        assert_eq!(r.status, 200);
        assert!(shut);
    }
}
