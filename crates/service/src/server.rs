//! The ranking service: request routing, deterministic rank computation,
//! response caching, and the `TcpListener` + thread-pool runtime.
//!
//! ## Determinism contract
//!
//! For a fixed request body, the `/rank` response **body** is byte-identical
//! across runs, worker counts and rayon thread counts: the estimate itself
//! is bit-identical for a given seed (PR 1's counter-based chunk RNG
//! streams), JSON objects serialize in fixed field order, and `f64`
//! formatting is Rust's shortest round-trip `Display`. Cache hits replay
//! the stored body verbatim, so they cannot break the contract; whether a
//! response was served from cache is reported out-of-band in the
//! `X-Saphyra-Cache` header (`hit` / `miss` / `shared` / `batched`).
//!
//! Cross-request batching preserves the contract: every computation runs
//! through the batched estimators (`rank_subset_multi` & co.), which are
//! bit-identical *per subscriber* to solo runs with the same seed — so the
//! bytes of a response are the same whether its batch had one member or
//! eight. Batching changes only scheduling, never content.
//!
//! ## Concurrency model
//!
//! Graph entries (graph + decomposition) are immutable `Arc`s from the
//! [`Registry`]; every `/rank` request builds its own sampler scratch
//! (`BcApproxProblem` / `HrSampler`), so concurrent requests share only
//! read-only state. The response cache is a mutex held only for
//! lookup/insert — never during sampling. Identical requests racing a cold
//! cache are collapsed behind one in-flight computation (single-flight):
//! the first request computes, the rest block on a condvar and replay the
//! same bytes (`X-Saphyra-Cache: shared`).
//!
//! Cold requests that differ **only in their target set** — same graph,
//! measure, ε, δ, seed and k — coalesce one level higher: the first such
//! request opens a gather window of [`ServiceConfig::batch_window`], later
//! arrivals enroll, and when the window closes the leader runs **one**
//! shared sample pass that scores every member's target set
//! (`X-Saphyra-Cache: batched`, counted in `/healthz` as `batched` /
//! `sample_passes`). Members park on their own in-flight slots, so
//! single-flight, caching and batching compose: identical requests
//! collapse first, distinct-target ones batch, and every member's body is
//! cached under its own key.
//!
//! ## Connection model
//!
//! Connections are persistent (HTTP/1.1 keep-alive) and are **owned by a
//! single reactor thread**, not by workers: the reactor drives every
//! socket nonblocking through an `epoll`/`poll` readiness loop
//! ([`crate::reactor`]), runs the per-connection state machine (read
//! buffer → incremental [`crate::http::RequestParser`] → dispatch → write
//! buffer), and hands **complete requests** to a pure compute pool over a
//! channel. Workers therefore bound concurrent *requests*: ten thousand
//! parked idle connections cost the pool nothing, and
//! [`ServiceConfig::workers`] sizes to CPU, not to client count.
//!
//! Requests are **pipelined**: the parser keeps consuming buffered
//! requests (up to [`ServiceConfig::pipeline_depth`] in flight per
//! connection) while earlier responses drain, and responses are written
//! strictly in request arrival order per connection, whatever order the
//! workers finish in. Idle timeouts ride a timer wheel and shutdown wakes
//! the reactor through a self-pipe — there is no timed polling loop
//! anywhere in the connection path.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{DeltaOutcome, SaphyraBcConfig};
use saphyra::closeness::{rank_harmonic_multi, rank_harmonic_multi_with};
use saphyra::framework::{
    estimate_risks_multi_exec, estimate_weighted_risks_multi_exec, ExecError,
};
use saphyra::kpath::{rank_kpath_multi, rank_kpath_multi_with};
use saphyra::params;
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::{io as graph_io, EdgeDelta, NodeId};

use crate::cache::LruCache;
use crate::http::{ParseStatus, Request, RequestParser, Response};
use crate::json::Json;
use crate::persist::{self, valid_graph_name};
use crate::reactor::{new_poller, Event, Poller, TimerWheel, WakePipe};
use crate::registry::{GraphEntry, KeyIndex, Registry};
use crate::shard::{self, ShardPool, ShardedExec};
use crate::sync::{CondvarExt, LockExt};

/// What a node does with the registry and the `/rank` path.
///
/// - `Standalone` (the default): owns graphs, computes every ranking
///   in-process — the pre-sharding behavior, unchanged.
/// - `Router`: owns the registry *view*. Whole graphs are placed on one
///   shard by hashing the graph name and `/rank`/`/graphs` are proxied
///   there; graphs loaded with `"split": true` live on every shard and
///   the router drives their estimation rounds across all of them
///   ([`crate::shard::ShardedExec`]), merging partial accumulators so
///   results are bit-identical to a standalone run.
/// - `Shard`: a standalone node that additionally serves the internal
///   binary `POST /shard/exec` endpoint for routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Role {
    /// Compute everything locally (default).
    #[default]
    Standalone,
    /// Place graphs on shards and route/drive requests to them.
    Router,
    /// Standalone plus the internal `/shard/exec` endpoint.
    Shard,
}

impl Role {
    /// Lowercase wire/CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Role::Standalone => "standalone",
            Role::Router => "router",
            Role::Shard => "shard",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Role> {
        match s {
            "standalone" => Some(Role::Standalone),
            "router" => Some(Role::Router),
            "shard" => Some(Role::Shard),
            _ => None,
        }
    }
}

/// Where a router placed a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Placement {
    /// The whole graph lives on one shard; requests are proxied.
    Remote(usize),
    /// The graph lives on every shard (and on the router, which owns the
    /// decomposition and drives sharded estimation).
    Split,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads computing responses (0 = available parallelism).
    /// Workers bound concurrent *requests*, not connections — idle
    /// connections are parked in the reactor and cost no worker.
    pub workers: usize,
    /// Completed-ranking cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// How long a persistent connection may sit idle (no request bytes
    /// arriving, nothing owed to the client) before the reactor closes it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it with
    /// `Connection: close` (0 = unlimited).
    pub max_requests_per_conn: usize,
    /// Open-connection cap: connections accepted beyond it are closed
    /// immediately (0 = unlimited). Purely a memory/fd bound — parked
    /// connections no longer hold workers.
    pub max_connections: usize,
    /// Requests that may be parsed-and-in-flight per connection before
    /// the reactor stops reading from it (HTTP/1.1 pipelining depth;
    /// clamped to ≥ 1). Responses always return in request order.
    pub pipeline_depth: usize,
    /// Journal rotation bound: when appending a line would push
    /// `journal.log` past this many bytes, it is first rotated to
    /// `journal.log.1` (atomically, replacing any previous rotation).
    /// `None` keeps the pre-rotation append-forever behavior.
    pub journal_max_bytes: Option<u64>,
    /// State directory for registry persistence. When set, graph loads
    /// write crash-safe snapshots there ([`crate::persist`]), every
    /// `/rank` request appends a journal line, and construction restores
    /// all `*.snap` files into the registry — skipping re-decomposition
    /// entirely for intact snapshots. `None` disables persistence (the
    /// pre-PR-4 behavior). Persistence failures degrade with a warning on
    /// stderr; they never fail a request or a boot.
    pub state_dir: Option<PathBuf>,
    /// Gather window for cross-request batching: how long the first cold
    /// `/rank` request of a `(graph, measure, eps, delta, seed, khops)`
    /// class holds its computation open for other *distinct-target*
    /// requests of the same class to coalesce into one shared sample
    /// stream. Zero disables gathering (every cold request computes as a
    /// batch of one). Batching never changes response bytes — each
    /// member's body is bit-identical to a quiet-server run.
    pub batch_window: Duration,
    /// What this node does with the registry and `/rank` (see [`Role`]).
    pub role: Role,
    /// Shard backend addresses (`host:port`), router role only. Validate
    /// with [`saphyra::params::check_shard_addrs`] before serving.
    pub shards: Vec<String>,
    /// Re-snapshot cadence for `PATCH /graphs/<name>`: every this-many
    /// applied deltas (per graph), the patched graph is written out as a
    /// fresh snapshot, so a restart replays at most this many journaled
    /// patch records per graph instead of the whole history. Clamped to
    /// ≥ 1; 1 snapshots on every patch.
    pub resnapshot_deltas: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 128,
            idle_timeout: Duration::from_secs(10),
            max_requests_per_conn: 1024,
            max_connections: 4096,
            pipeline_depth: 32,
            journal_max_bytes: None,
            state_dir: None,
            batch_window: Duration::from_millis(2),
            role: Role::Standalone,
            shards: Vec::new(),
            resnapshot_deltas: 16,
        }
    }
}

/// Maximum warm-cache entries persisted per graph on re-snapshot. Bounds
/// the warm section (each entry is one JSON body plus its key) so
/// snapshots stay dominated by the graph section, while still covering a
/// restarted node's whole hot set for realistic request skews.
const WARM_CAP: usize = 32;

/// Centrality measures the service can rank by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Measure {
    Betweenness,
    KPath,
    Harmonic,
}

impl Measure {
    fn parse(s: &str) -> Option<Measure> {
        match s {
            "bc" | "betweenness" => Some(Measure::Betweenness),
            "kpath" => Some(Measure::KPath),
            "harmonic" | "closeness" => Some(Measure::Harmonic),
            _ => None,
        }
    }

    fn as_str(&self) -> &'static str {
        match self {
            Measure::Betweenness => "bc",
            Measure::KPath => "kpath",
            Measure::Harmonic => "harmonic",
        }
    }

    /// Stable wire code used by the snapshot warm section
    /// ([`persist::WarmEntry::measure`]). The service owns this mapping;
    /// persist treats the byte as opaque.
    fn code(&self) -> u8 {
        match self {
            Measure::Betweenness => 0,
            Measure::KPath => 1,
            Measure::Harmonic => 2,
        }
    }

    /// Inverse of [`Measure::code`]. `None` for codes this build does not
    /// know — a warm entry written by a newer build is dropped, never
    /// misfiled under the wrong measure.
    fn from_code(code: u8) -> Option<Measure> {
        match code {
            0 => Some(Measure::Betweenness),
            1 => Some(Measure::KPath),
            2 => Some(Measure::Harmonic),
            _ => None,
        }
    }
}

/// Everything that makes a `/rank` response unique. `eps`/`delta` enter by
/// bit pattern: distinct floats that print identically are still distinct
/// requests. `epoch` pins the key to one *load* of the graph: a request
/// that raced a same-name reload and computed against the old entry
/// inserts under the old epoch and can never be served to requests
/// resolving the new entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RankKey {
    graph: String,
    epoch: u64,
    measure: Measure,
    targets: Vec<NodeId>,
    eps_bits: u64,
    delta_bits: u64,
    seed: u64,
    khops: usize,
}

/// A validated `/rank` request.
struct RankParams {
    graph: String,
    measure: Measure,
    targets: Vec<NodeId>,
    eps: f64,
    delta: f64,
    seed: u64,
    khops: usize,
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn error_response(status: u16, message: impl Into<String>) -> Response {
    Response::json(
        status,
        obj(vec![("error", Json::from(message.into()))]).to_string(),
    )
}

/// One in-flight `/rank` computation: the leader fills `done` and notifies;
/// waiters block on the condvar. The inner `Option` is `None` when the
/// leader failed without a body (it panicked), in which case waiters answer
/// 500 rather than hanging or recomputing.
#[derive(Debug, Default)]
struct Inflight {
    done: Mutex<Option<Option<Arc<String>>>>,
    cv: Condvar,
}

/// Removes the leader's in-flight entry on every exit path — including a
/// panic in the computation, where waiters would otherwise block forever.
struct InflightGuard<'a> {
    service: &'a Service,
    key: RankKey,
    slot: Arc<Inflight>,
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        let mut done = self.slot.done.lock_ok();
        if done.is_none() {
            *done = Some(None); // leader died without a body
            self.slot.cv.notify_all();
        }
        drop(done);
        self.service.inflight.lock_ok().remove(&self.key);
    }
}

/// The coalescing class of a `/rank` request: [`RankKey`] minus the target
/// set. Cold requests that agree on everything *except* targets can share
/// one sample stream — the batched estimators score every target set from
/// the same master seed and are bit-identical per member to solo runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BatchKey {
    graph: String,
    epoch: u64,
    measure: Measure,
    eps_bits: u64,
    delta_bits: u64,
    seed: u64,
    khops: usize,
}

/// An open gather window: the members enrolled so far. The first request
/// of a class opens the window (becoming the batch leader) and seals it
/// after [`ServiceConfig::batch_window`]; enrollment happens under the
/// `Service::batches` lock, so a request that found the window in the map
/// is always enrolled before the leader removes it.
#[derive(Debug, Default)]
struct Batch {
    members: Mutex<Vec<BatchMember>>,
}

/// One enrolled request: its cache key, its target set, and its in-flight
/// slot. The leader publishes the member's computed body straight into the
/// slot — the member (and any same-key single-flight waiters parked on it)
/// wakes exactly as if it had computed alone.
#[derive(Debug)]
struct BatchMember {
    key: RankKey,
    targets: Vec<NodeId>,
    slot: Arc<Inflight>,
}

/// Answers every still-parked member with "leader died" if the batch
/// computation unwinds. Members' own [`InflightGuard`]s only cover their
/// own slots — and they are blocked waiting, so without this a panicking
/// leader would strand them forever.
struct BatchGuard<'a> {
    members: &'a [BatchMember],
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        for m in self.members {
            let mut done = m.slot.done.lock_ok();
            if done.is_none() {
                *done = Some(None);
                m.slot.cv.notify_all();
            }
        }
    }
}

/// Shared service state: registry, cache, in-flight map, counters. Routing
/// lives in [`Service::handle`], which is pure with respect to the network
/// layer and therefore directly testable.
#[derive(Debug)]
pub struct Service {
    registry: Registry,
    cache: Mutex<LruCache<RankKey, Arc<String>>>,
    /// Reverse index graph → live cache keys, kept an exact mirror of
    /// `cache` by mutating both under the cache lock (order:
    /// `server.cache` → `registry.by_graph`). Reload purges and `PATCH`
    /// invalidation walk it instead of scanning the whole cache.
    cache_index: KeyIndex<RankKey>,
    inflight: Mutex<HashMap<RankKey, Arc<Inflight>>>,
    batches: Mutex<HashMap<BatchKey, Arc<Batch>>>,
    /// Cache keys whose bodies were restored from a snapshot's warm
    /// section (`server.warm` in the lock hierarchy, taken after the
    /// cache lock). A hit on one of these counts in `warm_hits`: the
    /// restart answered from persisted work instead of recomputing.
    warm: Mutex<HashSet<RankKey>>,
    requests: AtomicU64,
    connections: AtomicU64,
    open_connections: AtomicU64,
    pipelined: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_shared: AtomicU64,
    computations: AtomicU64,
    batched: AtomicU64,
    sample_passes: AtomicU64,
    decompositions: AtomicU64,
    snapshots_loaded: AtomicU64,
    warm_hits: AtomicU64,
    patches: AtomicU64,
    patches_replayed: AtomicU64,
    persist: Option<PersistState>,
    /// Serializes the snapshot-write + registry-insert pair of a graph
    /// load. Without it, two concurrent same-name loads can finish in
    /// opposite orders on disk and in memory — the running service would
    /// then rank one graph and a restart silently restore the other.
    load_publish: Mutex<()>,
    role: Role,
    /// Shard backends (router role only).
    shards: Option<ShardPool>,
    /// Router-side registry view: where each loaded graph lives.
    placements: Mutex<BTreeMap<String, Placement>>,
    workers: usize,
    idle_timeout: Duration,
    max_requests_per_conn: usize,
    max_connections: usize,
    pipeline_depth: usize,
    batch_window: Duration,
    resnapshot_deltas: usize,
}

/// Open persistence resources of a service with a state directory.
#[derive(Debug)]
struct PersistState {
    dir: PathBuf,
    journal: persist::Journal,
}

impl Service {
    /// Creates the state for a server with the given configuration. With
    /// [`ServiceConfig::state_dir`] set, the directory is created if
    /// missing, every snapshot in it is restored into the registry, and
    /// the request journal is opened for appending. Persistence problems
    /// (unwritable dir, damaged snapshots) warn on stderr and degrade —
    /// they never panic and never abort construction.
    pub fn new(cfg: ServiceConfig) -> Self {
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let persist = cfg.state_dir.as_ref().and_then(|dir| {
            let open = std::fs::create_dir_all(dir)
                .and_then(|()| persist::Journal::open_with_limit(dir, cfg.journal_max_bytes))
                .map(|journal| PersistState {
                    dir: dir.clone(),
                    journal,
                });
            match open {
                Ok(state) => Some(state),
                Err(e) => {
                    eprintln!(
                        "warning: state dir {} unusable ({e}); persistence disabled",
                        dir.display()
                    );
                    None
                }
            }
        });
        let service = Service {
            registry: Registry::new(),
            cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
            cache_index: KeyIndex::new(),
            inflight: Mutex::new(HashMap::new()),
            batches: Mutex::new(HashMap::new()),
            warm: Mutex::new(HashSet::new()),
            requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            open_connections: AtomicU64::new(0),
            pipelined: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_shared: AtomicU64::new(0),
            computations: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            sample_passes: AtomicU64::new(0),
            decompositions: AtomicU64::new(0),
            snapshots_loaded: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            patches: AtomicU64::new(0),
            patches_replayed: AtomicU64::new(0),
            persist,
            load_publish: Mutex::new(()),
            role: cfg.role,
            shards: (cfg.role == Role::Router).then(|| ShardPool::new(cfg.shards.clone())),
            placements: Mutex::new(BTreeMap::new()),
            workers,
            idle_timeout: cfg.idle_timeout,
            max_requests_per_conn: cfg.max_requests_per_conn,
            max_connections: cfg.max_connections,
            pipeline_depth: cfg.pipeline_depth.max(1),
            batch_window: cfg.batch_window,
            resnapshot_deltas: cfg.resnapshot_deltas.max(1),
        };
        // Restore straight from the configured dir, NOT via `persist`: a
        // readable-but-unwritable state dir (read-only remount, tightened
        // perms) must still restore every intact snapshot — only the
        // *write* side (snapshots + journal) degrades.
        if let Some(dir) = cfg.state_dir.as_ref() {
            service.restore_from_dir(dir);
            service.replay_patch_records(dir);
        }
        service
    }

    /// Restores every `*.snap` snapshot in `dir` into the registry
    /// (name-sorted). Version-3 snapshots on unix serve their graph
    /// sections zero-copy from a private read-only mapping of the file
    /// ([`persist::load_snapshot_mapped`]); older containers and any
    /// mapping failure decode into owned memory. Intact snapshots skip
    /// decomposition entirely; a snapshot whose decomposition section is
    /// damaged or version-mismatched falls back to recomputing it from
    /// the restored graph with a warning (and rewrites the repaired
    /// snapshot, so the recompute cost is paid once, not on every
    /// subsequent boot); a snapshot whose graph section is damaged, or
    /// whose embedded name does not match its file stem, is skipped with
    /// a warning. Warm-section entries are re-inserted into the ranking
    /// cache under the fresh entry epoch, so the hottest pre-restart
    /// requests answer without recomputation. Returns
    /// `(restored, recomputed)` counts.
    ///
    /// `serve --state-dir` boots call this through [`Service::new`]; the
    /// offline `saphyra snapshot replay` path calls it directly on a
    /// journal-less service.
    pub fn restore_from_dir(&self, dir: &Path) -> (usize, usize) {
        let paths = match persist::scan_snapshots(dir) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("warning: cannot scan {}: {e}", dir.display());
                return (0, 0);
            }
        };
        let (mut restored, mut recomputed) = (0usize, 0usize);
        for path in paths {
            let snap = match persist::load_snapshot_mapped(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("warning: skipping snapshot {}: {e}", path.display());
                    continue;
                }
            };
            // The file stem is the registry's authority on which name a
            // snapshot serves (`<name>.snap` is what loads write). A file
            // whose embedded name disagrees — e.g. an offline
            // `snapshot save --name g other.snap` dropped into the dir —
            // must not shadow the genuine `g.snap` by scan order.
            let stem = path.file_stem().and_then(|s| s.to_str());
            if stem != Some(snap.name.as_str()) {
                eprintln!(
                    "warning: skipping snapshot {}: embedded graph name {:?} does not match \
                     the file stem",
                    path.display(),
                    snap.name
                );
                continue;
            }
            let persist::LoadedSnapshot {
                name: graph_name,
                graph,
                dec,
                delta_seq,
                warm,
                mapped: _,
            } = snap;
            let entry = match dec {
                Ok(dec) => {
                    self.snapshots_loaded.fetch_add(1, Ordering::Relaxed);
                    restored += 1;
                    GraphEntry::from_parts_seq(graph_name, graph, dec, delta_seq)
                }
                Err(reason) => {
                    eprintln!(
                        "warning: snapshot {}: decomposition unusable ({reason}); recomputing",
                        path.display()
                    );
                    self.decompositions.fetch_add(1, Ordering::Relaxed);
                    recomputed += 1;
                    let dec = saphyra::bc::BcDecomposition::compute(&graph);
                    let entry = GraphEntry::from_parts_seq(graph_name, graph, dec, delta_seq);
                    // Self-heal: rewrite the repaired snapshot (warm
                    // section included — the cached bodies are keyed by
                    // request parameters, not by the decomposition) so the
                    // next boot restores instead of recomputing again.
                    match persist::save_snapshot_with_warm(
                        &path,
                        &entry.name,
                        &entry.graph,
                        &entry.dec,
                        entry.delta_seq,
                        &warm,
                    ) {
                        Ok(()) => eprintln!("repaired snapshot {}", path.display()),
                        Err(e) => {
                            eprintln!("warning: cannot rewrite {}: {e}", path.display())
                        }
                    }
                    entry
                }
            };
            let (name, epoch) = (entry.name.clone(), entry.epoch);
            self.registry.insert(entry);
            self.restore_warm(&name, epoch, warm);
        }
        (restored, recomputed)
    }

    /// Re-inserts a snapshot's warm-section bodies into the ranking cache
    /// under `epoch` (the fresh epoch minted for the restored entry — the
    /// persisted requests were keyed under a dead pre-restart epoch).
    /// Entries naming a measure code this build does not know are dropped
    /// with a warning. The restored keys are recorded in the warm set so
    /// hits on them count in `warm_hits`.
    fn restore_warm(&self, name: &str, epoch: u64, entries: Vec<persist::WarmEntry>) {
        for e in entries {
            let Some(measure) = Measure::from_code(e.measure) else {
                eprintln!(
                    "warning: dropping warm entry for {name:?} with unknown measure code {}",
                    e.measure
                );
                continue;
            };
            let key = RankKey {
                graph: name.to_string(),
                epoch,
                measure,
                targets: e.targets,
                eps_bits: e.eps_bits,
                delta_bits: e.delta_bits,
                seed: e.seed,
                khops: e.khops as usize,
            };
            let mut cache = self.lock_cache();
            if let Some(evicted) = cache.insert(key.clone(), Arc::new(e.body)) {
                self.cache_index.remove(&evicted.graph, &evicted);
            }
            self.cache_index.insert(name, key.clone());
            self.warm.lock_ok().insert(key);
        }
    }

    /// Collects the hottest cached bodies of `graph` (by LRU recency,
    /// newest first, capped at [`WARM_CAP`]) as snapshot warm entries.
    /// Reads recency through [`LruCache::peek`], so collection never
    /// perturbs the ordering it ranks by.
    fn collect_warm(&self, graph: &str) -> Vec<persist::WarmEntry> {
        let mut hot: Vec<(u64, RankKey, Arc<String>)> = {
            let cache = self.lock_cache();
            self.cache_index
                .keys_of(graph)
                .into_iter()
                .filter_map(|k| cache.peek(&k).map(|(tick, v)| (tick, k, Arc::clone(v))))
                .collect()
        };
        hot.sort_by_key(|(tick, _, _)| std::cmp::Reverse(*tick));
        hot.truncate(WARM_CAP);
        hot.into_iter()
            .map(|(_, k, body)| persist::WarmEntry {
                measure: k.measure.code(),
                targets: k.targets,
                eps_bits: k.eps_bits,
                delta_bits: k.delta_bits,
                seed: k.seed,
                khops: k.khops as u64,
                body: body.as_str().to_string(),
            })
            .collect()
    }

    /// Rewrites every registered graph's snapshot with its current warm
    /// section — the `POST /shutdown` path, so the *next* boot serves this
    /// run's hottest requests from the page cache. No-op (returning 0)
    /// without persistence. Returns the number of snapshots written.
    fn write_warm_snapshots(&self) -> usize {
        let Some(p) = &self.persist else { return 0 };
        let publish = self.load_publish.lock_ok();
        let mut written = 0;
        for entry in self.registry.list() {
            let warm = self.collect_warm(&entry.name);
            let path = persist::snapshot_path(&p.dir, &entry.name);
            match persist::save_snapshot_with_warm(
                &path,
                &entry.name,
                &entry.graph,
                &entry.dec,
                entry.delta_seq,
                &warm,
            ) {
                Ok(()) => written += 1,
                Err(e) => eprintln!("warning: cannot snapshot {}: {e}", path.display()),
            }
        }
        drop(publish);
        written
    }

    /// Re-applies journaled `PATCH /graphs/<name>` deltas on top of the
    /// restored snapshots — the read side of delta journaling. A record is
    /// applied only when its sequence number is exactly one past the
    /// entry's `delta_seq`: records the snapshot already contains are
    /// skipped, and a gap (older records rotated away after the matching
    /// re-snapshot was lost) is reported instead of misapplied — the graph
    /// then serves at its snapshot state, never a wrong one. Returns the
    /// number of deltas applied.
    ///
    /// `serve --state-dir` boots call this through [`Service::new`] right
    /// after [`Service::restore_from_dir`]; the offline `snapshot replay`
    /// CLI does the same before replaying `/rank` records.
    pub fn replay_patch_records(&self, dir: &Path) -> usize {
        let records = match persist::read_patch_records(dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!(
                    "warning: cannot read patch records in {}: {e}",
                    dir.display()
                );
                return 0;
            }
        };
        let mut applied = 0;
        for rec in records {
            let Some(entry) = self.registry.get(&rec.graph) else {
                // The graph's snapshot is gone (or never existed); its
                // surviving patch records are orphans.
                continue;
            };
            if rec.seq <= entry.delta_seq {
                continue; // already folded into the snapshot
            }
            if rec.seq != entry.delta_seq + 1 {
                eprintln!(
                    "warning: patch journal gap for {:?}: have seq {}, next surviving record \
                     is {} — serving the snapshot state",
                    rec.graph, entry.delta_seq, rec.seq
                );
                continue;
            }
            let delta = EdgeDelta {
                insert: rec.insert.clone(),
                delete: rec.delete.clone(),
            };
            match entry.dec.apply_delta(&entry.graph, &delta) {
                Ok(out) => {
                    self.registry.insert(GraphEntry::from_parts_seq(
                        rec.graph.clone(),
                        out.graph,
                        out.dec,
                        rec.seq,
                    ));
                    self.patches.fetch_add(1, Ordering::Relaxed);
                    self.patches_replayed.fetch_add(1, Ordering::Relaxed);
                    applied += 1;
                }
                Err(e) => {
                    eprintln!(
                        "warning: journaled patch seq {} for {:?} no longer applies ({e}); \
                         serving the graph as of seq {}",
                        rec.seq, rec.graph, entry.delta_seq
                    );
                }
            }
        }
        applied
    }

    /// The graph registry (pre-loading graphs before `serve` is handy in
    /// tests and benches).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Lifetime cache-hit count.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache-miss count.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Lifetime count of requests that waited on another request's
    /// in-flight computation and replayed its bytes.
    pub fn cache_shared(&self) -> u64 {
        self.cache_shared.load(Ordering::Relaxed)
    }

    /// Lifetime count of ranking computations actually performed (misses
    /// minus single-flight collapsing).
    pub fn computations(&self) -> u64 {
        self.computations.load(Ordering::Relaxed)
    }

    /// Lifetime count of `/rank` requests whose computation was coalesced
    /// into a shared sample pass with at least one other request (batch
    /// members in batches of size ≥ 2, leaders included).
    pub fn batched(&self) -> u64 {
        self.batched.load(Ordering::Relaxed)
    }

    /// Lifetime count of sample passes run: one per sealed batch, whatever
    /// its size. `computations - sample_passes` is the work saved by
    /// cross-request batching.
    pub fn sample_passes(&self) -> u64 {
        self.sample_passes.load(Ordering::Relaxed)
    }

    /// Lifetime count of TCP connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Currently open connections (gauge: accepted minus closed).
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// Lifetime count of requests parsed off a connection while an
    /// earlier response on the same connection was still in flight
    /// (pipelining actually happening, not merely allowed).
    pub fn pipelined(&self) -> u64 {
        self.pipelined.load(Ordering::Relaxed)
    }

    /// Lifetime count of graph decompositions this service computed
    /// (graph loads plus snapshot-fallback recomputes). A service booted
    /// purely from intact snapshots reports 0 — the whole point of
    /// persistence.
    pub fn decompositions(&self) -> u64 {
        self.decompositions.load(Ordering::Relaxed)
    }

    /// Lifetime count of registry entries restored from snapshots without
    /// recomputation.
    pub fn snapshots_loaded(&self) -> u64 {
        self.snapshots_loaded.load(Ordering::Relaxed)
    }

    /// Lifetime count of edge-delta patches applied (`PATCH
    /// /graphs/<name>`), boot replay included.
    pub fn patches(&self) -> u64 {
        self.patches.load(Ordering::Relaxed)
    }

    /// Lifetime count of journaled patch records re-applied at boot.
    pub fn patches_replayed(&self) -> u64 {
        self.patches_replayed.load(Ordering::Relaxed)
    }

    /// Lifetime count of cache hits answered by bodies restored from a
    /// snapshot's warm section — work a restart did *not* redo.
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits.load(Ordering::Relaxed)
    }

    /// Counts a `/rank` cache hit, additionally crediting `warm_hits`
    /// when the key's body was restored from a snapshot warm section.
    /// Callers hold the cache lock (the warm set sits *after* the cache
    /// in the lock hierarchy: `server.cache` → `server.warm`).
    fn note_cache_hit(&self, key: &RankKey) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        if self.warm.lock_ok().contains(key) {
            self.warm_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Locks the ranking cache, recovering from poison by clearing **both**
    /// the cache and its reverse index — the index mirrors the cache's key
    /// set exactly, so an emptied cache with a populated index would leak
    /// dead keys into every later scoped invalidation.
    fn lock_cache(&self) -> std::sync::MutexGuard<'_, LruCache<RankKey, Arc<String>>> {
        self.cache.lock_repair(|c| {
            c.clear();
            self.cache_index.clear();
        })
    }

    /// Routes one request. The boolean asks the runtime to shut down.
    pub fn handle(&self, req: &Request) -> (Response, bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let resp = match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => self.healthz(),
            ("GET", "/graphs") => match self.role {
                Role::Router => self.router_list_graphs(),
                _ => self.list_graphs(),
            },
            ("POST", "/graphs") => {
                let body = req
                    .body_str()
                    .map_err(|e| e.to_string())
                    .and_then(|t| Json::parse(t).map_err(|e| format!("invalid JSON body: {e}")));
                match &body {
                    Ok(json) => self.load_graph(json),
                    Err(e) => error_response(400, e.clone()),
                }
            }
            ("POST", "/shard/exec") => {
                if self.role == Role::Shard {
                    shard::handle_exec(&self.registry, &req.body)
                } else {
                    error_response(
                        400,
                        "/shard/exec is internal to shard nodes (start with --role shard)",
                    )
                }
            }
            ("POST", "/rank") => {
                // Parse the body exactly once; ranking and the journal
                // both consume the same parsed value.
                let body = req
                    .body_str()
                    .map_err(|e| e.to_string())
                    .and_then(|t| Json::parse(t).map_err(|e| format!("invalid JSON body: {e}")));
                let resp = match &body {
                    Ok(json) => match self.router_proxy_rank(json) {
                        Some(proxied) => proxied,
                        None => self.rank(json),
                    },
                    Err(e) => error_response(400, e.clone()),
                };
                self.journal_rank(body.ok(), &resp);
                resp
            }
            ("POST", "/shutdown") => {
                // Flush warm-enriched snapshots first: the hottest cached
                // bodies ride the snapshot down so the next boot answers
                // them from the page cache instead of recomputing.
                let warm_snapshots = self.write_warm_snapshots();
                let body = obj(vec![
                    ("status", Json::from("shutting down")),
                    ("warm_snapshots", Json::from(warm_snapshots)),
                ])
                .to_string();
                return (Response::json(200, body), true);
            }
            ("PATCH", path) => match path.strip_prefix("/graphs/").filter(|n| !n.is_empty()) {
                None => error_response(404, format!("no such endpoint {}", req.path)),
                Some(name) => {
                    let body = req.body_str().map_err(|e| e.to_string()).and_then(|t| {
                        Json::parse(t).map_err(|e| format!("invalid JSON body: {e}"))
                    });
                    match &body {
                        Ok(json) => self.patch_graph(name, json),
                        Err(e) => error_response(400, e.clone()),
                    }
                }
            },
            ("GET" | "POST", _) => error_response(404, format!("no such endpoint {}", req.path)),
            _ => error_response(405, format!("method {} not allowed", req.method)),
        };
        (resp, false)
    }

    fn healthz(&self) -> Response {
        let (rounds, merge_nanos) = self
            .shards
            .as_ref()
            .map(|p| {
                (
                    p.stats().rounds.load(Ordering::Relaxed),
                    p.stats().merge_nanos.load(Ordering::Relaxed),
                )
            })
            .unwrap_or((0, 0));
        // Memory-tier gauges: bytes the registry's CSR arrays occupy as
        // stored (succinct offsets counted at their compressed size) and
        // how many graphs serve zero-copy from mapped snapshots.
        let (resident_graph_bytes, mmap_graphs) =
            self.registry
                .list()
                .iter()
                .fold((0usize, 0usize), |(bytes, mapped), e| {
                    let f = e.graph.footprint();
                    (bytes + f.csr_bytes(), mapped + usize::from(f.mapped))
                });
        let body = obj(vec![
            ("status", Json::from("ok")),
            ("role", Json::from(self.role.as_str())),
            (
                "shards",
                Json::from(self.shards.as_ref().map_or(0, ShardPool::len)),
            ),
            ("sharded_rounds", Json::from(rounds)),
            ("sharded_merge_nanos", Json::from(merge_nanos)),
            ("graphs", Json::from(self.registry.len())),
            ("workers", Json::from(self.workers)),
            (
                "requests",
                Json::from(self.requests.load(Ordering::Relaxed)),
            ),
            ("connections", Json::from(self.connections())),
            ("open_connections", Json::from(self.open_connections())),
            ("pipelined", Json::from(self.pipelined())),
            ("cache_hits", Json::from(self.cache_hits())),
            ("cache_misses", Json::from(self.cache_misses())),
            ("cache_shared", Json::from(self.cache_shared())),
            ("computations", Json::from(self.computations())),
            ("batched", Json::from(self.batched())),
            ("sample_passes", Json::from(self.sample_passes())),
            ("decompositions", Json::from(self.decompositions())),
            ("snapshots_loaded", Json::from(self.snapshots_loaded())),
            ("patches", Json::from(self.patches())),
            ("patches_replayed", Json::from(self.patches_replayed())),
            ("resident_graph_bytes", Json::from(resident_graph_bytes)),
            ("mmap_graphs", Json::from(mmap_graphs)),
            ("warm_hits", Json::from(self.warm_hits())),
        ])
        .to_string();
        Response::json(200, body)
    }

    /// Appends one journal line for a handled `/rank` request (no-op
    /// without a state dir). `request` is the already-parsed body (`None`
    /// when it was not valid JSON). Journal failures warn; the response
    /// already computed is served regardless.
    fn journal_rank(&self, request: Option<Json>, resp: &Response) {
        let Some(p) = &self.persist else { return };
        let ts = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let cache = resp
            .headers
            .iter()
            .find(|(k, _)| k == "X-Saphyra-Cache")
            .map(|(_, v)| v.as_str());
        let line = persist::journal_line(ts, resp.status, cache, request);
        if let Err(e) = p.journal.append(&line) {
            eprintln!("warning: journal append failed: {e}");
        }
    }

    fn list_graphs(&self) -> Response {
        let graphs: Vec<Json> = self.registry.list().iter().map(|e| graph_info(e)).collect();
        Response::json(200, obj(vec![("graphs", Json::Arr(graphs))]).to_string())
    }

    /// Routes a parsed `POST /graphs` body by role: routers place the
    /// graph on shards ([`Service::router_load_graph`]); other roles load
    /// locally, rejecting the router-only `"split"` flag.
    fn load_graph(&self, body: &Json) -> Response {
        let split = match body.get("split") {
            None => false,
            Some(v) => match v.as_bool() {
                Some(b) => b,
                None => return error_response(400, "field \"split\" must be a boolean"),
            },
        };
        if self.role == Role::Router {
            return self.router_load_graph(body, split);
        }
        if split {
            return error_response(400, "\"split\": true requires a router (--role router)");
        }
        self.load_graph_local(body)
    }

    /// Loads a graph into this node's own registry (the standalone path,
    /// and what a router does for its local copy of a split graph).
    fn load_graph_local(&self, body: &Json) -> Response {
        let name = match body.get("name").and_then(Json::as_str) {
            Some(n) if valid_graph_name(n) => n.to_string(),
            Some(n) => {
                let why = "want 1-64 chars of [A-Za-z0-9._-], no leading dot";
                return error_response(400, format!("invalid graph name {n:?} ({why})"));
            }
            None => return error_response(400, "missing required string field \"name\""),
        };

        let graph = match (body.get("path"), body.get("network")) {
            (Some(path), None) => {
                let Some(path) = path.as_str() else {
                    return error_response(400, "\"path\" must be a string");
                };
                match graph_io::load_edge_list(path) {
                    Ok(g) => g,
                    Err(e) => return error_response(400, format!("cannot load {path}: {e}")),
                }
            }
            (None, Some(network)) => {
                let Some(network) = network.as_str() else {
                    return error_response(400, "\"network\" must be a string");
                };
                let Ok(net) = network.parse::<SimNetwork>() else {
                    return error_response(400, format!("unknown network {network:?}"));
                };
                let size = body.get("size").and_then(Json::as_str).unwrap_or("tiny");
                let Ok(size) = size.parse::<SizeClass>() else {
                    return error_response(400, format!("unknown size class {size:?}"));
                };
                let seed = match opt_u64(body, "seed", 2022) {
                    Ok(s) => s,
                    Err(e) => return error_response(400, e),
                };
                net.build(size, seed)
            }
            _ => {
                return error_response(
                    400,
                    "body must have exactly one of \"path\" (edge-list file) or \"network\" (generator)",
                )
            }
        };

        let entry = GraphEntry::build(name.clone(), graph);
        self.decompositions.fetch_add(1, Ordering::Relaxed);
        let info = graph_info(&entry);
        // Publish atomically with respect to other loads: snapshot write
        // and registry insert must land in the same order for every
        // loader, or disk and memory could end up holding different
        // graphs under one name. The expensive decomposition above stays
        // outside the critical section.
        let publish = self.load_publish.lock_ok();
        // Snapshot before publishing: a crash right after the write leaves
        // a snapshot for a load the client never saw confirmed — harmless
        // (the next boot restores it); the reverse order could confirm a
        // load that a restart then forgets.
        let persisted = match &self.persist {
            None => None,
            Some(p) => {
                let path = persist::snapshot_path(&p.dir, &name);
                match persist::save_snapshot(&path, &name, &entry.graph, &entry.dec, 0) {
                    Ok(()) => Some(true),
                    Err(e) => {
                        eprintln!("warning: cannot snapshot {}: {e}", path.display());
                        Some(false)
                    }
                }
            }
        };
        let replaced = self.registry.insert(entry);
        drop(publish);
        if replaced {
            // Correctness is already guaranteed by the epoch in RankKey
            // (old-entry results can never alias the new load); dropping
            // the dead entries here is memory hygiene. The purge is scoped
            // through the reverse index to exactly the reloaded graph's
            // keys — other graphs' hot entries survive untouched (a full
            // retain scan would also evict nothing else, but at O(cache)
            // per reload and with the index left stale).
            let mut cache = self.lock_cache();
            for k in self.cache_index.take(&name) {
                cache.remove(&k);
                self.warm.lock_ok().remove(&k);
            }
        }
        let Json::Obj(mut fields) = info else {
            unreachable!()
        };
        fields.push(("replaced".to_string(), Json::Bool(replaced)));
        if let Some(persisted) = persisted {
            fields.push(("persisted".to_string(), Json::Bool(persisted)));
        }
        Response::json(200, Json::Obj(fields).to_string())
    }

    /// Routes a parsed `PATCH /graphs/<name>` body by role: routers fan
    /// the delta to the owning shard(s)
    /// ([`Service::router_patch_graph`]); other roles apply it locally.
    fn patch_graph(&self, name: &str, body: &Json) -> Response {
        if self.role == Role::Router {
            return self.router_patch_graph(name, body);
        }
        self.patch_graph_local(name, body)
    }

    /// Applies an edge delta to a loaded graph: incremental decomposition
    /// refresh ([`saphyra::bc::BcDecomposition::apply_delta`] — only
    /// components the delta touches are re-derived), registry swap under a
    /// fresh epoch, delta journaling, periodic re-snapshotting, and
    /// component-scoped cache invalidation. Rankings whose targets all lie
    /// in untouched connected components are byte-identical on the patched
    /// graph (pinned by `untouched_component_rankings_survive_patch` in
    /// `crates/core/tests/proptest_bc.rs`), so their cached bodies are
    /// re-keyed under the new epoch and keep serving hits; everything else
    /// for this graph is purged.
    fn patch_graph_local(&self, name: &str, body: &Json) -> Response {
        let (insert, delete) = match (opt_edges(body, "insert"), opt_edges(body, "delete")) {
            (Ok(i), Ok(d)) => (i, d),
            (Err(e), _) | (_, Err(e)) => return error_response(400, e),
        };
        // Validate against the current node count before taking the
        // publication lock, so garbage never serializes behind real work;
        // the delta layer re-validates authoritatively during apply.
        {
            let Some(entry) = self.registry.get(name) else {
                return error_response(404, format!("unknown graph {name:?} (POST /graphs first)"));
            };
            if let Err(e) = params::check_edge_delta(&insert, &delete, entry.graph.num_nodes()) {
                return error_response(400, e);
            }
        }
        let delta = EdgeDelta { insert, delete };

        // Publication critical section, shared with graph loads: apply,
        // journal append, optional re-snapshot and registry swap must land
        // in the same order for every writer, or disk and memory could
        // disagree about the graph a name serves.
        let publish = self.load_publish.lock_ok();
        // Re-fetch under the lock — a concurrent load or patch may have
        // swapped the entry after the validation peek above.
        let Some(entry) = self.registry.get(name) else {
            return error_response(404, format!("unknown graph {name:?} (POST /graphs first)"));
        };
        let out = match entry.dec.apply_delta(&entry.graph, &delta) {
            Ok(out) => out,
            Err(e) => return error_response(400, e.to_string()),
        };
        let DeltaOutcome {
            graph,
            dec,
            dirty_nodes,
            inserted,
            deleted,
        } = out;
        let new_seq = entry.delta_seq + 1;
        let old_epoch = entry.epoch;

        // Journal before publishing (the same rationale as snapshotting
        // before a load's registry insert): a crash right after the append
        // leaves a record for a patch the client never saw confirmed —
        // harmless, the next boot replays it; the reverse order could
        // confirm a patch a restart then forgets.
        let journaled = self.persist.as_ref().map(|p| {
            let ts = SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            let rec = persist::PatchRecord {
                graph: name.to_string(),
                seq: new_seq,
                insert: delta.insert.clone(),
                delete: delta.delete.clone(),
            };
            match p.journal.append(&persist::patch_line(ts, &rec)) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!("warning: journal append failed: {e}");
                    false
                }
            }
        });
        let new_entry = GraphEntry::from_parts_seq(name.to_string(), graph, dec, new_seq);
        let new_epoch = new_entry.epoch;
        let nodes = new_entry.graph.num_nodes();
        let edges = new_entry.graph.num_edges();
        self.registry.insert(new_entry);
        self.patches.fetch_add(1, Ordering::Relaxed);

        // Component-scoped invalidation, still under the publication lock
        // so two patches of one graph cannot interleave their re-keying.
        // The reverse index hands over exactly this graph's keys; each one
        // is either re-keyed under the fresh epoch (every target clean) or
        // dropped. In-flight computations against the old entry may insert
        // old-epoch keys after this sweep — those are correct under their
        // own epoch and unreachable to new requests, pure LRU fodder.
        let (kept, purged) = {
            let mut cache = self.lock_cache();
            let (mut kept, mut purged) = (0usize, 0usize);
            for k in self.cache_index.take(name) {
                let Some(cached) = cache.remove(&k) else {
                    self.warm.lock_ok().remove(&k);
                    continue;
                };
                let clean = k.epoch == old_epoch
                    && k.targets
                        .iter()
                        .all(|&t| !dirty_nodes.get(t as usize).copied().unwrap_or(true));
                // Warm membership follows the key: a re-keyed body stays
                // creditable to the warm section, a purged one leaves no
                // stale member behind. The warm lock is released before
                // the index calls below (`server.warm` is a leaf).
                let was_warm = self.warm.lock_ok().remove(&k);
                if clean {
                    let mut nk = k;
                    nk.epoch = new_epoch;
                    if was_warm {
                        self.warm.lock_ok().insert(nk.clone());
                    }
                    if let Some(evicted) = cache.insert(nk.clone(), cached) {
                        self.cache_index.remove(&evicted.graph, &evicted);
                    }
                    self.cache_index.insert(name, nk);
                    kept += 1;
                } else {
                    purged += 1;
                }
            }
            (kept, purged)
        };
        // Re-snapshot every `resnapshot_deltas` applied deltas: the
        // sequence number is monotone and persisted, so the cadence
        // survives restarts, and a failed write simply retries at the
        // next multiple (boot replay covers the gap from the journal —
        // which is also why this can safely run *after* the cache sweep:
        // the surviving re-keyed bodies ride into the warm section, and a
        // crash in between is still replayed from the record appended
        // above).
        let persisted = self.persist.as_ref().and_then(|p| {
            if new_seq % self.resnapshot_deltas as u64 != 0 {
                return None;
            }
            // Still under the publication lock, so this is exactly the
            // entry inserted above.
            let entry = self.registry.get(name)?;
            let warm = self.collect_warm(name);
            let path = persist::snapshot_path(&p.dir, name);
            match persist::save_snapshot_with_warm(
                &path,
                name,
                &entry.graph,
                &entry.dec,
                new_seq,
                &warm,
            ) {
                Ok(()) => Some(true),
                Err(e) => {
                    eprintln!("warning: cannot snapshot {}: {e}", path.display());
                    Some(false)
                }
            }
        });
        // Open gather windows keyed to the old epoch can no longer gain
        // members (new requests mint new-epoch keys and open fresh
        // windows); dropping the map entries is hygiene — a leader
        // mid-flight holds its own Arc and completes under old-epoch keys.
        self.batches
            .lock_ok()
            .retain(|k, _| !(k.graph == name && k.epoch == old_epoch));
        drop(publish);

        let mut fields = vec![
            ("graph".to_string(), Json::from(name)),
            ("nodes".to_string(), Json::from(nodes)),
            ("edges".to_string(), Json::from(edges)),
            ("inserted".to_string(), Json::from(inserted)),
            ("deleted".to_string(), Json::from(deleted)),
            ("delta_seq".to_string(), Json::from(new_seq)),
            ("cache_kept".to_string(), Json::from(kept)),
            ("cache_purged".to_string(), Json::from(purged)),
        ];
        if let Some(journaled) = journaled {
            fields.push(("journaled".to_string(), Json::Bool(journaled)));
        }
        if let Some(persisted) = persisted {
            fields.push(("persisted".to_string(), Json::Bool(persisted)));
        }
        Response::json(200, Json::Obj(fields).to_string())
    }

    /// Router placement for `PATCH /graphs/<name>`: whole graphs forward
    /// the delta verbatim to the owning shard; split graphs patch the
    /// router's local copy first (one authoritative validation, and the
    /// response payload) and then fan the delta to every shard. The
    /// router's registry swap bumps the `(nodes, edges)` fingerprint sent
    /// with every sharded work unit, so a shard that missed the fan-out
    /// answers later rounds with a fingerprint mismatch instead of
    /// silently computing on a stale graph.
    fn router_patch_graph(&self, name: &str, body: &Json) -> Response {
        let Some(pool) = self.shards.as_ref() else {
            return error_response(500, "router misconfigured: no shard pool");
        };
        let placement = self.placements.lock_ok().get(name).copied();
        let path = format!("/graphs/{name}");
        match placement {
            None => error_response(404, format!("unknown graph {name:?} (POST /graphs first)")),
            Some(Placement::Remote(idx)) => {
                let Some(addr) = pool.addrs().get(idx) else {
                    return error_response(500, "router misconfigured: placement has no shard");
                };
                match pool.request(idx, "PATCH", &path, Some(&body.to_string())) {
                    Err(e) => error_response(503, format!("shard {addr}: {e}")),
                    Ok(r) => Response::json(r.status, r.body),
                }
            }
            Some(Placement::Split) => {
                let local = self.patch_graph_local(name, body);
                if local.status != 200 {
                    return local;
                }
                let forwarded = body.to_string();
                for (i, addr) in pool.addrs().iter().enumerate() {
                    let ok = match pool.request(i, "PATCH", &path, Some(&forwarded)) {
                        Err(e) => Err(format!("shard {addr}: {e}")),
                        Ok(r) if r.status != 200 => {
                            Err(format!("shard {addr}: HTTP {}: {}", r.status, r.body))
                        }
                        Ok(_) => Ok(()),
                    };
                    if let Err(e) = ok {
                        // The router's copy is already patched; the stale
                        // shard fails sharded rounds loudly (fingerprint
                        // mismatch) until it is patched or reloaded.
                        return error_response(503, format!("split patch of {name:?} failed: {e}"));
                    }
                }
                let Ok(Json::Obj(mut fields)) = Json::parse(local.body_str()) else {
                    unreachable!("patch_graph_local emits a JSON object");
                };
                fields.push(("shards".to_string(), Json::from(pool.len())));
                Response::json(200, Json::Obj(fields).to_string())
            }
        }
    }

    /// Router placement for `POST /graphs`: whole graphs go to one shard
    /// (graph name hashed with the snapshot CRC — stable across restarts
    /// and router instances); `"split": true` graphs are loaded on the
    /// router (which owns the decomposition and drives estimation) *and*
    /// on every shard.
    fn router_load_graph(&self, body: &Json, split: bool) -> Response {
        // `shards` is Some for every Router by construction; answer 500
        // instead of panicking if an embedder ever builds one without.
        let Some(pool) = self.shards.as_ref() else {
            return error_response(500, "router misconfigured: no shard pool");
        };
        // The CLI validates `--shards` at parse time; embedders building a
        // `ServiceConfig` directly get the same checks here, as a 400.
        if let Err(e) = saphyra::params::check_shard_addrs(pool.addrs(), "") {
            return error_response(400, format!("shard configuration invalid: {e}"));
        }
        let name = match body.get("name").and_then(Json::as_str) {
            Some(n) if valid_graph_name(n) => n.to_string(),
            Some(n) => {
                let why = "want 1-64 chars of [A-Za-z0-9._-], no leading dot";
                return error_response(400, format!("invalid graph name {n:?} ({why})"));
            }
            None => return error_response(400, "missing required string field \"name\""),
        };
        // Shards load the graph whole; "split" is router-only vocabulary.
        let forwarded = match body {
            Json::Obj(fields) => {
                let kept: Vec<(String, Json)> = fields
                    .iter()
                    .filter(|(k, _)| k != "split")
                    .cloned()
                    .collect();
                Json::Obj(kept).to_string()
            }
            _ => body.to_string(),
        };

        if split {
            let local = self.load_graph_local(body);
            if local.status != 200 {
                return local;
            }
            // Every shard must hold the graph before the placement is
            // published; a failed shard leaves the graph served locally
            // (correct, just not sharded) and the load reported failed.
            for (i, addr) in pool.addrs().iter().enumerate() {
                let ok = match pool.request(i, "POST", "/graphs", Some(&forwarded)) {
                    Err(e) => Err(format!("shard {addr}: {e}")),
                    Ok(r) if r.status != 200 => {
                        Err(format!("shard {addr}: HTTP {}: {}", r.status, r.body))
                    }
                    Ok(_) => Ok(()),
                };
                if let Err(e) = ok {
                    return error_response(503, format!("split load of {name:?} failed: {e}"));
                }
            }
            self.placements.lock_ok().insert(name, Placement::Split);
            let Ok(Json::Obj(mut fields)) = Json::parse(local.body_str()) else {
                unreachable!("load_graph_local emits a JSON object");
            };
            fields.push(("split".to_string(), Json::Bool(true)));
            fields.push(("shards".to_string(), Json::from(pool.len())));
            return Response::json(200, Json::Obj(fields).to_string());
        }

        let idx = saphyra_graph::wire::crc32(name.as_bytes()) as usize % pool.len();
        let addr = &pool.addrs()[idx];
        match pool.request(idx, "POST", "/graphs", Some(&forwarded)) {
            Err(e) => error_response(503, format!("shard {addr}: {e}")),
            Ok(r) if r.status != 200 => Response::json(r.status, r.body),
            Ok(r) => {
                self.placements
                    .lock_ok()
                    .insert(name, Placement::Remote(idx));
                match Json::parse(&r.body) {
                    Ok(Json::Obj(mut fields)) => {
                        fields.push(("shard".to_string(), Json::from(addr.as_str())));
                        Response::json(200, Json::Obj(fields).to_string())
                    }
                    _ => Response::json(200, r.body),
                }
            }
        }
    }

    /// The router's merged registry view: split graphs from its own
    /// registry, whole graphs from the shard that owns them (one
    /// `GET /graphs` per owning shard). An unreachable shard fails the
    /// listing with 503 — the view would otherwise silently lie.
    fn router_list_graphs(&self) -> Response {
        let Some(pool) = self.shards.as_ref() else {
            return error_response(500, "router misconfigured: no shard pool");
        };
        let placements = self.placements.lock_ok().clone();
        let needed: Vec<usize> = {
            let mut idxs: Vec<usize> = placements
                .values()
                .filter_map(|p| match p {
                    Placement::Remote(i) => Some(*i),
                    Placement::Split => None,
                })
                .collect();
            idxs.sort_unstable();
            idxs.dedup();
            idxs
        };
        let mut shard_infos: HashMap<usize, HashMap<String, Json>> = HashMap::new();
        for i in needed {
            let addr = &pool.addrs()[i];
            let listing = match pool.request(i, "GET", "/graphs", None) {
                Err(e) => return error_response(503, format!("shard {addr}: {e}")),
                Ok(r) if r.status != 200 => {
                    return error_response(503, format!("shard {addr}: HTTP {}", r.status))
                }
                Ok(r) => r,
            };
            let mut by_name = HashMap::new();
            if let Ok(json) = Json::parse(&listing.body) {
                if let Some(graphs) = json.get("graphs").and_then(Json::as_arr) {
                    for g in graphs {
                        if let Some(n) = g.get("name").and_then(Json::as_str) {
                            by_name.insert(n.to_string(), g.clone());
                        }
                    }
                }
            }
            shard_infos.insert(i, by_name);
        }
        let graphs: Vec<Json> = placements
            .iter()
            .filter_map(|(name, placement)| match placement {
                Placement::Split => self.registry.get(name).map(|entry| {
                    let Json::Obj(mut fields) = graph_info(&entry) else {
                        unreachable!()
                    };
                    fields.push(("split".to_string(), Json::Bool(true)));
                    Json::Obj(fields)
                }),
                Placement::Remote(i) => {
                    let addr = pool.addrs()[*i].as_str();
                    let info = shard_infos.get(i).and_then(|m| m.get(name));
                    Some(match info {
                        Some(Json::Obj(fields)) => {
                            let mut fields = fields.clone();
                            fields.push(("shard".to_string(), Json::from(addr)));
                            Json::Obj(fields)
                        }
                        _ => obj(vec![
                            ("name", Json::from(name.as_str())),
                            ("shard", Json::from(addr)),
                            ("error", Json::from("missing on shard")),
                        ]),
                    })
                }
            })
            .collect();
        Response::json(200, obj(vec![("graphs", Json::Arr(graphs))]).to_string())
    }

    /// Router fast path for `POST /rank`: a graph placed whole on one
    /// shard is proxied there verbatim (the shard batches, single-flights
    /// and caches as usual; its cache header is relayed). Returns `None`
    /// when the request should be computed here — split graphs (driven
    /// across shards by [`Service::rank`]) and non-router roles.
    fn router_proxy_rank(&self, body: &Json) -> Option<Response> {
        if self.role != Role::Router {
            return None;
        }
        let name = body.get("graph").and_then(Json::as_str)?;
        let idx = match self.placements.lock_ok().get(name) {
            Some(Placement::Remote(i)) => *i,
            _ => return None,
        };
        let Some(pool) = self.shards.as_ref() else {
            return Some(error_response(500, "router misconfigured: no shard pool"));
        };
        let addr = &pool.addrs()[idx];
        Some(
            match pool.request(idx, "POST", "/rank", Some(&body.to_string())) {
                Err(e) => error_response(503, format!("shard {addr}: {e}")),
                Ok(r) => {
                    let cache = r.header("X-Saphyra-Cache").map(str::to_string);
                    let mut resp = Response::json(r.status, r.body);
                    if let Some(cache) = cache {
                        resp = resp.with_header("X-Saphyra-Cache", &cache);
                    }
                    resp
                }
            },
        )
    }

    /// The shard pool to drive `name`'s estimation across, if this node
    /// is a router and the graph was loaded split.
    fn sharded_pool_for(&self, name: &str) -> Option<&ShardPool> {
        match self.placements.lock_ok().get(name) {
            Some(Placement::Split) => self.shards.as_ref(),
            _ => None,
        }
    }

    fn rank(&self, body: &Json) -> Response {
        let p = match self.parse_rank_request(body) {
            Ok(p) => p,
            Err(resp) => return *resp,
        };
        let Some(entry) = self.registry.get(&p.graph) else {
            return error_response(
                404,
                format!("unknown graph {:?} (POST /graphs first)", p.graph),
            );
        };
        if let Err(e) = params::check_targets(&p.targets, entry.graph.num_nodes()) {
            return error_response(400, e);
        }

        let key = RankKey {
            graph: p.graph.clone(),
            epoch: entry.epoch,
            measure: p.measure,
            targets: p.targets.clone(),
            eps_bits: p.eps.to_bits(),
            delta_bits: p.delta.to_bits(),
            seed: p.seed,
            khops: p.khops,
        };
        if let Some(body) = self.lock_cache().get(&key).cloned() {
            self.note_cache_hit(&key);
            return Response::json(200, body.as_str()).with_header("X-Saphyra-Cache", "hit");
        }

        // Single-flight: identical concurrent cold requests collapse behind
        // one in-flight computation. Lock order is inflight → cache; the
        // cache re-check under the inflight lock closes the race where the
        // leader finishes (cache insert + map removal) between our cache
        // miss above and the map lookup here.
        let guard = {
            let mut inflight = self.inflight.lock_ok();
            if let Some(body) = self.lock_cache().get(&key).cloned() {
                self.note_cache_hit(&key);
                return Response::json(200, body.as_str()).with_header("X-Saphyra-Cache", "hit");
            }
            match inflight.get(&key) {
                Some(slot) => {
                    let slot = Arc::clone(slot);
                    drop(inflight);
                    let mut done = slot.done.lock_ok();
                    let result = loop {
                        match done.as_ref() {
                            Some(r) => break r.clone(),
                            None => done = slot.cv.wait_ok(done),
                        }
                    };
                    drop(done);
                    return match result {
                        Some(body) => {
                            self.cache_shared.fetch_add(1, Ordering::Relaxed);
                            Response::json(200, body.as_str())
                                .with_header("X-Saphyra-Cache", "shared")
                        }
                        None => error_response(500, "ranking computation failed"),
                    };
                }
                None => {
                    let slot = Arc::new(Inflight::default());
                    inflight.insert(key.clone(), Arc::clone(&slot));
                    InflightGuard {
                        service: self,
                        key: key.clone(),
                        slot,
                    }
                }
            }
        };
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.computations.fetch_add(1, Ordering::Relaxed);

        // Cross-request batching: cold requests that differ *only* in
        // their target set coalesce into one shared sample stream. The
        // first request of a class opens a gather window and becomes the
        // batch leader; later ones enroll and park on their own in-flight
        // slot, exactly like single-flight waiters. Enrollment happens
        // under the batches lock (lock order: batches → batch members), so
        // a request that found the window in the map is always enrolled
        // before the leader seals it.
        let bkey = BatchKey {
            graph: p.graph.clone(),
            epoch: entry.epoch,
            measure: p.measure,
            eps_bits: p.eps.to_bits(),
            delta_bits: p.delta.to_bits(),
            seed: p.seed,
            khops: p.khops,
        };
        let member = BatchMember {
            key: key.clone(),
            targets: p.targets.clone(),
            slot: Arc::clone(&guard.slot),
        };
        let led = {
            let mut batches = self.batches.lock_ok();
            match batches.get(&bkey) {
                Some(batch) => {
                    batch.members.lock_ok().push(member);
                    None
                }
                None => {
                    let batch = Arc::new(Batch::default());
                    batch.members.lock_ok().push(member);
                    batches.insert(bkey.clone(), Arc::clone(&batch));
                    Some(batch)
                }
            }
        };

        let Some(batch) = led else {
            // Joined an open window: the leader computes our body from the
            // shared stream and publishes it to our slot; our own guard
            // then clears the in-flight entry, and any same-key waiters
            // replay the bytes as "shared".
            let mut done = guard.slot.done.lock_ok();
            let result = loop {
                match done.as_ref() {
                    Some(r) => break r.clone(),
                    None => done = guard.slot.cv.wait_ok(done),
                }
            };
            drop(done);
            return match result {
                Some(body) => {
                    Response::json(200, body.as_str()).with_header("X-Saphyra-Cache", "batched")
                }
                None => error_response(500, "ranking computation failed"),
            };
        };

        // Leader: hold the window open, then seal — remove the class from
        // the map (new arrivals open a fresh window) and snapshot the
        // members.
        if !self.batch_window.is_zero() {
            std::thread::sleep(self.batch_window);
        }
        let members = {
            let mut batches = self.batches.lock_ok();
            batches.remove(&bkey);
            let mut members = batch.members.lock_ok();
            std::mem::take(&mut *members)
        };
        self.sample_passes.fetch_add(1, Ordering::Relaxed);
        let shared_pass = members.len() >= 2;
        if shared_pass {
            self.batched
                .fetch_add(members.len() as u64, Ordering::Relaxed);
        }

        // Compute outside every lock. `bguard` answers still-parked
        // members with 500 if this unwinds; the leader's own `guard`
        // covers its slot as before.
        let bguard = BatchGuard { members: &members };
        let sets: Vec<Vec<NodeId>> = members.iter().map(|m| m.targets.clone()).collect();
        let pool = self.sharded_pool_for(&p.graph);
        let bodies = match compute_rank_bodies(&entry, &p, &sets, pool) {
            Ok(bodies) => bodies,
            Err(e) => {
                // Dropping the guards answers every parked member and
                // same-key waiter ("leader died" → 500); the leader's own
                // response names the failed shard. Nothing is cached — a
                // retry after the shard recovers recomputes.
                drop(bguard);
                drop(guard);
                return error_response(503, format!("sharded execution failed: {e}"));
            }
        };
        debug_assert_eq!(bodies.len(), members.len());
        let mut own = None;
        for (m, body) in members.iter().zip(bodies) {
            let body = Arc::new(body);
            {
                // Cache insert and index update under one cache-lock hold
                // (order: server.cache → registry.by_graph), so the index
                // stays an exact mirror — including when the insert evicts
                // an LRU victim, whose index entry is dropped here.
                let mut cache = self.lock_cache();
                if let Some(evicted) = cache.insert(m.key.clone(), Arc::clone(&body)) {
                    self.cache_index.remove(&evicted.graph, &evicted);
                }
                self.cache_index.insert(&m.key.graph, m.key.clone());
            }
            if m.key == key {
                own = Some(Arc::clone(&body));
            }
            let mut done = m.slot.done.lock_ok();
            *done = Some(Some(body));
            m.slot.cv.notify_all();
        }
        drop(bguard); // every slot is published; the sweep finds nothing
        drop(guard);
        // The leader pushed itself into the batch before sealing, so its
        // own body is always among those published; 500 beats a panic if
        // that invariant ever breaks.
        let Some(body) = own else {
            return error_response(500, "batch leader lost its own enrollment");
        };
        let state = if shared_pass { "batched" } else { "miss" };
        Response::json(200, body.as_str()).with_header("X-Saphyra-Cache", state)
    }

    /// Validates an already-parsed `/rank` body into [`RankParams`].
    fn parse_rank_request(&self, body: &Json) -> Result<RankParams, Box<Response>> {
        let bad = |msg: String| Box::new(error_response(400, msg));
        let graph = body
            .get("graph")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing required string field \"graph\"".into()))?
            .to_string();
        let measure_name = body.get("measure").and_then(Json::as_str).unwrap_or("bc");
        let measure = Measure::parse(measure_name).ok_or_else(|| {
            bad(format!(
                "unknown measure {measure_name:?} (want bc|kpath|harmonic)"
            ))
        })?;

        let targets_json = body
            .get("targets")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing required array field \"targets\"".into()))?;
        let mut targets = Vec::with_capacity(targets_json.len());
        for t in targets_json {
            let id = t
                .as_u64()
                .filter(|&v| v <= u32::MAX as u64)
                .ok_or_else(|| bad(format!("target {t} is not a node id")))?;
            targets.push(id as NodeId);
        }

        let eps = opt_f64(body, "eps", 0.01).map_err(&bad)?;
        let delta = opt_f64(body, "delta", 0.01).map_err(&bad)?;
        let seed = opt_u64(body, "seed", 2022).map_err(&bad)?;
        let khops = opt_u64(body, "khops", 5).map_err(&bad)? as usize;

        params::check_eps(eps).map_err(&bad)?;
        params::check_delta(delta).map_err(&bad)?;
        if measure == Measure::KPath {
            params::check_khops(khops).map_err(&bad)?;
        }

        Ok(RankParams {
            graph,
            measure,
            targets,
            eps,
            delta,
            seed,
            khops,
        })
    }
}

fn opt_f64(body: &Json, key: &str, default: f64) -> Result<f64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("field {key:?} must be a number")),
    }
}

fn opt_u64(body: &Json, key: &str, default: u64) -> Result<u64, String> {
    match body.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer <= 2^53")),
    }
}

/// Parses an optional `[[u, v], ...]` edge-pair array field of a `PATCH`
/// body. A missing field is an empty list; anything else malformed names
/// the field in the error.
fn opt_edges(body: &Json, key: &str) -> Result<Vec<(NodeId, NodeId)>, String> {
    let Some(v) = body.get(key) else {
        return Ok(Vec::new());
    };
    let arr = v
        .as_arr()
        .ok_or_else(|| format!("field {key:?} must be an array of [u, v] pairs"))?;
    let mut out = Vec::with_capacity(arr.len());
    for pair in arr {
        let bad = || format!("field {key:?} entries must be [u, v] node-id pairs, got {pair}");
        let [u, v] = pair.as_arr().ok_or_else(bad)? else {
            return Err(bad());
        };
        let u = u
            .as_u64()
            .filter(|&x| x <= u32::MAX as u64)
            .ok_or_else(bad)?;
        let v = v
            .as_u64()
            .filter(|&x| x <= u32::MAX as u64)
            .ok_or_else(bad)?;
        out.push((u as NodeId, v as NodeId));
    }
    Ok(out)
}

fn graph_info(entry: &GraphEntry) -> Json {
    let f = entry.graph.footprint();
    obj(vec![
        ("name", Json::from(entry.name.as_str())),
        ("nodes", Json::from(entry.graph.num_nodes())),
        ("edges", Json::from(entry.graph.num_edges())),
        ("bicomps", Json::from(entry.dec.bic.num_bicomps)),
        ("gamma", Json::Num(entry.dec.gamma)),
        ("csr_bytes", Json::from(f.csr_bytes())),
        ("succinct_bytes", Json::from(f.succinct_bytes())),
        ("mapped", Json::Bool(f.mapped)),
    ])
}

/// Computes the deterministic `/rank` response bodies for one batch: one
/// master seed, one batched estimator pass over every target set, one body
/// per set. A batch of one *is* the quiet-server path — the batched
/// estimators are bit-identical per subscriber to solo runs with the same
/// seed (pinned by `crates/core/tests/batched_determinism.rs`), so a
/// response never depends on who else was in flight. `p` carries the
/// fields every member shares (everything but the targets).
///
/// With `pool` set (router ranking a split graph), the sampling passes run
/// through a [`ShardedExec`] fanning work units out to the shard backends;
/// the [`saphyra::framework::BlockExec`] contract makes the bodies
/// byte-identical to the local path, so sharding never shows in a
/// response. A shard failure surfaces as `Err` (the caller answers 503).
fn compute_rank_bodies(
    entry: &GraphEntry,
    p: &RankParams,
    sets: &[Vec<NodeId>],
    pool: Option<&ShardPool>,
) -> Result<Vec<String>, ExecError> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let fingerprint = (
        entry.graph.num_nodes() as u64,
        entry.graph.num_edges() as u64,
    );
    let per_set: Vec<(Vec<f64>, Json)> = match p.measure {
        Measure::Betweenness => {
            let cfg = SaphyraBcConfig::new(p.eps, p.delta);
            let ests = match pool {
                None => entry
                    .dec
                    .rank_subset_multi(&entry.graph, sets, &cfg, &mut rng),
                Some(pool) => entry.dec.rank_subset_multi_with(
                    &entry.graph,
                    sets,
                    &cfg,
                    &mut rng,
                    |orig, problems, cfgs, master| {
                        let sub_sets = orig.iter().map(|&i| sets[i].clone()).collect();
                        let mut exec = ShardedExec::new(
                            pool,
                            &entry.name,
                            fingerprint,
                            shard::MEASURE_BC,
                            p.khops,
                            cfg.use_exact_subspace,
                            sub_sets,
                            master,
                        );
                        estimate_risks_multi_exec(problems, cfgs, &mut exec)
                    },
                )?,
            };
            ests.into_iter()
                .map(|est| {
                    let stats = obj(vec![
                        ("samples", Json::from(est.stats.samples)),
                        ("nmax", Json::from(est.stats.nmax)),
                        ("converged_early", Json::from(est.stats.converged_early)),
                        ("vc_subset", Json::from(est.stats.vc.vc_subset)),
                        ("lambda_hat", Json::Num(est.stats.lambda_hat)),
                    ]);
                    (est.bc, stats)
                })
                .collect()
        }
        Measure::KPath => {
            let ests = match pool {
                None => rank_kpath_multi(&entry.graph, sets, p.khops, p.eps, p.delta, &mut rng),
                // The hit-unit engine: bit-identical to the shared-draw
                // local pass because k-path drawing is target-independent
                // and scoring is RNG-free (pinned by
                // `kpath_hit_engine_matches_shared` in
                // `tests/other_measures.rs`).
                Some(pool) => rank_kpath_multi_with(
                    &entry.graph,
                    sets,
                    p.khops,
                    p.eps,
                    p.delta,
                    &mut rng,
                    |orig, problems, cfgs, master| {
                        let sub_sets = orig.iter().map(|&i| sets[i].clone()).collect();
                        let mut exec = ShardedExec::new(
                            pool,
                            &entry.name,
                            fingerprint,
                            shard::MEASURE_KPATH,
                            p.khops,
                            true,
                            sub_sets,
                            master,
                        );
                        estimate_risks_multi_exec(problems, cfgs, &mut exec)
                    },
                )?,
            };
            ests.into_iter()
                .map(|est| {
                    let stats = obj(vec![
                        ("samples", Json::from(est.inner.outcome.samples_used)),
                        ("nmax", Json::from(est.inner.outcome.nmax)),
                        (
                            "converged_early",
                            Json::from(est.inner.outcome.converged_early),
                        ),
                        ("lambda", Json::Num(est.inner.lambda)),
                    ]);
                    (est.kpc, stats)
                })
                .collect()
        }
        Measure::Harmonic => {
            let ests = match pool {
                None => rank_harmonic_multi(&entry.graph, sets, p.eps, p.delta, &mut rng),
                Some(pool) => rank_harmonic_multi_with(
                    &entry.graph,
                    sets,
                    p.eps,
                    p.delta,
                    &mut rng,
                    |orig, problems, cfgs, master| {
                        let sub_sets = orig.iter().map(|&i| sets[i].clone()).collect();
                        let mut exec = ShardedExec::new(
                            pool,
                            &entry.name,
                            fingerprint,
                            shard::MEASURE_HARMONIC,
                            p.khops,
                            true,
                            sub_sets,
                            master,
                        );
                        estimate_weighted_risks_multi_exec(problems, cfgs, &mut exec)
                    },
                )?,
            };
            ests.into_iter()
                .map(|est| {
                    let stats = obj(vec![
                        ("samples", Json::from(est.inner.outcome.samples_used)),
                        ("nmax", Json::from(est.inner.outcome.nmax)),
                        (
                            "converged_early",
                            Json::from(est.inner.outcome.converged_early),
                        ),
                        ("lambda", Json::Num(est.inner.lambda)),
                    ]);
                    (est.hc, stats)
                })
                .collect()
        }
    };

    Ok(per_set
        .into_iter()
        .zip(sets)
        .map(|((scores, stats), targets)| {
            let ranks = saphyra_stats::ranks_by_value(&scores);
            obj(vec![
                ("graph", Json::from(p.graph.as_str())),
                ("measure", Json::from(p.measure.as_str())),
                ("eps", Json::Num(p.eps)),
                ("delta", Json::Num(p.delta)),
                ("seed", Json::from(p.seed)),
                ("khops", Json::from(p.khops)),
                (
                    "targets",
                    Json::Arr(targets.iter().map(|&t| Json::from(t)).collect()),
                ),
                (
                    "scores",
                    Json::Arr(scores.iter().map(|&x| Json::Num(x)).collect()),
                ),
                (
                    "ranks",
                    Json::Arr(ranks.iter().map(|&r| Json::from(r)).collect()),
                ),
                ("stats", stats),
            ])
            .to_string()
        })
        .collect())
}

/// Shutdown latch shared by the reactor, the workers and the handle:
/// setting the flag and writing the self-pipe wakes the reactor out of
/// its blocking wait immediately — no self-connect, no poll interval.
#[derive(Debug)]
struct ShutdownSignal {
    flag: AtomicBool,
    wake: Arc<WakePipe>,
}

impl ShutdownSignal {
    fn trigger(&self) {
        if !self.flag.swap(true, Ordering::SeqCst) {
            self.wake.wake();
        }
    }

    fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A running server: bound address plus the runtime threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<ShutdownSignal>,
    reactor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service state.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Requests shutdown without waiting.
    pub fn shutdown(&self) {
        self.shutdown.trigger();
    }

    /// Blocks until the server shuts down (via [`ServerHandle::shutdown`]
    /// or `POST /shutdown`), then joins every thread.
    pub fn join(self) {
        let _ = self.reactor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Triggers shutdown and joins.
    pub fn shutdown_and_join(self) {
        self.shutdown.trigger();
        self.join();
    }
}

/// Binds `addr` and starts the reactor + worker threads. Returns
/// immediately; use [`ServerHandle::join`] to block.
pub fn serve(addr: &str, cfg: ServiceConfig) -> io::Result<ServerHandle> {
    serve_with(addr, Arc::new(Service::new(cfg)))
}

/// Poller token of the self-pipe read end.
const TOKEN_WAKE: u64 = 0;
/// Poller token of the listening socket.
const TOKEN_LISTENER: u64 = 1;
/// Poller tokens `TOKEN_BASE + slot` address connection slots.
const TOKEN_BASE: u64 = 2;

/// A complete request on its way to the compute pool.
struct Job {
    conn: usize,
    gen: u64,
    seq: u64,
    req: Request,
}

/// A computed response on its way back to the reactor.
struct Completion {
    conn: usize,
    gen: u64,
    seq: u64,
    resp: Response,
    shut: bool,
}

/// [`serve`] with externally constructed state (lets tests and benches
/// pre-load graphs into the registry before the first request).
///
/// The runtime this starts is one **reactor thread** owning every socket
/// (nonblocking, readiness-driven) plus [`ServiceConfig::workers`] compute
/// threads that only ever see complete requests — see the module docs'
/// connection model.
pub fn serve_with(addr: &str, service: Arc<Service>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let wake = Arc::new(WakePipe::new()?);
    let shutdown = Arc::new(ShutdownSignal {
        flag: AtomicBool::new(false),
        wake: Arc::clone(&wake),
    });

    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let (done_tx, done_rx) = mpsc::channel::<Completion>();
    let worker_count = service.workers;
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let job_rx = Arc::clone(&job_rx);
        let done_tx = done_tx.clone();
        let wake = Arc::clone(&wake);
        let service = Arc::clone(&service);
        workers.push(
            std::thread::Builder::new()
                .name(format!("saphyra-worker-{i}"))
                .spawn(move || loop {
                    // Workers are a pure compute pool: complete request
                    // in, finished response out, reactor woken. They hold
                    // no sockets and never block on I/O.
                    let job = match job_rx.lock_ok().recv() {
                        Ok(j) => j,
                        Err(_) => break, // reactor gone and queue drained
                    };
                    let (resp, shut) = service.handle(&job.req);
                    let sent = done_tx.send(Completion {
                        conn: job.conn,
                        gen: job.gen,
                        seq: job.seq,
                        resp,
                        shut,
                    });
                    if sent.is_err() {
                        break;
                    }
                    wake.wake();
                })?,
        );
    }
    drop(done_tx);

    let mut poller = new_poller();
    poller.register(wake.read_fd(), TOKEN_WAKE, true, false)?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
    // Tick fine enough that an idle timeout is detected within ~1/16 of
    // itself; 256 slots cover 16 timeouts per rotation before wrapping.
    let tick =
        (service.idle_timeout / 16).clamp(Duration::from_millis(1), Duration::from_millis(250));
    let wheel = TimerWheel::new(tick, 256);

    let reactor = {
        let service = Arc::clone(&service);
        let shutdown = Arc::clone(&shutdown);
        let wake = Arc::clone(&wake);
        std::thread::Builder::new()
            .name("saphyra-reactor".to_string())
            .spawn(move || {
                Reactor {
                    poller,
                    listener: Some(listener),
                    wake,
                    service,
                    shutdown,
                    job_tx,
                    done_rx,
                    conns: Vec::new(),
                    free: Vec::new(),
                    free_pending: Vec::new(),
                    wheel,
                    next_gen: 1,
                    open: 0,
                    shutting_down: false,
                }
                .run();
            })?
    };

    Ok(ServerHandle {
        addr: local,
        service,
        shutdown,
        reactor,
        workers,
    })
}

/// Per-connection state machine, owned exclusively by the reactor.
struct Conn {
    stream: TcpStream,
    /// Liveness token: completions and timers carry it, so events for a
    /// dead connection (or a reused slot) are discarded, never misrouted.
    gen: u64,
    parser: RequestParser,
    /// Bytes read off the socket; `read_pos..` is the unconsumed tail.
    /// Consumption advances the cursor and compacts once per event round
    /// — per-request `drain(..)` front-shifts would make a large
    /// pipelined burst quadratic in memmove cost.
    read_buf: Vec<u8>,
    read_pos: usize,
    /// Serialized responses being drained into the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Out-of-order completions parked until their turn; the bool forces
    /// `Connection: close` (reactor-synthesized error responses).
    pending: BTreeMap<u64, (Response, bool)>,
    /// Next request sequence number to assign (dispatch order).
    next_seq: u64,
    /// Next response sequence number to write (== arrival order).
    next_write: u64,
    /// Requests dispatched to workers and not yet completed.
    inflight: usize,
    /// Requests dispatched over the connection's lifetime (cap bookkeeping).
    served: usize,
    /// Sequence number of the connection's final request, once known
    /// (client sent `Connection: close`, or the request cap was hit).
    close_after: Option<u64>,
    /// No more reading/parsing; flush what is owed, then close.
    draining: bool,
    /// A `Connection: close` response has been staged; later responses
    /// are dropped (the client was told the connection is done).
    sent_close: bool,
    /// The peer closed its write side (read returned 0). Buffered and
    /// in-flight requests are still served — a write-then-half-close
    /// client keeps its read side open for the responses — and the
    /// connection closes once nothing more is owed.
    peer_eof: bool,
    want_read: bool,
    want_write: bool,
    /// Last byte-level progress in either direction (idle-timeout base).
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, gen: u64, now: Instant) -> Conn {
        Conn {
            stream,
            gen,
            parser: RequestParser::new(),
            read_buf: Vec::new(),
            read_pos: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            pending: BTreeMap::new(),
            next_seq: 0,
            next_write: 0,
            inflight: 0,
            served: 0,
            close_after: None,
            draining: false,
            sent_close: false,
            peer_eof: false,
            want_read: true,
            want_write: false,
            last_activity: now,
        }
    }

    /// Whether any read bytes are still unconsumed by the parser.
    fn has_input(&self) -> bool {
        self.read_pos < self.read_buf.len()
    }

    /// Discards all unconsumed input.
    fn clear_input(&mut self) {
        self.read_buf.clear();
        self.read_pos = 0;
    }

    /// Response bytes staged but not yet accepted by the socket.
    fn write_backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Whether another request may be dispatched right now: not past the
    /// final request, pipelining depth free, and the peer draining its
    /// responses (an undrained write backlog means the client stopped
    /// reading — parsing on regardless would buffer responses without
    /// bound).
    fn can_dispatch(&self, depth: usize) -> bool {
        !self.draining
            && self.close_after.is_none()
            && self.inflight + self.pending.len() < depth
            && self.write_backlog() < WRITE_BACKPRESSURE
    }
}

/// Per-connection cap on staged-but-unwritten response bytes before the
/// reactor stops parsing further requests from that connection. Bounds
/// the memory a pipelining client that never reads its responses can pin
/// (the kernel socket buffer absorbs the rest of the pushback).
const WRITE_BACKPRESSURE: usize = 256 * 1024;

/// The event loop: readiness events in, jobs out, completions back,
/// responses written in request order per connection.
struct Reactor {
    poller: Box<dyn Poller>,
    /// `None` once shutdown began (the socket is closed to new connects).
    listener: Option<TcpListener>,
    wake: Arc<WakePipe>,
    service: Arc<Service>,
    shutdown: Arc<ShutdownSignal>,
    job_tx: mpsc::Sender<Job>,
    done_rx: mpsc::Receiver<Completion>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Slots freed during the current event batch. Reused only *after*
    /// the batch: a stale event for a just-closed slot must hit `None`,
    /// not a brand-new connection that claimed the slot mid-batch.
    free_pending: Vec<usize>,
    wheel: TimerWheel,
    next_gen: u64,
    open: usize,
    shutting_down: bool,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut fired: Vec<(u64, u64)> = Vec::new();
        loop {
            self.drain_completions();
            if self.shutdown.is_set() {
                self.begin_shutdown();
                if self.open == 0 {
                    break;
                }
            }
            let timeout = self.wheel.next_wakeup(Instant::now());
            if let Err(e) = self.poller.wait(timeout, &mut events) {
                eprintln!("warning: reactor wait failed ({e}); shutting down");
                self.shutdown.trigger();
                break;
            }
            for &ev in &events {
                match ev.token {
                    TOKEN_WAKE => self.wake.drain(),
                    TOKEN_LISTENER => self.accept_ready(),
                    t => {
                        let idx = (t - TOKEN_BASE) as usize;
                        if ev.readable || ev.hangup {
                            self.read_ready(idx);
                        }
                        if ev.writable {
                            // advance flushes first; its parse step then
                            // sees the drained backlog and may unblock
                            // buffered requests.
                            self.advance(idx);
                        }
                        if ev.hangup {
                            // Peer fully gone: anything unread was drained
                            // above, anything unwritten is undeliverable.
                            self.close_conn(idx);
                        }
                    }
                }
            }
            fired.clear();
            self.wheel.expire(Instant::now(), &mut fired);
            for &(token, gen) in &fired {
                self.timer_fired((token - TOKEN_BASE) as usize, gen);
            }
            self.free.append(&mut self.free_pending);
        }
        // Dropping self drops `job_tx`: workers finish what is queued,
        // then exit on the disconnected channel.
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    let max = self.service.max_connections;
                    if max != 0 && self.open >= max {
                        // Over the cap: close immediately. The client sees
                        // a clean EOF and can retry or back off.
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses are queued whole; Nagle would only add
                    // delayed-ACK latency on persistent connections.
                    let _ = stream.set_nodelay(true);
                    let idx = match self.free.pop() {
                        Some(i) => i,
                        None => {
                            self.conns.push(None);
                            self.conns.len() - 1
                        }
                    };
                    let token = TOKEN_BASE + idx as u64;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        self.free.push(idx);
                        continue;
                    }
                    let gen = self.next_gen;
                    self.next_gen += 1;
                    let now = Instant::now();
                    self.wheel
                        .schedule(token, gen, now + self.service.idle_timeout);
                    self.conns[idx] = Some(Conn::new(stream, gen, now));
                    self.open += 1;
                    self.service.connections.fetch_add(1, Ordering::Relaxed);
                    self.service
                        .open_connections
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn read_ready(&mut self, idx: usize) {
        {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if conn.draining || conn.close_after.is_some() || conn.peer_eof {
                return; // past the final request; hangup handling closes us
            }
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        // Half-close: the peer is done *sending*. Its read
                        // side may well be open (write-then-shutdown(WR)
                        // one-shot clients) — serve what is buffered and
                        // in flight, then close.
                        conn.peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        conn.last_activity = Instant::now();
                        if n < chunk.len() {
                            break; // socket very likely drained; LT re-arms
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Hard error (reset): nothing is deliverable.
                        self.close_conn(idx);
                        return;
                    }
                }
            }
        }
        self.advance(idx);
    }

    /// Parse whatever is buffered, discard bytes that can never complete
    /// (torn trailing prefix after a peer half-close), and flush. The one
    /// entry point after any event that may have changed a connection's
    /// parse/dispatch/write state.
    fn advance(&mut self, idx: usize) {
        // Flush first: dispatch capacity (can_dispatch) counts the write
        // backlog, so requests blocked on it must see the post-drain
        // state — responses only ever enter the backlog via completions,
        // never via the parse below, so one leading flush is exact.
        self.flush(idx);
        self.parse_buffered(idx);
        let depth = self.service.pipeline_depth;
        if let Some(conn) = self.conns[idx].as_mut() {
            // parse_buffered stopped with input left over. If the peer
            // can never send another byte and the stop reason was the
            // parser wanting more (not depth/backpressure, not a final
            // request), the leftover is a torn prefix that will never
            // complete — drop it so the owed-nothing close can happen.
            if conn.peer_eof && conn.can_dispatch(depth) {
                conn.clear_input();
            }
            // Compact the consumed prefix away — once per event round,
            // not once per request.
            if conn.read_pos > 0 {
                if conn.has_input() {
                    conn.read_buf.drain(..conn.read_pos);
                } else {
                    conn.read_buf.clear();
                }
                conn.read_pos = 0;
            }
        }
        self.flush(idx);
    }

    /// Parses every complete buffered request up to the pipelining depth
    /// (and write-backlog bound) and hands them to the compute pool.
    fn parse_buffered(&mut self, idx: usize) {
        loop {
            let depth = self.service.pipeline_depth;
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            if !conn.has_input() || !conn.can_dispatch(depth) {
                return;
            }
            match conn.parser.parse(&conn.read_buf[conn.read_pos..]) {
                Ok(ParseStatus::NeedMore) => return,
                Ok(ParseStatus::Complete { request, consumed }) => {
                    conn.read_pos += consumed;
                    conn.served += 1;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    let prior_in_flight = conn.inflight > 0
                        || !conn.pending.is_empty()
                        || conn.write_pos < conn.write_buf.len();
                    if prior_in_flight {
                        self.service.pipelined.fetch_add(1, Ordering::Relaxed);
                    }
                    let cap = self.service.max_requests_per_conn;
                    if request.wants_close() || (cap != 0 && conn.served >= cap) {
                        conn.close_after = Some(seq);
                    }
                    conn.inflight += 1;
                    let job = Job {
                        conn: idx,
                        gen: conn.gen,
                        seq,
                        req: request,
                    };
                    if self.job_tx.send(job).is_err() {
                        // Compute pool gone (worker panic storm): fail the
                        // request rather than hanging the connection.
                        conn.inflight -= 1;
                        conn.pending
                            .insert(seq, (error_response(500, "worker pool unavailable"), true));
                        return;
                    }
                }
                Err(e) => {
                    // Malformed request: answer 400 after everything owed,
                    // then close. Nothing further is read — the stream
                    // position is unreliable past a framing error.
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.pending.insert(
                        seq,
                        (error_response(400, format!("malformed request: {e}")), true),
                    );
                    conn.close_after = Some(seq);
                    conn.clear_input();
                    return;
                }
            }
        }
    }

    /// Stages due responses (in request order) into the write buffer and
    /// drains it into the socket; closes the connection when it is
    /// draining and nothing more is owed.
    fn flush(&mut self, idx: usize) {
        let shutting = self.shutting_down || self.shutdown.is_set();
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        loop {
            if conn.sent_close {
                // The client has been told the connection is done;
                // anything still parked is undeliverable.
                conn.pending.clear();
                break;
            }
            let seq = conn.next_write;
            let Some((resp, force_close)) = conn.pending.remove(&seq) else {
                break;
            };
            conn.next_write += 1;
            let last_owed = conn.pending.is_empty() && conn.inflight == 0;
            // A half-closed peer only counts as "done" once its buffered
            // bytes are consumed too — with the pipeline depth saturated,
            // read_buf may still hold complete requests this connection
            // owes answers to.
            let done_serving = conn.draining || (conn.peer_eof && !conn.has_input());
            let keep_alive = !(force_close
                || conn.close_after == Some(seq)
                || ((shutting || done_serving) && last_owed));
            if conn.write_pos > 0 && conn.write_pos == conn.write_buf.len() {
                conn.write_buf.clear();
                conn.write_pos = 0;
            }
            conn.write_buf.extend_from_slice(&resp.to_bytes(keep_alive));
            if !keep_alive {
                conn.sent_close = true;
                conn.draining = true;
                conn.clear_input();
            }
        }
        let mut dead = false;
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        let drained = conn.write_pos == conn.write_buf.len();
        if drained && !conn.write_buf.is_empty() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        }
        // Close when nothing more can be owed: the connection is
        // draining, or the peer half-closed and every byte it ever sent
        // has been parsed, answered and written.
        let done_serving = conn.draining || (conn.peer_eof && !conn.has_input());
        let close_now =
            dead || (done_serving && drained && conn.inflight == 0 && conn.pending.is_empty());
        if close_now {
            self.close_conn(idx);
        } else {
            self.sync_interest(idx);
        }
    }

    /// Mirrors the connection's desired readiness interest to the poller.
    /// Reads pause while the pipelining depth or the write backlog is
    /// saturated (backpressure: the kernel buffer, then the client,
    /// absorb the excess) and after the final request; writes arm only
    /// while bytes are queued.
    fn sync_interest(&mut self, idx: usize) {
        let depth = self.service.pipeline_depth;
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        let want_read = !conn.peer_eof && conn.can_dispatch(depth);
        let want_write = conn.write_pos < conn.write_buf.len();
        if want_read != conn.want_read || want_write != conn.want_write {
            conn.want_read = want_read;
            conn.want_write = want_write;
            let fd = conn.stream.as_raw_fd();
            let _ = self
                .poller
                .modify(fd, TOKEN_BASE + idx as u64, want_read, want_write);
        }
    }

    fn drain_completions(&mut self) {
        while let Ok(done) = self.done_rx.try_recv() {
            if done.shut {
                // Trigger even when the requesting connection died: the
                // request WAS handled, and a /shutdown whose client went
                // away must still stop the server.
                self.shutdown.trigger();
            }
            {
                let Some(conn) = self.conns[done.conn].as_mut() else {
                    continue;
                };
                if conn.gen != done.gen {
                    continue;
                }
                conn.inflight -= 1;
                conn.last_activity = Instant::now();
                conn.pending.insert(done.seq, (done.resp, false));
            }
            // advance's leading flush writes this response (freeing its
            // depth slot), its parse dispatches any buffered follow-ups,
            // and its trailing flush stages whatever that parse produced
            // (a 400 on a malformed follow-up, a half-closed peer's last
            // response) — without the trailing flush such a response
            // would strand in `pending` with no further event arriving.
            self.advance(done.conn);
        }
    }

    fn timer_fired(&mut self, idx: usize, gen: u64) {
        let idle = self.service.idle_timeout;
        let now = Instant::now();
        let token = TOKEN_BASE + idx as u64;
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if conn.gen != gen {
            return;
        }
        if conn.inflight > 0 {
            // A slow computation is not an idle connection; check back in
            // one timeout.
            self.wheel.schedule(token, gen, now + idle);
            return;
        }
        let due = conn.last_activity + idle;
        if now >= due {
            // Idle past the budget (between requests, or stalled
            // mid-request/mid-response): close quietly.
            self.close_conn(idx);
        } else {
            self.wheel.schedule(token, gen, due);
        }
    }

    /// Stops accepting and puts every connection into draining: flush
    /// what is owed, then close. Parked idle connections close right
    /// here — this is what makes shutdown prompt with any number of
    /// keep-alive clients attached.
    fn begin_shutdown(&mut self) {
        if self.shutting_down {
            return;
        }
        self.shutting_down = true;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
            drop(listener);
        }
        for idx in 0..self.conns.len() {
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.draining = true;
                conn.clear_input();
            } else {
                continue;
            }
            self.flush(idx);
        }
    }

    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            drop(conn);
            self.open -= 1;
            self.service
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
            self.free_pending.push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn patch_req(name: &str, body: &str) -> Request {
        Request {
            method: "PATCH".to_string(),
            path: format!("/graphs/{name}"),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    /// Two connected components on 12 nodes: A = {0..5}, B = {6..11}.
    fn two_component_graph() -> saphyra_graph::Graph {
        saphyra_graph::GraphBuilder::new(12)
            .edges(vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (0, 3),
                (6, 7),
                (7, 8),
                (8, 9),
                (9, 10),
                (10, 11),
                (6, 9),
            ])
            .build()
            .unwrap()
    }

    fn cache_header(resp: &Response) -> Option<&str> {
        resp.headers
            .iter()
            .find(|(k, _)| k == "X-Saphyra-Cache")
            .map(|(_, v)| v.as_str())
    }

    fn service_with_grid() -> Service {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            ..ServiceConfig::default()
        });
        svc.registry().insert(GraphEntry::build(
            "grid",
            saphyra_graph::fixtures::grid_graph(5, 5),
        ));
        svc
    }

    /// A worker that panics while holding the single-flight table (or the
    /// cache) poisons the lock; the request path must recover instead of
    /// cascading the panic through every other worker.
    #[test]
    fn poisoned_locks_do_not_kill_request_handling() {
        let svc = Arc::new(service_with_grid());
        let s = Arc::clone(&svc);
        let _ = std::thread::spawn(move || {
            let _g = s.inflight.lock().unwrap();
            panic!("simulated worker crash holding inflight");
        })
        .join();
        let s = Arc::clone(&svc);
        let _ = std::thread::spawn(move || {
            let _g = s.cache.lock().unwrap();
            panic!("simulated worker crash holding cache");
        })
        .join();

        let body = r#"{"graph":"grid","targets":[3,7],"eps":0.2,"delta":0.2,"seed":5}"#;
        let (r1, _) = svc.handle(&post("/rank", body));
        assert_eq!(r1.status, 200, "{}", r1.body_str());
        // The repaired (cleared) cache fills back up and serves hits.
        let (r2, _) = svc.handle(&post("/rank", body));
        assert_eq!(r2.body, r1.body);
        assert!(r2
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "hit"));
    }

    #[test]
    fn healthz_and_listing() {
        let svc = service_with_grid();
        let (resp, shut) = svc.handle(&get("/healthz"));
        assert_eq!(resp.status, 200);
        assert!(!shut);
        let v = Json::parse(resp.body_str()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("graphs").unwrap().as_u64(), Some(1));

        let (resp, _) = svc.handle(&get("/graphs"));
        let v = Json::parse(resp.body_str()).unwrap();
        let graphs = v.get("graphs").unwrap().as_arr().unwrap();
        assert_eq!(graphs.len(), 1);
        assert_eq!(graphs[0].get("name").unwrap().as_str(), Some("grid"));
        assert_eq!(graphs[0].get("nodes").unwrap().as_u64(), Some(25));
    }

    #[test]
    fn rank_is_deterministic_and_cached() {
        let svc = service_with_grid();
        let body = r#"{"graph":"grid","targets":[6,12,18],"eps":0.1,"delta":0.1,"seed":7}"#;
        let (r1, _) = svc.handle(&post("/rank", body));
        assert_eq!(r1.status, 200, "{}", r1.body_str());
        assert!(r1
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "miss"));
        let (r2, _) = svc.handle(&post("/rank", body));
        assert_eq!(r2.body, r1.body, "cache hit must replay identical bytes");
        assert!(r2
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "hit"));
        assert_eq!(svc.cache_hits(), 1);
        assert_eq!(svc.cache_misses(), 1);

        let v = Json::parse(r1.body_str()).unwrap();
        assert_eq!(v.get("measure").unwrap().as_str(), Some("bc"));
        assert_eq!(v.get("scores").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("ranks").unwrap().as_arr().unwrap().len(), 3);
        // Grid center 12 dominates the off-center targets.
        let ranks = v.get("ranks").unwrap().as_arr().unwrap();
        assert_eq!(ranks[1].as_u64(), Some(1));
    }

    #[test]
    fn single_flight_collapses_identical_concurrent_cold_requests() {
        let svc = service_with_grid();
        let body = r#"{"graph":"grid","targets":[6,12,18],"eps":0.1,"delta":0.1,"seed":11}"#;
        let n = 8;
        let responses: Vec<Response> = std::thread::scope(|scope| {
            let svc = &svc;
            let handles: Vec<_> = (0..n)
                .map(|_| scope.spawn(move || svc.handle(&post("/rank", body)).0))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Exactly one ranking computation ran, whatever the interleaving.
        assert_eq!(svc.computations(), 1, "single-flight failed to collapse");
        let cache_state = |r: &Response| {
            r.headers
                .iter()
                .find(|(k, _)| k == "X-Saphyra-Cache")
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        let misses = responses
            .iter()
            .filter(|r| cache_state(r) == "miss")
            .count();
        assert_eq!(misses, 1, "exactly one request must be the leader");
        for r in &responses {
            assert_eq!(r.status, 200, "{}", r.body_str());
            assert_eq!(r.body, responses[0].body, "shared bytes diverged");
            // Non-leaders either waited on the in-flight computation
            // ("shared") or arrived after it landed in the cache ("hit").
            assert!(matches!(cache_state(r).as_str(), "miss" | "shared" | "hit"));
        }
        // Counters are consistent: every request is accounted exactly once.
        assert_eq!(
            svc.cache_misses() + svc.cache_shared() + svc.cache_hits(),
            n as u64
        );
    }

    #[test]
    fn single_flight_does_not_collapse_distinct_requests() {
        let svc = service_with_grid();
        let bodies: Vec<String> = (0..4)
            .map(|s| {
                format!(r#"{{"graph":"grid","targets":[6,12],"eps":0.1,"delta":0.1,"seed":{s}}}"#)
            })
            .collect();
        std::thread::scope(|scope| {
            for body in &bodies {
                let svc = &svc;
                scope.spawn(move || {
                    let (r, _) = svc.handle(&post("/rank", body));
                    assert_eq!(r.status, 200, "{}", r.body_str());
                });
            }
        });
        assert_eq!(svc.computations(), 4, "distinct keys must all compute");
    }

    fn service_with_grid_window(window: Duration) -> Service {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 16,
            batch_window: window,
            ..ServiceConfig::default()
        });
        svc.registry().insert(GraphEntry::build(
            "grid",
            saphyra_graph::fixtures::grid_graph(5, 5),
        ));
        svc
    }

    /// The tentpole property, per measure: concurrent cold requests with
    /// distinct target sets run ONE shared sample pass, every response
    /// reports `batched`, and every body is byte-identical to what a quiet
    /// server (no other traffic, window zero) produces for that request.
    #[test]
    fn batching_coalesces_distinct_targets_into_one_pass() {
        let sets = ["[0,1]", "[5,6]", "[12,17]", "[20,24]"];
        for measure in ["bc", "kpath", "harmonic"] {
            let svc = service_with_grid_window(Duration::from_millis(300));
            let bodies: Vec<String> = sets
                .iter()
                .map(|t| {
                    format!(
                        r#"{{"graph":"grid","targets":{t},"measure":"{measure}","eps":0.1,"delta":0.1,"seed":9}}"#
                    )
                })
                .collect();
            let responses: Vec<Response> = std::thread::scope(|scope| {
                let handles: Vec<_> = bodies
                    .iter()
                    .map(|b| {
                        let svc = &svc;
                        scope.spawn(move || svc.handle(&post("/rank", b)).0)
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(
                svc.sample_passes(),
                1,
                "{measure}: expected one shared pass"
            );
            assert_eq!(svc.batched(), 4, "{measure}");
            assert_eq!(svc.computations(), 4, "{measure}");
            for (r, req) in responses.iter().zip(&bodies) {
                assert_eq!(r.status, 200, "{}", r.body_str());
                assert!(
                    r.headers
                        .iter()
                        .any(|(k, v)| k == "X-Saphyra-Cache" && v == "batched"),
                    "{measure}: member not marked batched"
                );
                let quiet = service_with_grid_window(Duration::ZERO);
                let (qr, _) = quiet.handle(&post("/rank", req));
                assert_eq!(
                    r.body, qr.body,
                    "{measure}: batched bytes diverged from a quiet-server run"
                );
            }
        }
    }

    #[test]
    fn zero_window_batches_of_one_report_miss() {
        let svc = service_with_grid_window(Duration::ZERO);
        let body = r#"{"graph":"grid","targets":[6,12,18],"eps":0.1,"delta":0.1,"seed":7}"#;
        let (r, _) = svc.handle(&post("/rank", body));
        assert_eq!(r.status, 200, "{}", r.body_str());
        assert!(r
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "miss"));
        assert_eq!(svc.sample_passes(), 1);
        assert_eq!(svc.batched(), 0);
        // A batch of one is the canonical computation: the default-window
        // service produces the same bytes for the same request.
        let dflt = service_with_grid();
        let (rd, _) = dflt.handle(&post("/rank", body));
        assert_eq!(r.body, rd.body);
    }

    /// Requests in different accuracy classes (here: distinct ε) never
    /// share a stream, even inside one gather window.
    #[test]
    fn batching_respects_accuracy_class() {
        let svc = service_with_grid_window(Duration::from_millis(200));
        std::thread::scope(|scope| {
            for eps in ["0.1", "0.2"] {
                let svc = &svc;
                let body = format!(
                    r#"{{"graph":"grid","targets":[6,12],"eps":{eps},"delta":0.1,"seed":5}}"#
                );
                scope.spawn(move || {
                    let (r, _) = svc.handle(&post("/rank", &body));
                    assert_eq!(r.status, 200, "{}", r.body_str());
                });
            }
        });
        assert_eq!(svc.sample_passes(), 2, "distinct eps must not coalesce");
        assert_eq!(svc.batched(), 0);
    }

    #[test]
    fn rank_measures_kpath_and_harmonic() {
        let svc = service_with_grid();
        for measure in ["kpath", "harmonic"] {
            let body = format!(
                r#"{{"graph":"grid","targets":[2,12,22],"measure":"{measure}","eps":0.2,"delta":0.1,"seed":3}}"#
            );
            let (r, _) = svc.handle(&post("/rank", &body));
            assert_eq!(r.status, 200, "{measure}: {}", r.body_str());
            let v = Json::parse(r.body_str()).unwrap();
            assert_eq!(v.get("measure").unwrap().as_str(), Some(measure));
        }
    }

    #[test]
    fn rank_rejects_bad_requests() {
        let svc = service_with_grid();
        for (body, want) in [
            (r#"{"#, 400),
            (r#"{"targets":[1]}"#, 400),                  // no graph
            (r#"{"graph":"grid"}"#, 400),                 // no targets
            (r#"{"graph":"nope","targets":[1]}"#, 404),   // unknown graph
            (r#"{"graph":"grid","targets":[]}"#, 400),    // empty targets
            (r#"{"graph":"grid","targets":[999]}"#, 400), // out of range
            (r#"{"graph":"grid","targets":[1,1]}"#, 400), // duplicate
            (r#"{"graph":"grid","targets":[1],"eps":0}"#, 400), // eps = 0
            (r#"{"graph":"grid","targets":[1],"eps":1.5}"#, 400), // eps > 1
            (r#"{"graph":"grid","targets":[1],"delta":1}"#, 400), // delta = 1
            (r#"{"graph":"grid","targets":[1],"eps":"x"}"#, 400), // non-numeric
            (r#"{"graph":"grid","targets":[1],"seed":-1}"#, 400), // negative seed
            (r#"{"graph":"grid","targets":[1],"measure":"pr"}"#, 400), // unknown measure
            (
                r#"{"graph":"grid","targets":[1],"measure":"kpath","khops":1}"#,
                400,
            ),
            (r#"{"graph":"grid","targets":[1.5]}"#, 400), // fractional id
        ] {
            let (r, _) = svc.handle(&post("/rank", body));
            assert_eq!(
                r.status,
                want,
                "body {body}: got {} ({})",
                r.status,
                r.body_str()
            );
        }
        // khops is ignored (not validated) for non-kpath measures.
        let (r, _) = svc.handle(&post(
            "/rank",
            r#"{"graph":"grid","targets":[1],"khops":1,"eps":0.3,"delta":0.1}"#,
        ));
        assert_eq!(r.status, 200, "{}", r.body_str());
    }

    #[test]
    fn load_graph_via_generator_and_replacement_purges_cache() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            ..ServiceConfig::default()
        });
        let (r, _) = svc.handle(&post(
            "/graphs",
            r#"{"name":"fl","network":"flickr","size":"tiny","seed":5}"#,
        ));
        assert_eq!(r.status, 200, "{}", r.body_str());
        let v = Json::parse(r.body_str()).unwrap();
        assert_eq!(v.get("replaced").unwrap().as_bool(), Some(false));
        let nodes = v.get("nodes").unwrap().as_u64().unwrap();
        assert!(nodes > 10);

        let rank = r#"{"graph":"fl","targets":[1,2,3],"eps":0.2,"delta":0.1,"seed":1}"#;
        let (r1, _) = svc.handle(&post("/rank", rank));
        assert_eq!(r1.status, 200, "{}", r1.body_str());

        // Reload under the same name with a different seed: stale rankings
        // must not survive.
        let (r, _) = svc.handle(&post(
            "/graphs",
            r#"{"name":"fl","network":"flickr","size":"tiny","seed":6}"#,
        ));
        assert_eq!(
            Json::parse(r.body_str())
                .unwrap()
                .get("replaced")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        let (r2, _) = svc.handle(&post("/rank", rank));
        assert!(r2
            .headers
            .iter()
            .any(|(k, v)| k == "X-Saphyra-Cache" && v == "miss"));
        assert_ne!(
            r1.body, r2.body,
            "stale cache entry served for reloaded graph"
        );
    }

    #[test]
    fn load_graph_rejects_garbage() {
        let svc = Service::new(ServiceConfig::default());
        for body in [
            r#"{}"#,
            r#"{"name":"x"}"#,
            r#"{"name":"../etc","path":"/etc/passwd"}"#,
            r#"{"name":".g","network":"flickr"}"#, // leading dot: the boot scan would skip its snapshot
            r#"{"name":"x","network":"nope"}"#,
            r#"{"name":"x","network":"flickr","size":"huge"}"#,
            r#"{"name":"x","path":"/nonexistent/file.txt"}"#,
            r#"{"name":"x","path":"p","network":"flickr"}"#,
        ] {
            let (r, _) = svc.handle(&post("/graphs", body));
            assert_eq!(r.status, 400, "body {body}: {}", r.body_str());
        }
    }

    #[test]
    fn unknown_routes() {
        let svc = Service::new(ServiceConfig::default());
        let (r, _) = svc.handle(&get("/nope"));
        assert_eq!(r.status, 404);
        let (r, _) = svc.handle(&Request {
            method: "DELETE".to_string(),
            path: "/rank".to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        });
        assert_eq!(r.status, 405);
    }

    #[test]
    fn shutdown_route_requests_shutdown() {
        let svc = Service::new(ServiceConfig::default());
        let (r, shut) = svc.handle(&post("/shutdown", ""));
        assert_eq!(r.status, 200);
        assert!(shut);
    }

    #[test]
    fn graphs_listing_reports_counts() {
        let svc = Service::new(ServiceConfig::default());
        let entry = GraphEntry::build("grid", saphyra_graph::fixtures::grid_graph(4, 4));
        let (nodes, edges, bicomps) = (
            entry.graph.num_nodes() as u64,
            entry.graph.num_edges() as u64,
            entry.dec.bic.num_bicomps as u64,
        );
        svc.registry().insert(entry);

        let (r, _) = svc.handle(&get("/graphs"));
        assert_eq!(r.status, 200);
        let json = Json::parse(r.body_str()).unwrap();
        let graphs = json.get("graphs").unwrap().as_arr().unwrap();
        assert_eq!(graphs.len(), 1);
        let info = &graphs[0];
        assert_eq!(info.get("name").unwrap().as_str(), Some("grid"));
        assert_eq!(info.get("nodes").unwrap().as_u64(), Some(nodes));
        assert_eq!(info.get("edges").unwrap().as_u64(), Some(edges));
        assert_eq!(info.get("bicomps").unwrap().as_u64(), Some(bicomps));
        assert!(info.get("gamma").unwrap().as_f64().is_some());
    }

    #[test]
    fn patch_rejects_garbage() {
        let svc = service_with_grid();
        // Route-level misses first.
        let (r, _) = svc.handle(&patch_req("nope", r#"{"insert":[[0,1]]}"#));
        assert_eq!(r.status, 404, "{}", r.body_str());
        let (r, _) = svc.handle(&Request {
            method: "PATCH".to_string(),
            path: "/graphs/".to_string(),
            headers: Vec::new(),
            body: b"{}".to_vec(),
        });
        assert_eq!(r.status, 404);
        let (r, _) = svc.handle(&Request {
            method: "PATCH".to_string(),
            path: "/rank".to_string(),
            headers: Vec::new(),
            body: b"{}".to_vec(),
        });
        assert_eq!(r.status, 404);

        for body in [
            r#"{"#,                                   // malformed JSON
            r#"{}"#,                                  // empty delta
            r#"{"insert":[],"delete":[]}"#,           // still empty
            r#"{"insert":"x"}"#,                      // not an array
            r#"{"insert":[[1]]}"#,                    // pair of one
            r#"{"insert":[[1,2,3]]}"#,                // pair of three
            r#"{"insert":[["a","b"]]}"#,              // non-numeric endpoints
            r#"{"insert":[[1.5,2]]}"#,                // fractional id
            r#"{"insert":[[3,3]]}"#,                  // self-loop
            r#"{"insert":[[0,999]]}"#,                // out of range
            r#"{"delete":[[999,0]]}"#,                // out of range (delete side)
            r#"{"insert":[[0,1]],"delete":[[1,0]]}"#, // conflict
        ] {
            let (r, _) = svc.handle(&patch_req("grid", body));
            assert_eq!(r.status, 400, "body {body}: {} {}", r.status, r.body_str());
        }
        // Nothing above touched the entry.
        let entry = svc.registry().get("grid").unwrap();
        assert_eq!(entry.delta_seq, 0);
        assert_eq!(svc.patches(), 0);
    }

    /// The tentpole, end to end in one process: a PATCH swaps the entry
    /// under a fresh epoch, bumps `delta_seq`, and invalidates exactly the
    /// cached rankings whose targets live in a dirtied component — clean
    /// ones are re-keyed and keep serving hits with identical bytes, and
    /// other graphs' entries are untouched.
    #[test]
    fn patch_applies_delta_and_scopes_cache_invalidation() {
        let svc = service_with_grid();
        svc.registry()
            .insert(GraphEntry::build("two", two_component_graph()));

        // Warm three cache entries: component A of "two", component B of
        // "two", and one on the unrelated "grid" graph.
        let body_a = r#"{"graph":"two","targets":[1,2],"eps":0.2,"delta":0.2,"seed":3}"#;
        let body_b = r#"{"graph":"two","targets":[6,7,8],"eps":0.2,"delta":0.2,"seed":3}"#;
        let body_g = r#"{"graph":"grid","targets":[6,12],"eps":0.2,"delta":0.2,"seed":3}"#;
        let (ra, _) = svc.handle(&post("/rank", body_a));
        let (rb, _) = svc.handle(&post("/rank", body_b));
        let (rg, _) = svc.handle(&post("/rank", body_g));
        for r in [&ra, &rb, &rg] {
            assert_eq!(r.status, 200, "{}", r.body_str());
            assert_eq!(cache_header(r), Some("miss"));
        }
        let old_epoch = svc.registry().get("two").unwrap().epoch;

        // Patch component A only: +2 edges, -1 edge.
        let (p, _) = svc.handle(&patch_req(
            "two",
            r#"{"insert":[[0,5],[1,4]],"delete":[[0,3]]}"#,
        ));
        assert_eq!(p.status, 200, "{}", p.body_str());
        let v = Json::parse(p.body_str()).unwrap();
        assert_eq!(v.get("graph").unwrap().as_str(), Some("two"));
        assert_eq!(v.get("nodes").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("edges").unwrap().as_u64(), Some(13));
        assert_eq!(v.get("inserted").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("deleted").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("delta_seq").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("cache_kept").unwrap().as_u64(), Some(1), "B survives");
        assert_eq!(v.get("cache_purged").unwrap().as_u64(), Some(1), "A purged");

        let entry = svc.registry().get("two").unwrap();
        assert_ne!(entry.epoch, old_epoch, "patch must mint a fresh epoch");
        assert_eq!(entry.delta_seq, 1);
        assert_eq!(entry.graph.num_edges(), 13);
        assert_eq!(svc.patches(), 1);
        assert_eq!(svc.patches_replayed(), 0);

        // Untouched component B: still a hit, byte-identical. Dirtied
        // component A: recomputed. Unrelated graph: untouched.
        let (rb2, _) = svc.handle(&post("/rank", body_b));
        assert_eq!(cache_header(&rb2), Some("hit"), "{}", rb2.body_str());
        assert_eq!(rb2.body, rb.body, "untouched-component bytes changed");
        let (ra2, _) = svc.handle(&post("/rank", body_a));
        assert_eq!(cache_header(&ra2), Some("miss"), "{}", ra2.body_str());
        let (rg2, _) = svc.handle(&post("/rank", body_g));
        assert_eq!(cache_header(&rg2), Some("hit"));
        assert_eq!(rg2.body, rg.body);

        // A second patch of component A re-keys B's entry again and purges
        // the ranking just computed against component A.
        let (p2, _) = svc.handle(&patch_req(
            "two",
            r#"{"insert":[[0,3]],"delete":[[0,5],[1,4]]}"#,
        ));
        assert_eq!(p2.status, 200, "{}", p2.body_str());
        let v = Json::parse(p2.body_str()).unwrap();
        assert_eq!(v.get("delta_seq").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("edges").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("cache_kept").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("cache_purged").unwrap().as_u64(), Some(1));
        let (rb3, _) = svc.handle(&post("/rank", body_b));
        assert_eq!(cache_header(&rb3), Some("hit"));
        assert_eq!(rb3.body, rb.body);

        // The index mirrors the cache: "two" holds the re-keyed B entry
        // plus nothing stale (A's purged keys are gone).
        assert_eq!(svc.cache_index.count_of("two"), 1);
        assert_eq!(svc.cache_index.count_of("grid"), 1);
    }

    /// A patch whose delta dirties a component must also drop that
    /// graph's open gather windows keyed to the replaced epoch.
    #[test]
    fn patch_drops_stale_batch_windows() {
        let svc = service_with_grid_window(Duration::from_secs(30));
        svc.registry()
            .insert(GraphEntry::build("two", two_component_graph()));
        let old_epoch = svc.registry().get("two").unwrap().epoch;
        // Forge an open window under the current epoch, as a leader
        // would leave while waiting out a long batch window.
        let batch_key = BatchKey {
            graph: "two".to_string(),
            epoch: old_epoch,
            measure: Measure::Betweenness,
            eps_bits: 0.2f64.to_bits(),
            delta_bits: 0.2f64.to_bits(),
            seed: 3,
            khops: 0,
        };
        svc.batches
            .lock_ok()
            .insert(batch_key.clone(), Arc::new(Batch::default()));
        let (p, _) = svc.handle(&patch_req("two", r#"{"insert":[[2,5]]}"#));
        assert_eq!(p.status, 200, "{}", p.body_str());
        assert!(
            !svc.batches.lock_ok().contains_key(&batch_key),
            "stale-epoch batch window survived the patch"
        );
    }

    /// Regression for the reload path: replacing ONE graph must purge only
    /// that graph's cached rankings, not the whole cache.
    #[test]
    fn reload_purges_only_the_reloaded_graph() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            cache_capacity: 8,
            ..ServiceConfig::default()
        });
        for (name, seed) in [("a", 5), ("b", 6)] {
            let body =
                format!(r#"{{"name":"{name}","network":"flickr","size":"tiny","seed":{seed}}}"#);
            let (r, _) = svc.handle(&post("/graphs", &body));
            assert_eq!(r.status, 200, "{}", r.body_str());
        }
        let rank_a = r#"{"graph":"a","targets":[1,2,3],"eps":0.2,"delta":0.2,"seed":1}"#;
        let rank_b = r#"{"graph":"b","targets":[1,2,3],"eps":0.2,"delta":0.2,"seed":1}"#;
        let (ra, _) = svc.handle(&post("/rank", rank_a));
        let (rb, _) = svc.handle(&post("/rank", rank_b));
        assert_eq!(ra.status, 200, "{}", ra.body_str());
        assert_eq!(rb.status, 200, "{}", rb.body_str());

        // Reload "a" under a different seed.
        let (r, _) = svc.handle(&post(
            "/graphs",
            r#"{"name":"a","network":"flickr","size":"tiny","seed":7}"#,
        ));
        assert_eq!(r.status, 200, "{}", r.body_str());

        // "b" still hits with identical bytes; "a" is gone from the cache.
        let (rb2, _) = svc.handle(&post("/rank", rank_b));
        assert_eq!(
            cache_header(&rb2),
            Some("hit"),
            "reload of \"a\" purged \"b\"'s cache entry"
        );
        assert_eq!(rb2.body, rb.body);
        let (ra2, _) = svc.handle(&post("/rank", rank_a));
        assert_eq!(cache_header(&ra2), Some("miss"));
        assert_ne!(ra2.body, ra.body, "stale ranking served after reload");
        assert_eq!(svc.cache_index.count_of("a"), 1);
        assert_eq!(svc.cache_index.count_of("b"), 1);
    }
}
