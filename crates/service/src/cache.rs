//! A small LRU cache for completed rankings.
//!
//! Capacity is bounded and eviction is least-recently-used. Lookups and
//! inserts bump a monotone tick; a `BTreeMap` keyed by tick mirrors the
//! main map, so the eviction victim is `pop_first()` — O(log n) — instead
//! of a full O(capacity) scan per insert. The tick index is maintained
//! eagerly: every touch removes the entry's old tick and inserts the new
//! one, so the two maps always hold exactly the same entries.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Bounded LRU map.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (u64, V)>,
    /// Recency index: tick → key, oldest first. Ticks are unique (the
    /// counter only ever increments), so a plain map suffices.
    by_tick: BTreeMap<u64, K>,
    capacity: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            by_tick: BTreeMap::new(),
            capacity,
            tick: 0,
        }
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((t, v)) => {
                self.by_tick.remove(t);
                self.by_tick.insert(tick, key.clone());
                *t = tick;
                Some(v)
            }
            None => None,
        }
    }

    /// Looks up `key` *without* marking it used: returns the entry's
    /// current recency tick and value. Warm-cache collection ranks a
    /// graph's entries by recency without perturbing the very ordering it
    /// is reading.
    pub fn peek(&self, key: &K) -> Option<(u64, &V)> {
        self.map.get(key).map(|(t, v)| (*t, v))
    }

    /// Inserts `key → value`, evicting the least-recently-used entry when
    /// full. A no-op when capacity is 0. Returns the evicted key, if any,
    /// so callers maintaining an external index over the cache's keys
    /// (the registry's [`crate::registry::KeyIndex`]) can keep it exact.
    pub fn insert(&mut self, key: K, value: V) -> Option<K> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        let mut evicted = None;
        if let Some((old_tick, _)) = self.map.get(&key) {
            self.by_tick.remove(old_tick);
        } else if self.map.len() >= self.capacity {
            if let Some((_, oldest)) = self.by_tick.pop_first() {
                self.map.remove(&oldest);
                evicted = Some(oldest);
            }
        }
        self.by_tick.insert(self.tick, key.clone());
        self.map.insert(key, (self.tick, value));
        evicted
    }

    /// Removes one entry, returning its value. Unlike [`LruCache::retain`]
    /// this is O(log n), not a full scan — scoped invalidation walks the
    /// reverse index and removes exactly the keys it names.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (tick, value) = self.map.remove(key)?;
        self.by_tick.remove(&tick);
        Some(value)
    }

    /// Drops every entry failing the predicate (used to purge a reloaded
    /// graph's stale rankings).
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        let by_tick = &mut self.by_tick;
        self.map.retain(|k, (t, _)| {
            let keep_it = keep(k);
            if !keep_it {
                by_tick.remove(t);
            }
            keep_it
        });
    }

    /// Drops every entry. This is the poison-recovery path: a panic while
    /// the cache lock was held may have interrupted the two-map update
    /// sequence (`map` + `by_tick`), and an empty cache is the only state
    /// guaranteed consistent — losing it costs cold misses, nothing more.
    pub fn clear(&mut self) {
        self.map.clear();
        self.by_tick.clear();
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // a is now fresher than b
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn retain_purges() {
        let mut c = LruCache::new(4);
        c.insert(("g1", 1), 1);
        c.insert(("g2", 2), 2);
        c.retain(|k| k.0 != "g1");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&("g2", 2)), Some(&2));
        // The tick index shed the purged entry too: filling the cache now
        // evicts in pure recency order with no ghost of g1 resurfacing.
        c.insert(("g3", 3), 3);
        c.insert(("g4", 4), 4);
        c.insert(("g5", 5), 5);
        assert_eq!(c.len(), 4);
        c.insert(("g6", 6), 6);
        assert_eq!(c.get(&("g2", 2)), None, "g2 was the oldest survivor");
        assert_eq!(c.len(), 4);
    }

    /// Pins the full LRU ordering across a mixed get/insert/reinsert
    /// sequence: eviction follows recency-of-*use*, not insertion order,
    /// and every touch (hit, overwrite) moves the entry to the back.
    #[test]
    fn eviction_follows_recency_order_exactly() {
        let mut c = LruCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        // Recency (old → new): a, b, c.
        assert_eq!(c.get(&"a"), Some(&1)); // a, to the back: b, c, a
        c.insert("b", 20); // overwrite, to the back: c, a, b
        c.insert("d", 4); // evicts c (oldest): a, b, d
        assert_eq!(c.get(&"c"), None);
        c.insert("e", 5); // evicts a: b, d, e
        assert_eq!(c.get(&"a"), None);
        c.insert("f", 6); // evicts b: d, e, f
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"d"), Some(&4));
        assert_eq!(c.get(&"e"), Some(&5));
        assert_eq!(c.get(&"f"), Some(&6));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn insert_reports_the_evicted_key_and_remove_is_exact() {
        let mut c = LruCache::new(2);
        assert_eq!(c.insert("a", 1), None);
        assert_eq!(c.insert("b", 2), None);
        assert_eq!(c.insert("a", 10), None, "overwrite evicts nothing");
        // b is now the LRU victim.
        assert_eq!(c.insert("c", 3), Some("b"));
        assert_eq!(c.remove(&"a"), Some(10));
        assert_eq!(c.remove(&"a"), None);
        assert_eq!(c.len(), 1);
        // The tick index shed the removed entry: filling up again evicts
        // c (the only survivor), never a ghost of a.
        c.insert("d", 4);
        assert_eq!(c.insert("e", 5), Some("c"));
    }

    #[test]
    fn peek_reads_without_bumping_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        let (tick_a, &v) = c.peek(&"a").unwrap();
        assert_eq!(v, 1);
        let (tick_b, _) = c.peek(&"b").unwrap();
        assert!(tick_a < tick_b, "insertion order preserved");
        assert_eq!(c.peek(&"missing"), None);
        // a stayed least-recently-used: the next insert evicts it.
        assert_eq!(c.insert("c", 3), Some("a"));
    }

    /// The tick index and the main map stay in lockstep: after a long
    /// randomized-ish workload the cache still holds exactly `capacity`
    /// entries and every held key is retrievable.
    #[test]
    fn index_stays_consistent_under_churn() {
        let mut c = LruCache::new(8);
        for round in 0u64..200 {
            c.insert(round % 13, round);
            c.get(&((round * 7) % 13));
            assert!(c.len() <= 8);
        }
        assert_eq!(c.len(), 8);
        let held: Vec<u64> = (0..13).filter(|k| c.get(k).is_some()).collect();
        assert_eq!(held.len(), 8);
    }
}
