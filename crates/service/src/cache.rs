//! A small LRU cache for completed rankings.
//!
//! Capacity is bounded and eviction is least-recently-used. Lookups and
//! inserts bump a monotone tick; eviction scans for the minimum tick —
//! O(capacity), which is irrelevant next to the cost of the rankings the
//! cache fronts (a miss costs milliseconds to seconds of sampling).

use std::collections::HashMap;
use std::hash::Hash;

/// Bounded LRU map.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, (u64, V)>,
    capacity: usize,
    tick: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            capacity,
            tick: 0,
        }
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((t, v)) => {
                *t = tick;
                Some(v)
            }
            None => None,
        }
    }

    /// Inserts `key → value`, evicting the least-recently-used entry when
    /// full. A no-op when capacity is 0.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Drops every entry failing the predicate (used to purge a reloaded
    /// graph's stale rankings).
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        self.map.retain(|k, _| keep(k));
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // a is now fresher than b
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("a", 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&"a"), Some(&10));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    #[test]
    fn retain_purges() {
        let mut c = LruCache::new(4);
        c.insert(("g1", 1), 1);
        c.insert(("g2", 2), 2);
        c.retain(|k| k.0 != "g1");
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&("g2", 2)), Some(&2));
    }
}
