//! Cross-shard execution for split graphs: the binary wire protocol of
//! the internal `POST /shard/exec` endpoint, the router-side executor
//! ([`ShardedExec`]) that answers each estimation round's demands by
//! fanning chunk-keyed work units out to shard backends, and the
//! shard-side handler ([`handle_exec`]) that computes partial block
//! accumulators against its local registry.
//!
//! ## Determinism contract
//!
//! The executor never invents sample coordinates: every work unit is a
//! `(subscriber, Demand, chunk sub-range)` triple, and a shard draws it
//! with [`saphyra::framework::exec_hit_unit`] /
//! [`saphyra::framework::exec_loss_unit`] — the *same* chunk-keyed RNG
//! streams the in-process pass uses. Hit counts (`u64`) merge exactly
//! under any partition, so the router splits each demand's chunks evenly
//! across shards. Fractional losses (`LossAcc`) are `f64` sums, where
//! association order matters: the router ships only *whole* units from
//! [`saphyra::framework::loss_unit_ranges`] (a pure function of the
//! demand, so router and shard agree without coordination), each shard
//! folds its unit's chunks sequentially, and the router merges unit
//! partials in global unit order — the exact left-to-right association
//! the solo path uses. Solo == local == sharded, bit for bit, by
//! construction.
//!
//! ## Statelessness
//!
//! Every round's request carries the full context a shard needs — graph
//! name, a `(nodes, edges)` fingerprint, measure, and the subscriber
//! target sets — so shards keep no session state and any round can be
//! retried on a fresh connection. Epochs are process-local and never
//! cross the wire; the fingerprint is what catches a shard serving a
//! different graph under the same name (HTTP 409).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use saphyra::bc::{build_a_index, vc_bounds_from, BcApproxProblem};
use saphyra::closeness::HarmonicApproxProblem;
use saphyra::framework::{
    demand_chunks, exec_hit_unit, exec_loss_unit, loss_unit_ranges, BlockExec, Demand, ExecError,
    LossAcc,
};
use saphyra::kpath::KPathApproxProblem;
use saphyra::params;
use saphyra_graph::wire::{self, Reader};
use saphyra_graph::NodeId;

use crate::http::{Client, ClientResponse, Response};
use crate::json::Json;
use crate::registry::Registry;
use crate::sync::LockExt;

/// Wire format version of `/shard/exec` requests and responses.
pub const WIRE_VERSION: u8 = 1;

/// Measure code: betweenness (hit accumulators).
pub const MEASURE_BC: u8 = 0;
/// Measure code: k-path (hit accumulators).
pub const MEASURE_KPATH: u8 = 1;
/// Measure code: harmonic (fractional-loss accumulators).
pub const MEASURE_HARMONIC: u8 = 2;

/// Accumulator kind: per-hypothesis `u64` hit counts.
const ACC_HITS: u8 = 0;
/// Accumulator kind: per-hypothesis [`LossAcc`] partial sums.
const ACC_LOSS: u8 = 1;

fn error_json(status: u16, msg: impl Into<String>) -> Response {
    Response::json(
        status,
        Json::Obj(vec![("error".to_string(), Json::from(msg.into()))]).to_string(),
    )
}

// ---------------------------------------------------------------------------
// Router side: the shard pool and the executor.
// ---------------------------------------------------------------------------

/// Lifetime counters of sharded execution, surfaced via `/healthz` so the
/// bench harness can report per-round merge overhead.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Estimation rounds fanned out across shards.
    pub rounds: AtomicU64,
    /// Nanoseconds the router spent merging shard partials.
    pub merge_nanos: AtomicU64,
}

/// The router's view of its shard backends: one pooled, pipelined
/// [`Client`] per shard (guarded by a mutex — concurrent rounds targeting
/// the same shard serialize on its connection), plus fan-out telemetry.
#[derive(Debug)]
pub struct ShardPool {
    addrs: Vec<String>,
    clients: Vec<Mutex<Client>>,
    stats: ShardStats,
}

impl ShardPool {
    /// A pool over `addrs` (no connections are opened until first use).
    pub fn new(addrs: Vec<String>) -> Self {
        let clients = addrs.iter().map(|a| Mutex::new(Client::new(a))).collect();
        ShardPool {
            addrs,
            clients,
            stats: ShardStats::default(),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the pool has no shards.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Shard addresses, in fan-out order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Fan-out telemetry.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Proxies one JSON request to shard `i` over its pooled connection.
    pub fn request(
        &self,
        i: usize,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        self.clients[i].lock_ok().request(method, path, body)
    }
}

/// One work unit in a round's fan-out plan: request index `ri` (position
/// in the `BlockExec::run` input), unit index `uj` (fold position for
/// loss merges), and the wire triple.
#[derive(Debug, Clone)]
struct PlanUnit {
    ri: usize,
    uj: usize,
    sub: usize,
    d: Demand,
    chunks: Range<usize>,
}

/// Splits `0..chunks` into up to `parts` contiguous near-even ranges
/// (first `chunks % parts` ranges get one extra). Exact-merge
/// accumulators are partition-independent, so any split is correct; an
/// even one balances shard load.
fn split_chunks(chunks: usize, parts: usize) -> Vec<Range<usize>> {
    let base = chunks / parts;
    let rem = chunks % parts;
    let mut out = Vec::with_capacity(parts);
    let mut at = 0usize;
    for i in 0..parts {
        let len = base + usize::from(i < rem);
        out.push(at..at + len);
        at += len;
    }
    out
}

/// A [`BlockExec`] that answers each round by fanning work units out to
/// the shard backends of a [`ShardPool`] and merging their partial
/// accumulators (see the module docs for the determinism contract).
///
/// Implements `BlockExec<u64>` (betweenness, k-path) and
/// `BlockExec<LossAcc>` (harmonic); the measure code tells shards how to
/// rebuild the sampling problems.
pub struct ShardedExec<'a> {
    pool: &'a ShardPool,
    graph: &'a str,
    nodes: u64,
    edges: u64,
    measure: u8,
    khops: usize,
    reject_exact: bool,
    master: u64,
    /// Target sets of the subscribers that sample, in subscriber order
    /// (the engine's original-index translation resolves these).
    sets: Vec<Vec<NodeId>>,
}

impl<'a> ShardedExec<'a> {
    /// An executor for one estimation pass. `fingerprint` is the
    /// `(nodes, edges)` pair shards validate before computing; `sets`
    /// are the sampling subscribers' target sets in subscriber order.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pool: &'a ShardPool,
        graph: &'a str,
        fingerprint: (u64, u64),
        measure: u8,
        khops: usize,
        reject_exact: bool,
        sets: Vec<Vec<NodeId>>,
        master: u64,
    ) -> Self {
        ShardedExec {
            pool,
            graph,
            nodes: fingerprint.0,
            edges: fingerprint.1,
            measure,
            khops,
            reject_exact,
            master,
            sets,
        }
    }

    /// Encodes one shard's round request: header, subscriber sets, units.
    fn encode_request(&self, acc: u8, units: &[PlanUnit]) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_u8(&mut out, WIRE_VERSION);
        wire::put_str(&mut out, self.graph);
        wire::put_u64(&mut out, self.nodes);
        wire::put_u64(&mut out, self.edges);
        wire::put_u8(&mut out, self.measure);
        wire::put_usize(&mut out, self.khops);
        wire::put_u8(&mut out, self.reject_exact as u8);
        wire::put_u64(&mut out, self.master);
        wire::put_u8(&mut out, acc);
        wire::put_usize(&mut out, self.sets.len());
        for s in &self.sets {
            wire::put_vec_u32(&mut out, s);
        }
        wire::put_usize(&mut out, units.len());
        for u in units {
            wire::put_usize(&mut out, u.sub);
            wire::put_u64(&mut out, u.d.stream);
            wire::put_u64(&mut out, u.d.first_chunk);
            wire::put_usize(&mut out, u.d.count);
            wire::put_usize(&mut out, u.chunks.start);
            wire::put_usize(&mut out, u.chunks.end);
        }
        out
    }

    /// Sends each shard its plan slice in parallel and decodes the
    /// per-unit partials (empty plan → no request). Any transport
    /// failure, non-200 status, or malformed payload aborts the round
    /// with an [`ExecError`] naming the shard.
    fn fan_out<T: Send>(
        &self,
        plan: &[Vec<PlanUnit>],
        acc: u8,
        decode: fn(&mut Reader<'_>, usize) -> Result<Vec<T>, String>,
    ) -> Result<Vec<Vec<Vec<T>>>, ExecError> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .iter()
                .enumerate()
                .map(|(i, units)| {
                    scope.spawn(move || -> Result<Vec<Vec<T>>, ExecError> {
                        if units.is_empty() {
                            return Ok(Vec::new());
                        }
                        let addr = &self.pool.addrs[i];
                        let body = self.encode_request(acc, units);
                        let resp = self.pool.clients[i]
                            .lock_ok()
                            .request_bytes("POST", "/shard/exec", &body)
                            .map_err(|e| ExecError(format!("shard {addr}: {e}")))?;
                        if resp.status != 200 {
                            return Err(ExecError(format!(
                                "shard {addr}: HTTP {}: {}",
                                resp.status,
                                String::from_utf8_lossy(&resp.body)
                            )));
                        }
                        decode_response(&resp.body, acc, units, &self.sets, decode)
                            .map_err(|e| ExecError(format!("shard {addr}: {e}")))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| ExecError("shard fan-out thread panicked".to_string()))?
                })
                .collect()
        })
    }

    fn note_merge(&self, t0: Instant) {
        self.pool.stats.rounds.fetch_add(1, Ordering::Relaxed);
        self.pool
            .stats
            .merge_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Validates a shard's response frame and decodes one accumulator vector
/// per unit (each must have exactly the unit's hypothesis count).
fn decode_response<T>(
    bytes: &[u8],
    acc: u8,
    units: &[PlanUnit],
    sets: &[Vec<NodeId>],
    decode: fn(&mut Reader<'_>, usize) -> Result<Vec<T>, String>,
) -> Result<Vec<Vec<T>>, String> {
    let mut r = Reader::new(bytes);
    let err = |e: wire::WireError| e.to_string();
    let version = r.u8().map_err(err)?;
    if version != WIRE_VERSION {
        return Err(format!("unsupported response version {version}"));
    }
    let got_acc = r.u8().map_err(err)?;
    if got_acc != acc {
        return Err(format!(
            "accumulator kind mismatch: sent {acc}, got {got_acc}"
        ));
    }
    let n = r.usize_().map_err(err)?;
    if n != units.len() {
        return Err(format!("expected {} unit partials, got {n}", units.len()));
    }
    let mut out = Vec::with_capacity(n);
    for u in units {
        let k = r.usize_().map_err(err)?;
        if k != sets[u.sub].len() {
            return Err(format!(
                "unit for subscriber {} has {k} hypotheses, expected {}",
                u.sub,
                sets[u.sub].len()
            ));
        }
        out.push(decode(&mut r, k)?);
    }
    if !r.is_empty() {
        return Err(format!("{} trailing bytes in response", r.remaining()));
    }
    Ok(out)
}

fn decode_hits(r: &mut Reader<'_>, k: usize) -> Result<Vec<u64>, String> {
    (0..k).map(|_| r.u64().map_err(|e| e.to_string())).collect()
}

fn decode_losses(r: &mut Reader<'_>, k: usize) -> Result<Vec<LossAcc>, String> {
    (0..k)
        .map(|_| {
            let sum = r.f64().map_err(|e| e.to_string())?;
            let sumsq = r.f64().map_err(|e| e.to_string())?;
            Ok(LossAcc { sum, sumsq })
        })
        .collect()
}

impl BlockExec<u64> for ShardedExec<'_> {
    fn run(&mut self, reqs: &[(usize, Demand)]) -> Result<Vec<Vec<u64>>, ExecError> {
        let ns = self.pool.len();
        // Plan: split every demand's chunk range evenly across shards —
        // integer hit counts merge exactly under any partition.
        let mut plan: Vec<Vec<PlanUnit>> = vec![Vec::new(); ns];
        for (ri, &(sub, d)) in reqs.iter().enumerate() {
            for (s, chunks) in split_chunks(demand_chunks(&d), ns).into_iter().enumerate() {
                if !chunks.is_empty() {
                    plan[s].push(PlanUnit {
                        ri,
                        uj: 0,
                        sub,
                        d,
                        chunks,
                    });
                }
            }
        }
        let partials = self.fan_out(&plan, ACC_HITS, decode_hits)?;

        let t0 = Instant::now();
        let mut out: Vec<Vec<u64>> = reqs
            .iter()
            .map(|&(sub, _)| vec![0u64; self.sets[sub].len()])
            .collect();
        for (units, shard_parts) in plan.iter().zip(&partials) {
            for (u, part) in units.iter().zip(shard_parts) {
                for (a, &p) in out[u.ri].iter_mut().zip(part) {
                    *a += p;
                }
            }
        }
        self.note_merge(t0);
        Ok(out)
    }
}

impl BlockExec<LossAcc> for ShardedExec<'_> {
    fn run(&mut self, reqs: &[(usize, Demand)]) -> Result<Vec<Vec<LossAcc>>, ExecError> {
        let ns = self.pool.len();
        // Plan: f64 losses are association-sensitive, so ship only whole
        // solo-path fold units (round-robin across shards for balance)
        // and remember each unit's fold position `uj`.
        let mut plan: Vec<Vec<PlanUnit>> = vec![Vec::new(); ns];
        let mut unit_counts: Vec<usize> = Vec::with_capacity(reqs.len());
        let mut rr = 0usize;
        for (ri, &(sub, d)) in reqs.iter().enumerate() {
            let k = self.sets[sub].len();
            let ranges = loss_unit_ranges(k, &d);
            unit_counts.push(ranges.len());
            for (uj, chunks) in ranges.into_iter().enumerate() {
                plan[rr % ns].push(PlanUnit {
                    ri,
                    uj,
                    sub,
                    d,
                    chunks,
                });
                rr += 1;
            }
        }
        let partials = self.fan_out(&plan, ACC_LOSS, decode_losses)?;

        // Merge unit partials in global unit order — the same
        // left-to-right association the solo path folds in.
        let t0 = Instant::now();
        let mut slots: Vec<Vec<Option<Vec<LossAcc>>>> =
            unit_counts.iter().map(|&c| vec![None; c]).collect();
        for (units, shard_parts) in plan.iter().zip(&partials) {
            for (u, part) in units.iter().zip(shard_parts) {
                slots[u.ri][u.uj] = Some(part.clone());
            }
        }
        let mut out = Vec::with_capacity(reqs.len());
        for (slot_row, &(sub, _)) in slots.into_iter().zip(reqs) {
            let mut accs = vec![LossAcc::default(); self.sets[sub].len()];
            for part in slot_row {
                let part = part.expect("every planned unit was assigned to a shard");
                for (a, p) in accs.iter_mut().zip(&part) {
                    a.sum += p.sum;
                    a.sumsq += p.sumsq;
                }
            }
            out.push(accs);
        }
        self.note_merge(t0);
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Shard side: decode, validate, compute, encode.
// ---------------------------------------------------------------------------

/// A decoded `/shard/exec` request.
struct ExecRequest {
    graph: String,
    nodes: u64,
    edges: u64,
    measure: u8,
    khops: usize,
    reject_exact: bool,
    acc: u8,
    master: u64,
    sets: Vec<Vec<NodeId>>,
    units: Vec<(usize, Demand, Range<usize>)>,
}

fn decode_request(bytes: &[u8]) -> Result<ExecRequest, String> {
    let mut r = Reader::new(bytes);
    let err = |e: wire::WireError| e.to_string();
    let version = r.u8().map_err(err)?;
    if version != WIRE_VERSION {
        return Err(format!("unsupported request version {version}"));
    }
    let graph = r.str_().map_err(err)?;
    let nodes = r.u64().map_err(err)?;
    let edges = r.u64().map_err(err)?;
    let measure = r.u8().map_err(err)?;
    let khops = r.usize_().map_err(err)?;
    let reject_exact = match r.u8().map_err(err)? {
        0 => false,
        1 => true,
        b => return Err(format!("invalid reject_exact byte {b}")),
    };
    let master = r.u64().map_err(err)?;
    let acc = r.u8().map_err(err)?;
    let nsets = r.usize_().map_err(err)?;
    let mut sets = Vec::with_capacity(nsets.min(1 << 20));
    for _ in 0..nsets {
        sets.push(r.vec_u32().map_err(err)?);
    }
    let nunits = r.usize_().map_err(err)?;
    let mut units = Vec::with_capacity(nunits.min(1 << 20));
    for _ in 0..nunits {
        let sub = r.usize_().map_err(err)?;
        let stream = r.u64().map_err(err)?;
        let first_chunk = r.u64().map_err(err)?;
        let count = r.usize_().map_err(err)?;
        let start = r.usize_().map_err(err)?;
        let end = r.usize_().map_err(err)?;
        units.push((
            sub,
            Demand {
                stream,
                first_chunk,
                count,
            },
            start..end,
        ));
    }
    if !r.is_empty() {
        return Err(format!("{} trailing bytes in request", r.remaining()));
    }
    Ok(ExecRequest {
        graph,
        nodes,
        edges,
        measure,
        khops,
        reject_exact,
        acc,
        master,
        sets,
        units,
    })
}

/// Serves one `POST /shard/exec` round against this shard's registry:
/// decode (400 on garbage), resolve the graph (404 unknown, 409 on a
/// `(nodes, edges)` fingerprint mismatch — epochs are process-local and
/// never compared across nodes), rebuild the subscriber sampling problems
/// exactly as the solo rankers build them, run each work unit through the
/// shared unit executors, and return the binary partial accumulators.
pub fn handle_exec(registry: &Registry, body: &[u8]) -> Response {
    let req = match decode_request(body) {
        Ok(r) => r,
        Err(e) => return error_json(400, format!("bad /shard/exec request: {e}")),
    };
    let Some(entry) = registry.get(&req.graph) else {
        return error_json(
            404,
            format!(
                "unknown graph {:?} on this shard (load it first)",
                req.graph
            ),
        );
    };
    let (n, m) = (
        entry.graph.num_nodes() as u64,
        entry.graph.num_edges() as u64,
    );
    if (n, m) != (req.nodes, req.edges) {
        return error_json(
            409,
            format!(
                "graph {:?} fingerprint mismatch: shard has {n} nodes / {m} edges, \
                 router expects {} / {}",
                req.graph, req.nodes, req.edges
            ),
        );
    }
    // Reject anything the problem constructors would assert on: this
    // endpoint must never panic a worker thread on a bad payload.
    for set in &req.sets {
        if let Err(e) = params::check_targets(set, entry.graph.num_nodes()) {
            return error_json(400, format!("bad subscriber target set: {e}"));
        }
    }
    for &(sub, ref d, ref chunks) in &req.units {
        if sub >= req.sets.len() {
            return error_json(400, format!("unit subscriber {sub} out of range"));
        }
        if chunks.start > chunks.end || chunks.end > demand_chunks(d) {
            return error_json(
                400,
                format!(
                    "unit chunk range {}..{} exceeds the demand's {} chunks",
                    chunks.start,
                    chunks.end,
                    demand_chunks(d)
                ),
            );
        }
    }

    let mut out = Vec::new();
    wire::put_u8(&mut out, WIRE_VERSION);
    wire::put_u8(&mut out, req.acc);
    wire::put_usize(&mut out, req.units.len());
    match (req.measure, req.acc) {
        (MEASURE_BC, ACC_HITS) => {
            let g = &entry.graph;
            let dec = &entry.dec;
            let a_indexes: Vec<Vec<u32>> = req
                .sets
                .iter()
                .map(|t| build_a_index(g.num_nodes(), t))
                .collect();
            let mut probs: Vec<BcApproxProblem> = req
                .sets
                .iter()
                .zip(&a_indexes)
                .map(|(t, ai)| {
                    let vc = vc_bounds_from(&dec.vc_precomp, g, &dec.bic, t);
                    BcApproxProblem::new(g, &dec.bic, &dec.outreach, t, ai, vc.vc_subset)
                })
                .collect();
            if !req.reject_exact {
                for p in &mut probs {
                    p.reject_exact = false;
                }
            }
            for (sub, d, chunks) in &req.units {
                let counts = exec_hit_unit(&probs[*sub], req.master, d, chunks.clone());
                put_hits(&mut out, &counts);
            }
        }
        (MEASURE_KPATH, ACC_HITS) => {
            if req.khops < 2 {
                return error_json(400, format!("khops must be >= 2, got {}", req.khops));
            }
            let probs: Vec<KPathApproxProblem> = req
                .sets
                .iter()
                .map(|t| KPathApproxProblem::new(&entry.graph, t, req.khops))
                .collect();
            for (sub, d, chunks) in &req.units {
                let counts = exec_hit_unit(&probs[*sub], req.master, d, chunks.clone());
                put_hits(&mut out, &counts);
            }
        }
        (MEASURE_HARMONIC, ACC_LOSS) => {
            for set in &req.sets {
                if set.len() == entry.graph.num_nodes() {
                    return error_json(400, "A = V leaves no approximate subspace");
                }
            }
            let probs: Vec<HarmonicApproxProblem> = req
                .sets
                .iter()
                .map(|t| HarmonicApproxProblem::new(&entry.graph, t))
                .collect();
            for (sub, d, chunks) in &req.units {
                let accs = exec_loss_unit(&probs[*sub], req.master, d, chunks.clone());
                wire::put_usize(&mut out, accs.len());
                for a in &accs {
                    wire::put_f64(&mut out, a.sum);
                    wire::put_f64(&mut out, a.sumsq);
                }
            }
        }
        (measure, acc) => {
            return error_json(
                400,
                format!("unsupported measure/accumulator pair ({measure}, {acc})"),
            )
        }
    }
    Response::binary(200, out)
}

fn put_hits(out: &mut Vec<u8>, counts: &[u64]) {
    wire::put_usize(out, counts.len());
    for &c in counts {
        wire::put_u64(out, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::GraphEntry;
    use saphyra_graph::fixtures;

    fn registry_with(name: &str, g: saphyra_graph::Graph) -> Registry {
        let reg = Registry::new();
        reg.insert(GraphEntry::build(name, g));
        reg
    }

    fn header(graph: &str, nodes: u64, edges: u64, measure: u8, acc: u8) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_u8(&mut out, WIRE_VERSION);
        wire::put_str(&mut out, graph);
        wire::put_u64(&mut out, nodes);
        wire::put_u64(&mut out, edges);
        wire::put_u8(&mut out, measure);
        wire::put_usize(&mut out, 5); // khops
        wire::put_u8(&mut out, 1); // reject_exact
        wire::put_u64(&mut out, 42); // master
        wire::put_u8(&mut out, acc);
        out
    }

    fn one_unit_tail(out: &mut Vec<u8>, targets: &[u32], d: &Demand, chunks: Range<usize>) {
        wire::put_usize(out, 1);
        wire::put_vec_u32(out, targets);
        wire::put_usize(out, 1);
        wire::put_usize(out, 0);
        wire::put_u64(out, d.stream);
        wire::put_u64(out, d.first_chunk);
        wire::put_usize(out, d.count);
        wire::put_usize(out, chunks.start);
        wire::put_usize(out, chunks.end);
    }

    #[test]
    fn split_chunks_covers_exactly() {
        for chunks in [0usize, 1, 2, 7, 16, 100] {
            for parts in [1usize, 2, 3, 5] {
                let ranges = split_chunks(chunks, parts);
                assert_eq!(ranges.len(), parts);
                let mut at = 0;
                for r in &ranges {
                    assert_eq!(r.start, at);
                    at = r.end;
                }
                assert_eq!(at, chunks, "chunks {chunks} parts {parts}");
            }
        }
    }

    #[test]
    fn exec_rejects_unknown_graph_and_fingerprint_mismatch() {
        let g = fixtures::grid_graph(4, 4);
        let (n, m) = (g.num_nodes() as u64, g.num_edges() as u64);
        let reg = registry_with("g", g);
        let d = Demand {
            stream: 1,
            first_chunk: 0,
            count: 64,
        };

        // Unknown graph → 404.
        let mut body = header("missing", n, m, MEASURE_BC, ACC_HITS);
        one_unit_tail(&mut body, &[0, 1], &d, 0..1);
        assert_eq!(handle_exec(&reg, &body).status, 404);

        // Same name, different graph shape → 409.
        let mut body = header("g", n + 1, m, MEASURE_BC, ACC_HITS);
        one_unit_tail(&mut body, &[0, 1], &d, 0..1);
        let resp = handle_exec(&reg, &body);
        assert_eq!(resp.status, 409, "{}", resp.body_str());
        assert!(resp.body_str().contains("fingerprint"));
    }

    #[test]
    fn exec_rejects_garbage_without_panicking() {
        let g = fixtures::grid_graph(4, 4);
        let (n, m) = (g.num_nodes() as u64, g.num_edges() as u64);
        let reg = registry_with("g", g);
        let d = Demand {
            stream: 1,
            first_chunk: 0,
            count: 64,
        };

        // Truncated frame.
        assert_eq!(handle_exec(&reg, &[1, 2, 3]).status, 400);
        // Bad version.
        let mut body = header("g", n, m, MEASURE_BC, ACC_HITS);
        body[0] = 99;
        one_unit_tail(&mut body, &[0], &d, 0..1);
        assert_eq!(handle_exec(&reg, &body).status, 400);
        // Out-of-range target (would panic the problem constructor).
        let mut body = header("g", n, m, MEASURE_BC, ACC_HITS);
        one_unit_tail(&mut body, &[n as u32 + 7], &d, 0..1);
        assert_eq!(handle_exec(&reg, &body).status, 400);
        // Duplicate targets.
        let mut body = header("g", n, m, MEASURE_BC, ACC_HITS);
        one_unit_tail(&mut body, &[3, 3], &d, 0..1);
        assert_eq!(handle_exec(&reg, &body).status, 400);
        // Chunk range past the demand.
        let mut body = header("g", n, m, MEASURE_BC, ACC_HITS);
        one_unit_tail(&mut body, &[0, 1], &d, 0..1000);
        assert_eq!(handle_exec(&reg, &body).status, 400);
        // Mismatched measure/accumulator pair.
        let mut body = header("g", n, m, MEASURE_HARMONIC, ACC_HITS);
        one_unit_tail(&mut body, &[0, 1], &d, 0..1);
        assert_eq!(handle_exec(&reg, &body).status, 400);
    }

    #[test]
    fn exec_unit_round_trips_bc_hits() {
        // A unit computed over the wire equals the same unit computed
        // in-process: handle_exec is exec_hit_unit behind a codec.
        let g = fixtures::grid_graph(5, 5);
        let (n, m) = (g.num_nodes() as u64, g.num_edges() as u64);
        let targets: Vec<u32> = vec![0, 7, 12];
        let d = Demand {
            stream: 1,
            first_chunk: 3,
            count: 2048,
        };
        let chunks = 1..demand_chunks(&d);

        let reg = registry_with("g", g.clone());
        let mut body = header("g", n, m, MEASURE_BC, ACC_HITS);
        one_unit_tail(&mut body, &targets, &d, chunks.clone());
        let resp = handle_exec(&reg, &body);
        assert_eq!(resp.status, 200, "{}", resp.body_str());

        let mut r = Reader::new(&resp.body);
        assert_eq!(r.u8().unwrap(), WIRE_VERSION);
        assert_eq!(r.u8().unwrap(), ACC_HITS);
        assert_eq!(r.usize_().unwrap(), 1);
        let k = r.usize_().unwrap();
        assert_eq!(k, targets.len());
        let got: Vec<u64> = (0..k).map(|_| r.u64().unwrap()).collect();
        assert!(r.is_empty());

        let dec = saphyra::bc::BcDecomposition::compute(&g);
        let ai = build_a_index(g.num_nodes(), &targets);
        let vc = vc_bounds_from(&dec.vc_precomp, &g, &dec.bic, &targets);
        let prob = BcApproxProblem::new(&g, &dec.bic, &dec.outreach, &targets, &ai, vc.vc_subset);
        let want = exec_hit_unit(&prob, 42, &d, chunks);
        assert_eq!(got, want);
    }
}
