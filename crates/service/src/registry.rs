//! The graph registry: named graphs with their preprocessing built once and
//! shared across worker threads.
//!
//! Each entry pairs the CSR graph with its [`BcDecomposition`] (bicomps,
//! block-cut tree, out-reach/ISP tables, bcₐ, γ and the target-independent
//! VC-bound precomputation). Entries are immutable after construction and
//! handed out as `Arc`s, so concurrent `/rank` requests read the same
//! decomposition with zero contention; per-request sampler scratch lives in
//! the request's own `BcApproxProblem`/`HrSampler`, never in the entry.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::sync::{LockExt, RwLockExt};

use saphyra::bc::BcDecomposition;
use saphyra_graph::Graph;

/// Process-wide entry counter backing [`GraphEntry::epoch`].
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// One loaded graph and its reusable preprocessing.
#[derive(Debug)]
pub struct GraphEntry {
    /// Registry key.
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// Preprocessing shared by every request against this graph.
    pub dec: BcDecomposition,
    /// Unique id of this *load* of the graph. Reloading under the same
    /// name yields a new epoch, so cache keys derived from `(name, epoch)`
    /// can never alias rankings of a replaced graph — even when an
    /// in-flight request computed against the old entry finishes after
    /// the replacement.
    pub epoch: u64,
    /// How many journaled edge deltas (`PATCH /graphs/<name>`) this
    /// entry's graph is ahead of its original upload. Persisted in
    /// snapshots (unlike `epoch`) so a restart knows which journaled
    /// patch records the snapshot already contains: replay applies only
    /// records with `seq == delta_seq + 1`, in order.
    pub delta_seq: u64,
}

impl GraphEntry {
    /// Builds the entry (runs the full O(m + n) decomposition once).
    pub fn build(name: impl Into<String>, graph: Graph) -> Self {
        let dec = BcDecomposition::compute(&graph);
        GraphEntry::from_parts(name, graph, dec)
    }

    /// Assembles an entry from an already-computed decomposition (e.g. one
    /// restored from a snapshot). The epoch is always freshly allocated —
    /// epochs are process-local liveness tokens, never persisted — so a
    /// cache key minted against any previous load of this name can never
    /// alias the restored entry.
    pub fn from_parts(name: impl Into<String>, graph: Graph, dec: BcDecomposition) -> Self {
        GraphEntry::from_parts_seq(name, graph, dec, 0)
    }

    /// [`GraphEntry::from_parts`] with an explicit delta sequence number —
    /// the patch path (`seq + 1`) and snapshot restoration (the persisted
    /// seq) use this; fresh uploads start at 0.
    ///
    /// The graph is compacted here — after decomposition, which walks the
    /// plain offsets hot — so every *published* entry serves from the
    /// succinct memory tier. A no-op for graphs that arrive already
    /// succinct (mmap-restored snapshots).
    pub fn from_parts_seq(
        name: impl Into<String>,
        mut graph: Graph,
        dec: BcDecomposition,
        delta_seq: u64,
    ) -> Self {
        graph.compact();
        GraphEntry {
            name: name.into(),
            graph,
            dec,
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
            delta_seq,
        }
    }
}

/// Thread-safe name → entry map. `BTreeMap` keeps listings sorted, so
/// `GET /graphs` output is deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Fetches a graph by name.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.inner.read_ok().get(name).cloned()
    }

    /// Inserts (or replaces) an entry; returns whether a previous entry
    /// with the same name was replaced.
    pub fn insert(&self, entry: GraphEntry) -> bool {
        self.inner
            .write_ok()
            .insert(entry.name.clone(), Arc::new(entry))
            .is_some()
    }

    /// All entries in name order.
    pub fn list(&self) -> Vec<Arc<GraphEntry>> {
        self.inner.read_ok().values().cloned().collect()
    }

    /// Number of loaded graphs.
    pub fn len(&self) -> usize {
        self.inner.read_ok().len()
    }

    /// Whether no graph is loaded.
    pub fn is_empty(&self) -> bool {
        self.inner.read_ok().is_empty()
    }
}

/// Reverse index over the ranking cache: graph name → the live cache
/// keys minted for that graph (any epoch). The LRU cache itself cannot
/// enumerate keys by graph without a full scan, so scoped invalidation
/// (reload purge, `PATCH` component-scoped purge) walks this index and
/// removes exactly the keys it names.
///
/// Callers keep it exact by mutating it *while holding the cache lock*
/// (lock order `server.cache` → `registry.by_graph`, both declared in
/// `check/invariants.toml`): every cache insert records its key here and
/// un-records the key the insert evicted, so at any quiescent point the
/// index holds precisely the cache's key set, partitioned by graph.
#[derive(Debug, Default)]
pub struct KeyIndex<K> {
    by_graph: Mutex<HashMap<String, HashSet<K>>>,
}

impl<K: Eq + Hash + Clone> KeyIndex<K> {
    /// An empty index.
    pub fn new() -> Self {
        KeyIndex {
            by_graph: Mutex::new(HashMap::new()),
        }
    }

    /// Records a key under `graph`.
    pub fn insert(&self, graph: &str, key: K) {
        self.by_graph
            .lock_ok()
            .entry(graph.to_string())
            .or_default()
            .insert(key);
    }

    /// Un-records a key (e.g. one the cache evicted). A no-op when the
    /// key was never recorded.
    pub fn remove(&self, graph: &str, key: &K) {
        let mut map = self.by_graph.lock_ok();
        if let Some(set) = map.get_mut(graph) {
            set.remove(key);
            if set.is_empty() {
                map.remove(graph);
            }
        }
    }

    /// Returns (clones of) every key recorded under `graph` without
    /// removing them — warm-cache collection enumerates a graph's live
    /// keys while leaving the index untouched.
    pub fn keys_of(&self, graph: &str) -> Vec<K> {
        self.by_graph
            .lock_ok()
            .get(graph)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Removes and returns every key recorded under `graph` (scoped
    /// invalidation claims the whole per-graph set in one step; keys it
    /// decides to keep are re-inserted).
    pub fn take(&self, graph: &str) -> Vec<K> {
        self.by_graph
            .lock_ok()
            .remove(graph)
            .map(|set| set.into_iter().collect())
            .unwrap_or_default()
    }

    /// Drops every recorded key. This pairs with the cache's own
    /// poison-recovery clear: an emptied cache must mean an emptied index,
    /// or the index would hold dead keys forever.
    pub fn clear(&self) {
        self.by_graph.lock_ok().clear();
    }

    /// Number of keys recorded under `graph`.
    pub fn count_of(&self, graph: &str) -> usize {
        self.by_graph.lock_ok().get(graph).map_or(0, HashSet::len)
    }

    /// Total number of recorded keys across all graphs.
    pub fn len(&self) -> usize {
        self.by_graph.lock_ok().values().map(HashSet::len).sum()
    }

    /// Whether nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saphyra_graph::fixtures;

    #[test]
    fn insert_get_list() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        assert!(!reg.insert(GraphEntry::build("b", fixtures::grid_graph(3, 3))));
        assert!(!reg.insert(GraphEntry::build("a", fixtures::path_graph(4))));
        assert_eq!(reg.len(), 2);
        let names: Vec<String> = reg.list().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]); // sorted
        assert_eq!(reg.get("a").unwrap().graph.num_nodes(), 4);
        assert!(reg.get("missing").is_none());
        // Replacement reports the overwrite and swaps the entry.
        assert!(reg.insert(GraphEntry::build("a", fixtures::path_graph(9))));
        assert_eq!(reg.get("a").unwrap().graph.num_nodes(), 9);
    }

    #[test]
    fn rebuilt_entries_get_fresh_epochs() {
        let a = GraphEntry::build("g", fixtures::grid_graph(3, 3));
        let b = GraphEntry::build("g", fixtures::grid_graph(3, 3));
        assert_ne!(a.epoch, b.epoch);
    }

    #[test]
    fn restored_entries_get_fresh_epochs_too() {
        // Snapshot restoration goes through from_parts: every restore —
        // even of the same bytes — must mint a new epoch, so cache keys
        // can never alias across a reload or restart.
        let g = fixtures::grid_graph(3, 3);
        let dec = saphyra::bc::BcDecomposition::compute(&g);
        let a = GraphEntry::from_parts("g", g.clone(), dec);
        let dec = saphyra::bc::BcDecomposition::compute(&g);
        let b = GraphEntry::from_parts("g", g, dec);
        assert_ne!(a.epoch, b.epoch);
    }

    #[test]
    fn from_parts_seq_threads_the_delta_sequence() {
        let g = fixtures::path_graph(4);
        let dec = saphyra::bc::BcDecomposition::compute(&g);
        let e = GraphEntry::from_parts_seq("g", g.clone(), dec, 7);
        assert_eq!(e.delta_seq, 7);
        // The plain constructors start at 0 (a fresh upload).
        assert_eq!(GraphEntry::build("g", g).delta_seq, 0);
    }

    #[test]
    fn key_index_insert_remove_take() {
        let idx: KeyIndex<(String, u64)> = KeyIndex::new();
        idx.insert("a", ("a".into(), 1));
        idx.insert("a", ("a".into(), 2));
        idx.insert("b", ("b".into(), 1));
        assert_eq!(idx.count_of("a"), 2);
        assert_eq!(idx.len(), 3);
        idx.remove("a", &("a".into(), 1));
        idx.remove("a", &("a".into(), 99)); // never recorded: no-op
        assert_eq!(idx.count_of("a"), 1);
        let mut taken = idx.take("a");
        taken.sort();
        assert_eq!(taken, vec![("a".into(), 2)]);
        assert_eq!(idx.take("a"), Vec::<(String, u64)>::new());
        assert_eq!(idx.count_of("b"), 1);
    }

    /// The index stays an exact mirror of the cache's key set under
    /// concurrent inserts (with LRU evictions) and explicit removals, as
    /// long as each cache mutation and its index update happen under the
    /// cache lock — the discipline the service follows.
    #[test]
    fn key_index_consistent_under_concurrent_insert_and_evict() {
        use crate::cache::LruCache;
        let cache: Mutex<LruCache<(String, u64), u64>> = Mutex::new(LruCache::new(16));
        let idx: KeyIndex<(String, u64)> = KeyIndex::new();
        std::thread::scope(|scope| {
            for t in 0u64..4 {
                let (cache, idx) = (&cache, &idx);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let graph = if (t + i) % 2 == 0 { "g1" } else { "g2" };
                        let key = (graph.to_string(), (t * 1000 + i) % 37);
                        let mut c = cache.lock_ok();
                        if i % 5 == 4 {
                            if c.remove(&key).is_some() {
                                idx.remove(graph, &key);
                            }
                        } else {
                            let evicted = c.insert(key.clone(), i);
                            idx.insert(graph, key);
                            if let Some(ek) = evicted {
                                idx.remove(&ek.0.clone(), &ek);
                            }
                        }
                    }
                });
            }
        });
        // Quiescent: the index holds exactly the cache's keys.
        let mut c = cache.lock_ok();
        assert_eq!(idx.len(), c.len());
        for graph in ["g1", "g2"] {
            for key in idx.take(graph) {
                assert!(c.get(&key).is_some(), "index holds dead key {key:?}");
            }
        }
    }

    #[test]
    fn entries_publish_compacted_graphs() {
        // Every constructor funnels through from_parts_seq, which compacts
        // the CSR offsets into the succinct tier before publication.
        let e = GraphEntry::build("g", fixtures::grid_graph(4, 4));
        assert!(e.graph.csr_offsets().is_succinct());
        let g = fixtures::path_graph(5);
        let dec = saphyra::bc::BcDecomposition::compute(&g);
        assert!(GraphEntry::from_parts("g", g, dec)
            .graph
            .csr_offsets()
            .is_succinct());
    }

    #[test]
    fn key_index_keys_of_is_non_destructive() {
        let idx: KeyIndex<(String, u64)> = KeyIndex::new();
        idx.insert("a", ("a".into(), 1));
        idx.insert("a", ("a".into(), 2));
        let mut keys = idx.keys_of("a");
        keys.sort();
        assert_eq!(keys, vec![("a".into(), 1), ("a".into(), 2)]);
        // Unlike take(), the index still holds the keys afterwards.
        assert_eq!(idx.count_of("a"), 2);
        assert_eq!(idx.keys_of("missing"), Vec::<(String, u64)>::new());
    }

    #[test]
    fn entry_precomputes_decomposition() {
        let e = GraphEntry::build("g", fixtures::lollipop_graph(4, 3));
        assert!(e.dec.gamma > 0.0);
        assert!(e.dec.bic.num_bicomps > 0);
        assert!(!e.dec.vc_precomp.bicomp_diam_upper.is_empty());
    }
}
