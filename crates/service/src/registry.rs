//! The graph registry: named graphs with their preprocessing built once and
//! shared across worker threads.
//!
//! Each entry pairs the CSR graph with its [`BcDecomposition`] (bicomps,
//! block-cut tree, out-reach/ISP tables, bcₐ, γ and the target-independent
//! VC-bound precomputation). Entries are immutable after construction and
//! handed out as `Arc`s, so concurrent `/rank` requests read the same
//! decomposition with zero contention; per-request sampler scratch lives in
//! the request's own `BcApproxProblem`/`HrSampler`, never in the entry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::sync::RwLockExt;

use saphyra::bc::BcDecomposition;
use saphyra_graph::Graph;

/// Process-wide entry counter backing [`GraphEntry::epoch`].
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// One loaded graph and its reusable preprocessing.
#[derive(Debug)]
pub struct GraphEntry {
    /// Registry key.
    pub name: String,
    /// The graph.
    pub graph: Graph,
    /// Preprocessing shared by every request against this graph.
    pub dec: BcDecomposition,
    /// Unique id of this *load* of the graph. Reloading under the same
    /// name yields a new epoch, so cache keys derived from `(name, epoch)`
    /// can never alias rankings of a replaced graph — even when an
    /// in-flight request computed against the old entry finishes after
    /// the replacement.
    pub epoch: u64,
}

impl GraphEntry {
    /// Builds the entry (runs the full O(m + n) decomposition once).
    pub fn build(name: impl Into<String>, graph: Graph) -> Self {
        let dec = BcDecomposition::compute(&graph);
        GraphEntry::from_parts(name, graph, dec)
    }

    /// Assembles an entry from an already-computed decomposition (e.g. one
    /// restored from a snapshot). The epoch is always freshly allocated —
    /// epochs are process-local liveness tokens, never persisted — so a
    /// cache key minted against any previous load of this name can never
    /// alias the restored entry.
    pub fn from_parts(name: impl Into<String>, graph: Graph, dec: BcDecomposition) -> Self {
        GraphEntry {
            name: name.into(),
            graph,
            dec,
            epoch: NEXT_EPOCH.fetch_add(1, Ordering::Relaxed),
        }
    }
}

/// Thread-safe name → entry map. `BTreeMap` keeps listings sorted, so
/// `GET /graphs` output is deterministic.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Fetches a graph by name.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        self.inner.read_ok().get(name).cloned()
    }

    /// Inserts (or replaces) an entry; returns whether a previous entry
    /// with the same name was replaced.
    pub fn insert(&self, entry: GraphEntry) -> bool {
        self.inner
            .write_ok()
            .insert(entry.name.clone(), Arc::new(entry))
            .is_some()
    }

    /// All entries in name order.
    pub fn list(&self) -> Vec<Arc<GraphEntry>> {
        self.inner.read_ok().values().cloned().collect()
    }

    /// Number of loaded graphs.
    pub fn len(&self) -> usize {
        self.inner.read_ok().len()
    }

    /// Whether no graph is loaded.
    pub fn is_empty(&self) -> bool {
        self.inner.read_ok().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saphyra_graph::fixtures;

    #[test]
    fn insert_get_list() {
        let reg = Registry::new();
        assert!(reg.is_empty());
        assert!(!reg.insert(GraphEntry::build("b", fixtures::grid_graph(3, 3))));
        assert!(!reg.insert(GraphEntry::build("a", fixtures::path_graph(4))));
        assert_eq!(reg.len(), 2);
        let names: Vec<String> = reg.list().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["a", "b"]); // sorted
        assert_eq!(reg.get("a").unwrap().graph.num_nodes(), 4);
        assert!(reg.get("missing").is_none());
        // Replacement reports the overwrite and swaps the entry.
        assert!(reg.insert(GraphEntry::build("a", fixtures::path_graph(9))));
        assert_eq!(reg.get("a").unwrap().graph.num_nodes(), 9);
    }

    #[test]
    fn rebuilt_entries_get_fresh_epochs() {
        let a = GraphEntry::build("g", fixtures::grid_graph(3, 3));
        let b = GraphEntry::build("g", fixtures::grid_graph(3, 3));
        assert_ne!(a.epoch, b.epoch);
    }

    #[test]
    fn restored_entries_get_fresh_epochs_too() {
        // Snapshot restoration goes through from_parts: every restore —
        // even of the same bytes — must mint a new epoch, so cache keys
        // can never alias across a reload or restart.
        let g = fixtures::grid_graph(3, 3);
        let dec = saphyra::bc::BcDecomposition::compute(&g);
        let a = GraphEntry::from_parts("g", g.clone(), dec);
        let dec = saphyra::bc::BcDecomposition::compute(&g);
        let b = GraphEntry::from_parts("g", g, dec);
        assert_ne!(a.epoch, b.epoch);
    }

    #[test]
    fn entry_precomputes_decomposition() {
        let e = GraphEntry::build("g", fixtures::lollipop_graph(4, 3));
        assert!(e.dec.gamma > 0.0);
        assert!(e.dec.bic.num_bicomps > 0);
        assert!(!e.dec.vc_precomp.bicomp_diam_upper.is_empty());
    }
}
