//! Minimal HTTP/1.1 framing over `std::net` — just enough for a local JSON
//! service and its test/CI client: request-line + headers + Content-Length
//! bodies, `Connection: close` semantics (one request per connection).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (query strings are not split off; the service does not
    /// use them).
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no Content-Length).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "body is not valid UTF-8".to_string())
    }
}

/// Reads one request from the stream. `Ok(None)` means the peer closed the
/// connection before sending anything.
///
/// The request head is read through a [`Read::take`] capped at
/// [`MAX_HEAD_BYTES`], so a peer streaming an endless header line cannot
/// buffer unbounded memory — the cap bounds allocation *before* any line is
/// materialized, not after.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut head = reader.by_ref().take(MAX_HEAD_BYTES as u64);
    let head_err = |head: &io::Take<&mut R>| {
        if head.limit() == 0 {
            io::Error::new(io::ErrorKind::InvalidData, "request head too large")
        } else {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            )
        }
    };

    let mut line = String::new();
    if head.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_ascii_uppercase(), p.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line {line:?}"),
            ))
        }
    };

    let mut headers = Vec::new();
    loop {
        line.clear();
        if head.read_line(&mut line)? == 0 || !line.ends_with('\n') {
            return Err(head_err(&head));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 400, ...).
    pub status: u16,
    /// Extra headers beyond Content-Type/Content-Length/Connection.
    pub headers: Vec<(String, String)>,
    /// Response body (JSON for every service endpoint).
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response (`Connection: close`).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.body.len()
        )?;
        for (name, value) in &self.headers {
            write!(w, "{name}: {value}\r\n")?;
        }
        write!(w, "\r\n{}", self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// A response as seen by the client helper.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One-shot HTTP client used by `saphyra-cli query`, the tests and the
/// benches: connects, sends a single request, reads the full response.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(120)))?;
    let mut writer = stream.try_clone()?;
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().ok();
            }
            headers.push((name, value));
        }
    }

    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response body not UTF-8"))?;

    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_with_body() {
        let raw = b"POST /rank HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let req = read_request(&mut &raw[..]).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/rank");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body_str().unwrap(), "{\"a\":1}");
    }

    #[test]
    fn empty_stream_is_none() {
        let raw: &[u8] = b"";
        assert!(read_request(&mut &raw[..]).unwrap().is_none());
    }

    #[test]
    fn rejects_oversized_head_without_buffering_it() {
        // One endless header line (no newline anywhere): the take() cap
        // must fail the request at MAX_HEAD_BYTES, not buffer it all.
        let flood = format!(
            "GET / HTTP/1.1\r\nX-Flood: {}",
            "a".repeat(MAX_HEAD_BYTES * 2)
        );
        let err = read_request(&mut flood.as_bytes()).unwrap_err();
        assert_eq!(err.to_string(), "request head too large");
        // Many small header lines exceeding the cap in aggregate.
        let mut flood = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEAD_BYTES / 8) {
            flood.push_str(&format!("h{i}: v\r\n"));
        }
        assert!(read_request(&mut flood.as_bytes()).is_err());
    }

    #[test]
    fn rejects_oversized_body_and_bad_length() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(read_request(&mut raw.as_bytes()).is_err());
        let raw = "POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n";
        assert!(read_request(&mut raw.as_bytes()).is_err());
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("X-Saphyra-Cache", "hit")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("X-Saphyra-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
