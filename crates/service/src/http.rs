//! Minimal HTTP/1.1 framing over `std::net` — just enough for a local JSON
//! service and its test/CI client: request-line + headers + Content-Length
//! bodies, persistent connections (`Connection: keep-alive` by default,
//! honoring `Connection: close` from either side).
//!
//! Request parsing is **sans-IO**: [`RequestParser`] is an incremental
//! state machine fed raw byte slices, reporting [`ParseStatus::NeedMore`]
//! or [`ParseStatus::Complete`] with the number of bytes consumed. The
//! same machine backs both the blocking one-shot [`read_request`] (kept
//! for tests and simple callers) and the server's event-driven reactor,
//! which feeds it whatever a nonblocking read produced — so a request
//! split at any byte boundary parses identically to one that arrived
//! whole. Response serialization is buffer-producing
//! ([`Response::to_bytes`]); writing the buffer to a socket is the
//! caller's business.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (query strings are not split off; the service does not
    /// use them).
    pub path: String,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no Content-Length).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "body is not valid UTF-8".to_string())
    }

    /// Whether the client asked for the connection to be closed after this
    /// request (`Connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(connection_has_close)
            .unwrap_or(false)
    }
}

/// Outcome of feeding bytes to a [`RequestParser`].
#[derive(Debug)]
pub enum ParseStatus {
    /// The buffer does not yet hold a complete request; feed a longer
    /// prefix of the same stream.
    NeedMore,
    /// One complete request. `consumed` is how many bytes of the buffer it
    /// occupied; the remainder (if any) starts the next request.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer belonging to this request.
        consumed: usize,
    },
}

#[derive(Debug)]
enum ParseState {
    /// Still hunting for the blank line ending the head. `scanned` is how
    /// far the terminator scan got on previous feeds, so re-feeding a
    /// growing buffer stays O(head), not O(head²).
    Head { scanned: usize },
    /// Head parsed; waiting for `head_len + body_len` total bytes.
    Body {
        method: String,
        path: String,
        headers: Vec<(String, String)>,
        head_len: usize,
        body_len: usize,
    },
}

/// Incremental, sans-IO HTTP/1.1 request parser.
///
/// Feed it the unconsumed prefix of a connection's byte stream (the same
/// buffer, growing, until [`ParseStatus::Complete`]); it never does I/O
/// and never consumes implicitly — the caller drains `consumed` bytes on
/// completion and may immediately re-feed the remainder (pipelining).
/// Errors (oversized head/body, malformed request line, conflicting
/// Content-Length) are terminal: the connection should be closed.
///
/// A torn or truncated prefix of a valid request is always classified
/// [`ParseStatus::NeedMore`], never an error and never a panic — on EOF
/// the *caller* decides that NeedMore means `UnexpectedEof`.
#[derive(Debug)]
pub struct RequestParser {
    state: ParseState,
}

impl Default for RequestParser {
    fn default() -> Self {
        RequestParser::new()
    }
}

impl RequestParser {
    /// A parser positioned at the start of a request.
    pub fn new() -> RequestParser {
        RequestParser {
            state: ParseState::Head { scanned: 0 },
        }
    }

    /// Parses the request starting at `buf[0]`. See the type docs for the
    /// buffer contract.
    pub fn parse(&mut self, buf: &[u8]) -> io::Result<ParseStatus> {
        loop {
            match &mut self.state {
                ParseState::Head { scanned } => {
                    // Resume the terminator scan two bytes early: the
                    // blank line ("\n\n" or "\n\r\n") may straddle the
                    // previous feed boundary.
                    let from = scanned.saturating_sub(2);
                    let Some(head_len) = find_head_end(buf, from) else {
                        if buf.len() >= MAX_HEAD_BYTES {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "request head too large",
                            ));
                        }
                        *scanned = buf.len();
                        return Ok(ParseStatus::NeedMore);
                    };
                    if head_len > MAX_HEAD_BYTES {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "request head too large",
                        ));
                    }
                    let (method, path, headers, body_len) = parse_head(&buf[..head_len])?;
                    self.state = ParseState::Body {
                        method,
                        path,
                        headers,
                        head_len,
                        body_len,
                    };
                }
                ParseState::Body {
                    head_len, body_len, ..
                } => {
                    let total = *head_len + *body_len;
                    if buf.len() < total {
                        return Ok(ParseStatus::NeedMore);
                    }
                    let ParseState::Body {
                        method,
                        path,
                        headers,
                        head_len,
                        body_len,
                    } = std::mem::replace(&mut self.state, ParseState::Head { scanned: 0 })
                    else {
                        unreachable!()
                    };
                    let body = buf[head_len..head_len + body_len].to_vec();
                    return Ok(ParseStatus::Complete {
                        request: Request {
                            method,
                            path,
                            headers,
                            body,
                        },
                        consumed: head_len + body_len,
                    });
                }
            }
        }
    }

    /// Whether any bytes of the current request have been recognized (a
    /// non-empty torn prefix). Lets callers distinguish "peer closed
    /// between requests" from "peer died mid-request" at EOF.
    pub fn mid_body(&self) -> bool {
        matches!(self.state, ParseState::Body { .. })
    }
}

/// Finds the end of the request head (index one past the blank line) in
/// `buf`, scanning from `from`. The head terminator is an empty line:
/// `\n\n` or `\n\r\n`.
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parses a complete head (request line + headers + blank line) into
/// `(method, path, headers, body_len)`.
#[allow(clippy::type_complexity)]
fn parse_head(head: &[u8]) -> io::Result<(String, String, Vec<(String, String)>, usize)> {
    let text = std::str::from_utf8(head)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request head is not UTF-8"))?;
    let mut lines = text.split('\n');
    let line = lines.next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_ascii_uppercase(), p.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed request line {line:?}"),
            ))
        }
    };

    let mut headers = Vec::new();
    for line in lines {
        let trimmed = line.trim_end_matches('\r');
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }

    // Exactly one Content-Length may appear. Taking "the first" of several
    // (even several *agreeing* ones) is how request-smuggling splits
    // happen on persistent connections: an intermediary that picks the
    // other copy would desynchronize on where this request's body ends
    // and parse attacker-controlled body bytes as the next request.
    let mut content_length: Option<usize> = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        if content_length.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "multiple Content-Length headers",
            ));
        }
        content_length = Some(
            v.parse::<usize>()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?,
        );
    }
    let body_len = content_length.unwrap_or(0);
    if body_len > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    Ok((method, path, headers, body_len))
}

/// Reads one request from the stream (blocking one-shot path over the
/// same [`RequestParser`] the reactor drives). `Ok(None)` means the peer
/// closed the connection before sending anything.
///
/// The parser caps the head at [`MAX_HEAD_BYTES`] *before* materializing
/// it, so a peer streaming an endless header line cannot buffer unbounded
/// memory. Bytes past the end of the request are left unconsumed in
/// `reader` (keep-alive: they start the next request).
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let mut parser = RequestParser::new();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return if buf.is_empty() {
                Ok(None)
            } else if parser.mid_body() {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ))
            } else {
                Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ))
            };
        }
        let prev = buf.len();
        let n = chunk.len();
        buf.extend_from_slice(chunk);
        match parser.parse(&buf) {
            Ok(ParseStatus::Complete { request, consumed }) => {
                // Only the bytes this request actually used leave the
                // reader; the excess of the current chunk stays buffered
                // for the next call.
                reader.consume(consumed - prev);
                return Ok(Some(request));
            }
            Ok(ParseStatus::NeedMore) => reader.consume(n),
            Err(e) => {
                reader.consume(n);
                return Err(e);
            }
        }
    }
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 400, ...).
    pub status: u16,
    /// Extra headers beyond Content-Type/Content-Length/Connection.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Raw body bytes: JSON text on every public endpoint, wire-encoded
    /// binary on the internal shard endpoint.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A binary (`application/octet-stream`) response.
    pub fn binary(status: u16, body: Vec<u8>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/octet-stream",
            body,
        }
    }

    /// The body as text (lossy on the binary endpoint — for logs and
    /// tests, which only inspect JSON responses).
    pub fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).unwrap_or("")
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response into one contiguous buffer. `keep_alive`
    /// selects the `Connection` header; the server passes `false` on the
    /// last response of a connection (client asked to close,
    /// per-connection request cap hit, or shutdown) so well-behaved
    /// clients stop reusing it.
    ///
    /// Buffer-producing on purpose: the reactor queues these bytes into a
    /// per-connection write buffer and drains them as the socket accepts
    /// them, and the blocking path pushes the whole buffer in a **single**
    /// `write` — on a persistent connection, trickling header fragments as
    /// separate small segments triggers the Nagle/delayed-ACK interaction
    /// (~40 ms per request once the socket leaves quickack mode), which
    /// would erase the keep-alive win entirely.
    pub fn to_bytes(&self, keep_alive: bool) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" }
        );
        for (name, value) in &self.headers {
            let _ = write!(out, "{name}: {value}\r\n");
        }
        let _ = write!(out, "\r\n");
        let mut out = out.into_bytes();
        out.reserve(self.body.len());
        out.extend_from_slice(&self.body);
        out
    }

    /// Serializes and writes the response in a single `write` (blocking
    /// convenience over [`Response::to_bytes`]).
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> io::Result<()> {
        w.write_all(&self.to_bytes(keep_alive))?;
        w.flush()
    }
}

/// Reason phrase for the status codes the service emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response as seen by the client helper.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body text.
    pub body: String,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A response whose body is kept as raw bytes (the shard wire protocol is
/// binary; forcing UTF-8 there would corrupt it).
#[derive(Debug)]
pub struct RawResponse {
    /// Status code.
    pub status: u16,
    /// Headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl RawResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP client holding one pooled persistent connection to the service.
///
/// The first request dials the server; subsequent requests reuse the same
/// TCP connection (`Connection: keep-alive`), which removes the per-request
/// TCP setup cost from the cache-hit path. The connection is dropped when
/// the server answers `Connection: close` (per-connection request cap, or
/// shutdown) or the response has no `Content-Length`; the next request
/// transparently redials. A request that fails on a *reused* connection is
/// retried once on a fresh one — the pooled connection may have been closed
/// by the server's idle timeout between requests.
#[derive(Debug)]
pub struct Client {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
    timeout: Duration,
}

impl Client {
    /// A client for the service at `addr` (e.g. `"127.0.0.1:8471"`).
    pub fn new(addr: impl Into<String>) -> Client {
        Client {
            addr: addr.into(),
            conn: None,
            timeout: Duration::from_secs(120),
        }
    }

    /// Overrides the per-request read/write timeout (default 120 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Sends one request over the pooled connection (dialing or redialing
    /// as needed) and reads the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        if self.conn.is_some() {
            // The pooled connection may be stale (server idle timeout or
            // request cap raced our send): retry once on a fresh dial —
            // but only for errors that mean "the server had already closed
            // this connection". Anything else (most importantly a read
            // timeout: the server may still be computing) is surfaced, not
            // retried, so a request is never silently executed twice.
            match self.request_once(method, path, body, true) {
                Ok(resp) => return Ok(resp),
                Err(e) if stale_connection(&e) => {} // request_once dropped conn
                Err(e) => return Err(e),
            }
        }
        self.request_once(method, path, body, true)
    }

    /// Sends every request back-to-back over one persistent connection
    /// **before reading any response** (HTTP/1.1 pipelining), then reads
    /// all responses in order. The server guarantees responses come back
    /// in request order, so `result[i]` answers `requests[i]`.
    ///
    /// No stale-connection retry: a pipelined batch is all-or-nothing —
    /// on any error the pooled connection is dropped and the error
    /// surfaced, so a request is never silently executed twice.
    pub fn pipeline(
        &mut self,
        requests: &[(&str, &str, Option<&str>)],
    ) -> io::Result<Vec<ClientResponse>> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        self.ensure_conn()?;
        let mut out = String::new();
        for &(method, path, body) in requests {
            write_request_head(&mut out, &self.addr, method, path, body, true);
        }
        let reader = self.conn.as_mut().unwrap();
        let run = |reader: &mut BufReader<TcpStream>| -> io::Result<(Vec<ClientResponse>, bool)> {
            reader.get_mut().write_all(out.as_bytes())?;
            reader.get_mut().flush()?;
            let mut responses = Vec::with_capacity(requests.len());
            let mut reusable = true;
            for _ in 0..requests.len() {
                if !reusable {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection mid-pipeline",
                    ));
                }
                let (resp, r) = read_response(reader)?;
                reusable = r;
                responses.push(resp);
            }
            Ok((responses, reusable))
        };
        match run(reader) {
            Ok((responses, reusable)) => {
                if !reusable {
                    self.conn = None;
                }
                Ok(responses)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Sends one request with a binary (`application/octet-stream`) body
    /// over the pooled connection and reads the raw response, with the
    /// same one-shot stale-connection retry as [`Client::request`] — a
    /// shard's idle timeout between estimation rounds closes the pooled
    /// connection, and the next round's demand redials transparently.
    pub fn request_bytes(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<RawResponse> {
        if self.conn.is_some() {
            match self.request_bytes_once(method, path, body) {
                Ok(resp) => return Ok(resp),
                Err(e) if stale_connection(&e) => {} // request_bytes_once dropped conn
                Err(e) => return Err(e),
            }
        }
        self.request_bytes_once(method, path, body)
    }

    fn request_bytes_once(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<RawResponse> {
        use std::fmt::Write as _;
        self.ensure_conn()?;
        let reader = self.conn.as_mut().unwrap();
        let mut head = String::new();
        let _ = write!(
            head,
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            body.len(),
        );
        // Single write for head + body — see `write_request_head` on why
        // fragmenting is pathological on persistent connections.
        let mut buf = head.into_bytes();
        buf.extend_from_slice(body);
        let result = reader
            .get_mut()
            .write_all(&buf)
            .and_then(|()| reader.get_mut().flush())
            .and_then(|()| read_response_raw(reader));
        match result {
            Ok((resp, reusable)) => {
                if !reusable {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        keep_alive: bool,
    ) -> io::Result<ClientResponse> {
        self.ensure_conn()?;
        let reader = self.conn.as_mut().unwrap();
        let mut head = String::new();
        write_request_head(&mut head, &self.addr, method, path, body, keep_alive);
        let result = reader
            .get_mut()
            .write_all(head.as_bytes())
            .and_then(|()| reader.get_mut().flush())
            .and_then(|()| read_response(reader));
        match result {
            Ok((resp, reusable)) => {
                if !keep_alive || !reusable {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Dials the server if no pooled connection is live.
    fn ensure_conn(&mut self) -> io::Result<()> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            // Requests are written whole and are latency-sensitive: never
            // let Nagle hold a segment back waiting for a delayed ACK.
            stream.set_nodelay(true)?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(())
    }
}

/// Serializes one request (head + body) into `out`. Shared by the
/// request-response and pipelined paths so their wire format cannot
/// diverge; the caller sends the buffer in a single write — see
/// [`Response::to_bytes`] on why fragmenting the head is pathological on
/// persistent connections.
fn write_request_head(
    out: &mut String,
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    keep_alive: bool,
) {
    use std::fmt::Write as _;
    let body = body.unwrap_or("");
    let _ = write!(
        out,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
}

/// Whether an error from a reused pooled connection means the server had
/// already closed it (making a one-shot retry on a fresh dial safe).
fn stale_connection(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
    )
}

/// Whether a `Connection` header value asks for the connection to close.
fn connection_has_close(value: &str) -> bool {
    value
        .split(',')
        .any(|t| t.trim().eq_ignore_ascii_case("close"))
}

/// Reads one response as text (UTF-8-validated body over
/// [`read_response_raw`]).
fn read_response<R: BufRead>(reader: &mut R) -> io::Result<(ClientResponse, bool)> {
    let (raw, reusable) = read_response_raw(reader)?;
    let body = String::from_utf8(raw.body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response body not UTF-8"))?;
    Ok((
        ClientResponse {
            status: raw.status,
            headers: raw.headers,
            body,
        },
        reusable,
    ))
}

/// Reads one response with raw body bytes. The boolean says whether the
/// connection can carry another request (the server did not answer
/// `Connection: close`, and the body had an explicit length so the stream
/// position is known).
fn read_response_raw<R: BufRead>(reader: &mut R) -> io::Result<(RawResponse, bool)> {
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    if status_line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                // A malformed length must fail loudly: `.parse().ok()`
                // would silently drop into the read-to-EOF path, blocking
                // until the server's idle timeout and desyncing the
                // persistent connection.
                content_length = Some(value.parse().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("malformed response Content-Length {value:?}"),
                    )
                })?);
            }
            headers.push((name, value));
        }
    }

    let sized = content_length.is_some();
    let body = match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };

    let resp = RawResponse {
        status,
        headers,
        body,
    };
    let server_close = resp
        .header("connection")
        .map(connection_has_close)
        .unwrap_or(false);
    let reusable = sized && !server_close;
    Ok((resp, reusable))
}

/// One-shot HTTP client: connects, sends a single `Connection: close`
/// request, reads the full response. [`Client`] amortizes the dial across
/// requests; this helper is for callers that genuinely send one request.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<ClientResponse> {
    Client::new(addr).request_once(method, path, body, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_with_body() {
        let raw = b"POST /rank HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let req = read_request(&mut &raw[..]).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/rank");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body_str().unwrap(), "{\"a\":1}");
    }

    #[test]
    fn parser_is_incremental_and_tracks_consumed() {
        let raw = b"POST /rank HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}extra";
        let mut parser = RequestParser::new();
        // Every strict prefix of the request proper is NeedMore.
        let request_len = raw.len() - 5;
        for cut in 0..request_len {
            let mut p = RequestParser::new();
            assert!(
                matches!(p.parse(&raw[..cut]).unwrap(), ParseStatus::NeedMore),
                "cut {cut}"
            );
        }
        // Byte-at-a-time feeding of one parser instance completes exactly
        // once, at exactly the request boundary, leaving "extra" alone.
        let mut done = None;
        for cut in 0..=raw.len() {
            match parser.parse(&raw[..cut]).unwrap() {
                ParseStatus::NeedMore => assert!(done.is_none()),
                ParseStatus::Complete { request, consumed } => {
                    done = Some((request, consumed));
                    break;
                }
            }
        }
        let (req, consumed) = done.expect("never completed");
        assert_eq!(consumed, request_len);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/rank");
        assert_eq!(req.body_str().unwrap(), "{\"a\":1}");
        // The parser reset itself: the remainder parses as a new head.
        assert!(matches!(
            parser.parse(&raw[consumed..]).unwrap(),
            ParseStatus::NeedMore
        ));
    }

    #[test]
    fn parser_carves_pipelined_requests_at_exact_boundaries() {
        let raw: &[u8] = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /c HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new();
        let mut start = 0;
        let mut got = Vec::new();
        while start < raw.len() {
            match parser.parse(&raw[start..]).unwrap() {
                ParseStatus::Complete { request, consumed } => {
                    start += consumed;
                    got.push(request.path);
                }
                ParseStatus::NeedMore => panic!("incomplete at {start}"),
            }
        }
        assert_eq!(got, ["/a", "/b", "/c"]);
        assert_eq!(start, raw.len());
    }

    #[test]
    fn parser_errors_match_one_shot_classification() {
        // Oversized declared body.
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = RequestParser::new().parse(raw.as_bytes()).unwrap_err();
        assert_eq!(err.to_string(), "request body too large");
        // Conflicting Content-Length.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 2\r\n\r\n";
        let err = RequestParser::new().parse(raw).unwrap_err();
        assert_eq!(err.to_string(), "multiple Content-Length headers");
        // Unterminated head at the cap.
        let flood = format!("GET /{} HTTP/1.1", "a".repeat(MAX_HEAD_BYTES * 2));
        let err = RequestParser::new().parse(flood.as_bytes()).unwrap_err();
        assert_eq!(err.to_string(), "request head too large");
        // Bare-\n framing parses like \r\n framing.
        let mut p = RequestParser::new();
        let raw = b"GET /x HTTP/1.1\nhost: h\n\n";
        let ParseStatus::Complete { request, consumed } = p.parse(raw).unwrap() else {
            panic!("bare-newline head did not complete");
        };
        assert_eq!(consumed, raw.len());
        assert_eq!(request.header("host"), Some("h"));
    }

    #[test]
    fn empty_stream_is_none() {
        let raw: &[u8] = b"";
        assert!(read_request(&mut &raw[..]).unwrap().is_none());
    }

    #[test]
    fn rejects_request_line_without_newline() {
        // A head truncated mid-request-line (no terminating newline) must
        // be classified as truncation (UnexpectedEof), never parsed as a
        // method/path fragment. Pre-fix, `b"POST"` was fed to the
        // request-line parser and misreported as InvalidData
        // "malformed request line".
        for raw in [
            &b"POST"[..],
            &b"POST /rank"[..],
            &b"POST /rank HTTP/1.1"[..],
        ] {
            let err = read_request(&mut &raw[..]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "{raw:?}");
            assert_eq!(err.to_string(), "connection closed mid-headers", "{raw:?}");
        }
        // An endless request line hitting the head cap reports the cap.
        let flood = format!("GET /{} HTTP/1.1", "a".repeat(MAX_HEAD_BYTES * 2));
        let err = read_request(&mut flood.as_bytes()).unwrap_err();
        assert_eq!(err.to_string(), "request head too large");
    }

    #[test]
    fn rejects_oversized_head_without_buffering_it() {
        // One endless header line (no newline anywhere): the take() cap
        // must fail the request at MAX_HEAD_BYTES, not buffer it all.
        let flood = format!(
            "GET / HTTP/1.1\r\nX-Flood: {}",
            "a".repeat(MAX_HEAD_BYTES * 2)
        );
        let err = read_request(&mut flood.as_bytes()).unwrap_err();
        assert_eq!(err.to_string(), "request head too large");
        // Many small header lines exceeding the cap in aggregate.
        let mut flood = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEAD_BYTES / 8) {
            flood.push_str(&format!("h{i}: v\r\n"));
        }
        assert!(read_request(&mut flood.as_bytes()).is_err());
    }

    #[test]
    fn rejects_duplicate_or_conflicting_content_length() {
        // Two CONFLICTING lengths: whichever one a naive parser picks, an
        // intermediary picking the other desynchronizes the connection —
        // the request-smuggling primitive. Pre-fix the first match won
        // silently.
        let raw = b"POST /rank HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 2\r\n\r\n{\"a\":1}";
        let err = read_request(&mut &raw[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert_eq!(err.to_string(), "multiple Content-Length headers");
        // Duplicates that AGREE are rejected too (RFC 9112 §6.3 allows
        // coalescing them, but nothing legitimate sends them — and every
        // accepted duplicate is smuggling surface).
        let raw = b"POST /rank HTTP/1.1\r\nContent-Length: 7\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        let err = read_request(&mut &raw[..]).unwrap_err();
        assert_eq!(err.to_string(), "multiple Content-Length headers");
        // One well-formed length still parses, whatever its position.
        let raw = b"POST /rank HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}";
        assert!(read_request(&mut &raw[..]).unwrap().is_some());
    }

    #[test]
    fn client_rejects_malformed_response_content_length() {
        // Pre-fix: `.parse().ok()` turned garbage into None and the client
        // fell into the read-to-EOF path — silently mis-framing the body
        // and poisoning the persistent connection.
        for bad in ["x", "-1", "18446744073709551616", "1 2"] {
            let raw = format!("HTTP/1.1 200 OK\r\nContent-Length: {bad}\r\n\r\n{{}}");
            let err = read_response(&mut raw.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad:?}");
            assert!(err.to_string().contains("Content-Length"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn rejects_oversized_body_and_bad_length() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(read_request(&mut raw.as_bytes()).is_err());
        let raw = "POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n";
        assert!(read_request(&mut raw.as_bytes()).is_err());
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        Response::json(200, "{}")
            .with_header("X-Saphyra-Cache", "hit")
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("X-Saphyra-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        Response::json(200, "{}").write_to(&mut out, false).unwrap();
        assert!(String::from_utf8(out)
            .unwrap()
            .contains("Connection: close\r\n"));
    }

    #[test]
    fn connection_close_detection() {
        let req = |headers: &[(&str, &str)]| Request {
            method: "GET".to_string(),
            path: "/".to_string(),
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: Vec::new(),
        };
        assert!(!req(&[]).wants_close());
        assert!(!req(&[("connection", "keep-alive")]).wants_close());
        assert!(req(&[("connection", "close")]).wants_close());
        assert!(req(&[("connection", "Keep-Alive, Close")]).wants_close());
    }

    #[test]
    fn read_response_reports_reusability() {
        let raw: &[u8] =
            b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}";
        let (resp, reusable) = read_response(&mut &raw[..]).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{}");
        assert!(reusable);

        let raw: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}";
        assert!(!read_response(&mut &raw[..]).unwrap().1);

        // No Content-Length: body runs to EOF, the connection is spent.
        let raw: &[u8] = b"HTTP/1.1 200 OK\r\n\r\n{}";
        let (resp, reusable) = read_response(&mut &raw[..]).unwrap();
        assert_eq!(resp.body, "{}");
        assert!(!reusable);
    }
}
