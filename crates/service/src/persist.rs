//! Crash-safe registry persistence: versioned, checksummed binary
//! snapshots of loaded graphs (CSR + full [`BcDecomposition`]) plus an
//! append-only request journal.
//!
//! ## Snapshot format (version 3)
//!
//! A page-aligned container designed so the graph section can be served
//! zero-copy from a read-only `mmap`:
//!
//! ```text
//! [   0..   8)  magic          b"SAPHSNAP"
//! [   8..  12)  u32 version    SNAPSHOT_VERSION
//! [  12..  16)  u32 flags      reserved, zero
//! [  16..  24)  u64 delta_seq
//! [  24..  48)  graph extent   u64 offset | u64 length | u32 CRC-32 | pad
//! [  48..  72)  warm extent    same shape
//! [  72..  96)  dec extent     same shape
//! [  96..    )  name           length-prefixed UTF-8
//! [       4096) graph section  fixed-field header, Elias-Fano offset
//!                              arrays, neighbor + edge-id slot arrays —
//!                              every array naturally aligned in the file
//! [           ) warm section   cached /rank responses worth pre-warming
//! [           ) dec section    BcDecomposition (own DEC_FORMAT_VERSION)
//! ```
//!
//! The graph section starts at file offset 4096 (one page) and stores its
//! arrays little-endian at 8-byte-aligned offsets, so a boot can `mmap`
//! the file read-only and serve CSR queries straight off the kernel page
//! cache ([`load_snapshot_mapped`]) — no decode, no heap copy. The
//! section CRC is verified once at open. Snapshot files are only ever
//! *replaced* by an atomic rename, never truncated in place, so a live
//! mapping cannot be torn out from under a reader.
//!
//! `delta_seq` counts the journaled edge deltas (`PATCH /graphs/<name>`)
//! already folded into the snapshotted graph, so boot replay applies only
//! patch records with `seq > delta_seq` — snapshot + journal suffix
//! reconstructs the live graph with zero re-uploads.
//!
//! All integers little-endian. The three sections are checksummed
//! *independently*: a damaged graph section makes the snapshot unusable
//! (there is nothing to decompose), a damaged warm section degrades to an
//! empty warm cache, and a damaged or version-mismatched decomposition
//! section degrades gracefully — the graph is still restored and the
//! caller recomputes the decomposition, trading the startup win for
//! correctness, never a crash.
//!
//! Version-1/2 files (sequential `u64 len | payload | u32 CRC` sections
//! with the graph serialized via `saphyra_graph::binio`) still load
//! through the byte-decode path.
//!
//! ## Atomic writes
//!
//! [`save_snapshot`] writes to a dot-prefixed temp file in the target
//! directory, `fsync`s it, `rename`s it over the destination, and
//! `fsync`s the directory. A crash at any point leaves either the old
//! snapshot or the new one — never a torn file (a leftover `.tmp` is
//! ignored by the `*.snap` boot scan).
//!
//! ## Journal
//!
//! One JSON line per `/rank` request, appended in a single `write`:
//!
//! ```json
//! {"ts":1722268800,"status":200,"cache":"miss","request":{"graph":"g","targets":[1,2],...}}
//! ```
//!
//! `ts` is unix seconds, `cache` the `X-Saphyra-Cache` disposition
//! (`null` for rejected requests), and `request` the parsed request body
//! re-serialized canonically (`null` when the body was not valid JSON).
//! Because `f64`s serialize with shortest-round-trip precision, replaying
//! a journal line reconstructs the exact request bit pattern —
//! [`replay_journal`] drives the recorded requests back through a
//! [`Service`] and checks the statuses match.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use saphyra::bc::{self, BcDecomposition};
use saphyra_graph::binio;
use saphyra_graph::succinct::{EliasFano, U32s, Words};
use saphyra_graph::wire::{self, Reader};
use saphyra_graph::{CsrOffsets, Graph, MmapRegion};

use crate::http::Request;
use crate::json::Json;
use crate::server::Service;
use crate::sync::LockExt;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SAPHSNAP";
/// Snapshot container format version. Version 3 made the container
/// page-aligned and mmap-servable and added the warm-cache section;
/// version 2 added `delta_seq`. Older files still load via byte decode.
pub const SNAPSHOT_VERSION: u32 = 3;
/// Oldest snapshot container version this build still reads.
pub const SNAPSHOT_MIN_VERSION: u32 = 1;
/// Bytes reserved for the v3 fixed header (magic, version, extents,
/// name). The graph section starts here — one page, so arrays stored at
/// aligned offsets within the section stay aligned in a page-aligned
/// mapping.
pub const GRAPH_SECTION_OFFSET: usize = 4096;
/// Size of the fixed-field prefix of a v3 graph section: `u64` n, m,
/// ef_len, universe; `u32` low_bits + pad; `u64` low/upper/sample word
/// counts. 64 bytes, so the arrays that follow start 8-byte aligned.
const GRAPH_FIELDS_BYTES: usize = 64;
/// File name of the append-only request journal inside a state dir.
pub const JOURNAL_FILE: &str = "journal.log";

/// Persistence failure: I/O or format (with context).
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes do not form a valid snapshot.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(m) => write!(f, "invalid snapshot: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError::Format(msg.into()))
}

/// A decoded snapshot. `dec` is `Err(reason)` when only the decomposition
/// section was damaged or version-mismatched: the graph is intact and the
/// caller should recompute (and may overwrite the snapshot).
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// Registry name the snapshot was saved under.
    pub name: String,
    /// The restored graph.
    pub graph: Graph,
    /// The restored decomposition, or the reason it must be recomputed.
    pub dec: Result<BcDecomposition, String>,
    /// How many journaled edge deltas the snapshotted graph already
    /// contains (0 for version-1 snapshots, which predate deltas).
    pub delta_seq: u64,
    /// Cached responses persisted for cache pre-warming. Empty for
    /// version-1/2 snapshots and when the warm section was damaged.
    pub warm: Vec<WarmEntry>,
    /// Whether the graph's CSR arrays serve zero-copy from a mapped
    /// snapshot file ([`load_snapshot_mapped`] on a v3 container).
    pub mapped: bool,
}

/// One cached `/rank` response persisted into a snapshot's warm section,
/// so a restarted node answers its hottest requests straight from the
/// page cache instead of recomputing. The fields mirror the service's
/// ranking-cache key; `measure` is the service's measure code (the
/// service owns that mapping) and `body` the exact JSON response bytes
/// served before the restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmEntry {
    /// Service measure code (0 = betweenness, 1 = k-path, 2 = harmonic).
    pub measure: u8,
    /// Target node set of the cached request.
    pub targets: Vec<u32>,
    /// Bit pattern of the request's `eps` (`f64::to_bits`).
    pub eps_bits: u64,
    /// Bit pattern of the request's `delta` (`f64::to_bits`).
    pub delta_bits: u64,
    /// Sampling seed of the cached request.
    pub seed: u64,
    /// `k` for k-path requests (0 otherwise).
    pub khops: u64,
    /// The exact response body previously served.
    pub body: String,
}

fn warm_to_bytes(entries: &[WarmEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    wire::put_u32(&mut out, entries.len() as u32);
    for e in entries {
        wire::put_u8(&mut out, e.measure);
        wire::put_u64(&mut out, e.seed);
        wire::put_u64(&mut out, e.eps_bits);
        wire::put_u64(&mut out, e.delta_bits);
        wire::put_u64(&mut out, e.khops);
        wire::put_vec_u32(&mut out, &e.targets);
        wire::put_str(&mut out, &e.body);
    }
    out
}

fn warm_from_bytes(bytes: &[u8]) -> Result<Vec<WarmEntry>, String> {
    let mut r = Reader::new(bytes);
    let count = r.u32().map_err(|e| format!("warm count: {e}"))? as usize;
    if count > r.remaining() {
        // Every entry takes well over one byte; an impossible count means
        // damage — refuse before reserving a huge Vec.
        return Err(format!("warm count {count} exceeds the section size"));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let entry = (|| -> Result<WarmEntry, wire::WireError> {
            Ok(WarmEntry {
                measure: r.u8()?,
                seed: r.u64()?,
                eps_bits: r.u64()?,
                delta_bits: r.u64()?,
                khops: r.u64()?,
                targets: r.vec_u32()?,
                body: r.str_()?,
            })
        })()
        .map_err(|e| format!("warm entry {i}: {e}"))?;
        out.push(entry);
    }
    if !r.is_empty() {
        return Err(format!(
            "{} trailing bytes in the warm section",
            r.remaining()
        ));
    }
    Ok(out)
}

/// Writer half of the v1/v2 section format (`usize len | payload | crc`).
/// The v3 writer uses header extents instead; tests still build legacy
/// containers with this to pin the compatibility path.
#[cfg(test)]
fn put_section(out: &mut Vec<u8>, payload: &[u8]) {
    wire::put_usize(out, payload.len());
    out.extend_from_slice(payload);
    wire::put_u32(out, wire::crc32(payload));
}

fn take_section<'a>(r: &mut Reader<'a>, what: &str) -> Result<&'a [u8], PersistError> {
    let len = r
        .usize_()
        .map_err(|e| PersistError::Format(format!("{what} section length: {e}")))?;
    // The section must hold `len` payload bytes PLUS its 4-byte CRC. The
    // two-sided check matters: with `remaining < 4` a declared length of 0
    // would pass a naive `len > remaining - 4` guard and the CRC read
    // below would fail — a snapshot load must never panic on any input.
    let need = len
        .checked_add(4)
        .filter(|&need| need <= r.remaining())
        .ok_or_else(|| {
            PersistError::Format(format!(
                "{what} section truncated: {len} payload bytes + CRC declared, {} available",
                r.remaining()
            ))
        })?;
    debug_assert!(need <= r.remaining());
    let payload = r.bytes(len).expect("length checked above");
    let stored = r.u32().expect("length checked above");
    let actual = wire::crc32(payload);
    if stored != actual {
        return format_err(format!(
            "{what} section checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        ));
    }
    Ok(payload)
}

/// One section's location in a v3 container: file offset, byte length,
/// and the CRC-32 of the section bytes.
#[derive(Debug, Clone, Copy)]
struct Extent {
    off: u64,
    len: u64,
    crc: u32,
}

impl Extent {
    fn end(&self) -> Option<u64> {
        self.off.checked_add(self.len)
    }
}

/// The decoded fixed header of a v3 container.
#[derive(Debug)]
struct V3Header {
    delta_seq: u64,
    graph: Extent,
    warm: Extent,
    dec: Extent,
    name: String,
}

fn put_extent(out: &mut Vec<u8>, off: u64, payload: &[u8]) {
    wire::put_u64(out, off);
    wire::put_u64(out, payload.len() as u64);
    wire::put_u32(out, wire::crc32(payload));
    wire::put_u32(out, 0); // pad: keeps the following extent u64-aligned
}

fn read_extent(r: &mut Reader<'_>, what: &str) -> Result<Extent, PersistError> {
    let off = r
        .u64()
        .map_err(|e| PersistError::Format(format!("{what} extent offset: {e}")))?;
    let len = r
        .u64()
        .map_err(|e| PersistError::Format(format!("{what} extent length: {e}")))?;
    let crc = r
        .u32()
        .map_err(|e| PersistError::Format(format!("{what} extent checksum: {e}")))?;
    let _pad = r
        .u32()
        .map_err(|e| PersistError::Format(format!("{what} extent padding: {e}")))?;
    Ok(Extent { off, len, crc })
}

/// Parses and sanity-checks a v3 fixed header. The header carries no CRC
/// of its own; the invariants checked here (one-page size, contiguous
/// extents in graph → warm → dec order) are what stand between a
/// bit-flipped header and an out-of-bounds slice below.
fn parse_v3_header(bytes: &[u8]) -> Result<V3Header, PersistError> {
    if bytes.len() < GRAPH_SECTION_OFFSET {
        return format_err(format!(
            "header truncated: {} bytes, a v3 container reserves {GRAPH_SECTION_OFFSET}",
            bytes.len()
        ));
    }
    let mut r = Reader::new(&bytes[SNAPSHOT_MAGIC.len() + 4..GRAPH_SECTION_OFFSET]);
    let _flags = r
        .u32()
        .map_err(|e| PersistError::Format(format!("header flags: {e}")))?;
    let delta_seq = r
        .u64()
        .map_err(|e| PersistError::Format(format!("header delta_seq: {e}")))?;
    let graph = read_extent(&mut r, "graph")?;
    let warm = read_extent(&mut r, "warm")?;
    let dec = read_extent(&mut r, "dec")?;
    let name = r
        .str_()
        .map_err(|e| PersistError::Format(format!("graph name: {e}")))?;
    if graph.off != GRAPH_SECTION_OFFSET as u64 {
        return format_err(format!(
            "graph section at offset {}, expected {GRAPH_SECTION_OFFSET}",
            graph.off
        ));
    }
    let graph_end = graph
        .end()
        .ok_or_else(|| PersistError::Format("graph extent overflows".into()))?;
    if warm.off != graph_end {
        return format_err(format!(
            "warm section at offset {}, expected {graph_end} (sections must be contiguous)",
            warm.off
        ));
    }
    let warm_end = warm
        .end()
        .ok_or_else(|| PersistError::Format("warm extent overflows".into()))?;
    if dec.off != warm_end {
        return format_err(format!(
            "dec section at offset {}, expected {warm_end} (sections must be contiguous)",
            dec.off
        ));
    }
    dec.end()
        .ok_or_else(|| PersistError::Format("dec extent overflows".into()))?;
    Ok(V3Header {
        delta_seq,
        graph,
        warm,
        dec,
        name,
    })
}

/// Slices one section out of a v3 container and verifies its CRC.
fn read_section<'a>(bytes: &'a [u8], ext: &Extent, what: &str) -> Result<&'a [u8], String> {
    let end = ext
        .end()
        .ok_or_else(|| format!("{what} extent overflows"))?;
    if end > bytes.len() as u64 {
        return Err(format!(
            "{what} section truncated: extent ends at byte {end}, file holds {}",
            bytes.len()
        ));
    }
    let payload = &bytes[ext.off as usize..end as usize];
    let actual = wire::crc32(payload);
    if actual != ext.crc {
        return Err(format!(
            "{what} section checksum mismatch: stored {:#010x}, computed {actual:#010x}",
            ext.crc
        ));
    }
    Ok(payload)
}

/// Field header of a v3 graph section, decoded and size-checked against
/// the section it came from.
struct GraphFields {
    n: usize,
    m: usize,
    ef_len: usize,
    universe: u64,
    low_bits: u32,
    low_words: usize,
    upper_words: usize,
    sample_words: usize,
    /// `2m`, the length of each slot array.
    slots: usize,
}

fn read_graph_fields(sec: &[u8]) -> Result<GraphFields, String> {
    fn u64_field(r: &mut Reader<'_>, what: &str) -> Result<u64, String> {
        r.u64().map_err(|e| format!("graph {what}: {e}"))
    }
    let mut r = Reader::new(sec);
    let n = u64_field(&mut r, "node count")? as usize;
    let m = u64_field(&mut r, "edge count")? as usize;
    let ef_len = u64_field(&mut r, "offset count")? as usize;
    let universe = u64_field(&mut r, "offset universe")?;
    let low_bits = r.u32().map_err(|e| format!("graph low_bits: {e}"))?;
    let _pad = r.u32().map_err(|e| format!("graph padding: {e}"))?;
    let low_words = u64_field(&mut r, "low words")? as usize;
    let upper_words = u64_field(&mut r, "upper words")? as usize;
    let sample_words = u64_field(&mut r, "sample words")? as usize;
    let slots = m
        .checked_mul(2)
        .ok_or_else(|| "graph edge count overflows".to_string())?;
    if Some(ef_len) != n.checked_add(1) {
        return Err(format!("graph offset count {ef_len} != n + 1 (n = {n})"));
    }
    // The declared arrays must fill the section exactly. Checked
    // arithmetic throughout: every count is attacker-placeable.
    let want = [low_words, upper_words, sample_words]
        .iter()
        .try_fold(GRAPH_FIELDS_BYTES, |acc, &w| {
            w.checked_mul(8).and_then(|b| acc.checked_add(b))
        })
        .and_then(|acc| slots.checked_mul(4)?.checked_mul(2)?.checked_add(acc))
        .ok_or_else(|| "graph section size overflows".to_string())?;
    if want != sec.len() {
        return Err(format!(
            "graph section holds {} bytes, header declares {want}",
            sec.len()
        ));
    }
    Ok(GraphFields {
        n,
        m,
        ef_len,
        universe,
        low_bits,
        low_words,
        upper_words,
        sample_words,
        slots,
    })
}

/// Serializes a graph into the v3 graph-section layout: the 64-byte field
/// header, the three Elias–Fano offset arrays, then the neighbor and
/// edge-id slot arrays. A plain-offset graph is compacted on the fly; a
/// succinct one serializes its existing encoding verbatim, so the bytes
/// are identical either way.
fn graph_section_to_bytes(graph: &Graph) -> Vec<u8> {
    let n = graph.num_nodes();
    let m = graph.num_edges();
    let rebuilt;
    let ef = match graph.csr_offsets() {
        CsrOffsets::Succinct(ef) => ef,
        CsrOffsets::Plain(v) => {
            rebuilt = EliasFano::from_values(v);
            &rebuilt
        }
    };
    let (low, upper, samples) = ef.parts();
    let (low, upper, samples) = (low.as_slice(), upper.as_slice(), samples.as_slice());
    let (neighbors, edge_ids) = graph.csr_slots();
    let mut out = Vec::with_capacity(
        GRAPH_FIELDS_BYTES
            + 8 * (low.len() + upper.len() + samples.len())
            + 4 * (neighbors.len() + edge_ids.len()),
    );
    wire::put_u64(&mut out, n as u64);
    wire::put_u64(&mut out, m as u64);
    wire::put_u64(&mut out, ef.len() as u64);
    wire::put_u64(&mut out, ef.universe());
    wire::put_u32(&mut out, ef.low_bits());
    wire::put_u32(&mut out, 0); // pad to the next u64 boundary
    wire::put_u64(&mut out, low.len() as u64);
    wire::put_u64(&mut out, upper.len() as u64);
    wire::put_u64(&mut out, samples.len() as u64);
    debug_assert_eq!(out.len(), GRAPH_FIELDS_BYTES);
    for &w in low {
        wire::put_u64(&mut out, w);
    }
    for &w in upper {
        wire::put_u64(&mut out, w);
    }
    for &w in samples {
        wire::put_u64(&mut out, w);
    }
    for &v in neighbors {
        wire::put_u32(&mut out, v);
    }
    for &id in edge_ids {
        wire::put_u32(&mut out, id);
    }
    out
}

/// Decodes a v3 graph section into an owned graph, with the *full*
/// untrusted-input validation of [`binio::graph_from_arrays`] (per-node
/// sortedness and twin-slot consistency included) — this is the path a
/// plain `fs::read` load takes, where nothing but the CRC vouches for
/// the bytes and the CRC may itself be forged along with them.
fn graph_from_section_bytes(sec: &[u8]) -> Result<Graph, PersistError> {
    let f = read_graph_fields(sec).map_err(PersistError::Format)?;
    let mut r = Reader::new(&sec[GRAPH_FIELDS_BYTES..]);
    let read_words = |r: &mut Reader<'_>, count: usize| -> Result<Vec<u64>, PersistError> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(r.u64().map_err(|e| PersistError::Format(e.to_string()))?);
        }
        Ok(out)
    };
    let low = read_words(&mut r, f.low_words)?;
    let upper = read_words(&mut r, f.upper_words)?;
    let samples = read_words(&mut r, f.sample_words)?;
    let read_u32s = |r: &mut Reader<'_>, count: usize| -> Result<Vec<u32>, PersistError> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(r.u32().map_err(|e| PersistError::Format(e.to_string()))?);
        }
        Ok(out)
    };
    let neighbors = read_u32s(&mut r, f.slots)?;
    let edge_ids = read_u32s(&mut r, f.slots)?;
    debug_assert!(r.is_empty(), "read_graph_fields matched the section size");
    let ef = EliasFano::from_parts(
        f.ef_len,
        f.universe,
        f.low_bits,
        Words::Owned(low),
        Words::Owned(upper),
        Words::Owned(samples),
    )
    .map_err(PersistError::Format)?;
    let offsets: Vec<usize> = ef.iter().map(|v| v as usize).collect();
    binio::graph_from_arrays(f.n, f.m, offsets, neighbors, edge_ids)
        .map_err(|e| PersistError::Format(e.to_string()))
}

/// Assembles a graph whose CSR arrays are windows into a mapped v3 file.
/// `off`/`len` locate the (already CRC-verified) graph section inside
/// `region`. [`EliasFano::from_parts`] and [`Graph::assemble`] re-check
/// every invariant the accessors need to stay panic-free.
fn graph_from_mapped_section(
    region: &Arc<MmapRegion>,
    off: usize,
    len: usize,
) -> Result<Graph, String> {
    let f = read_graph_fields(&region[off..off + len])?;
    let mut pos = off + GRAPH_FIELDS_BYTES;
    let low = Words::mapped(Arc::clone(region), pos, f.low_words)?;
    pos += f.low_words * 8;
    let upper = Words::mapped(Arc::clone(region), pos, f.upper_words)?;
    pos += f.upper_words * 8;
    let samples = Words::mapped(Arc::clone(region), pos, f.sample_words)?;
    pos += f.sample_words * 8;
    let neighbors = U32s::mapped(Arc::clone(region), pos, f.slots)?;
    pos += f.slots * 4;
    let edge_ids = U32s::mapped(Arc::clone(region), pos, f.slots)?;
    pos += f.slots * 4;
    debug_assert_eq!(pos, off + len, "read_graph_fields matched the section size");
    let ef = EliasFano::from_parts(f.ef_len, f.universe, f.low_bits, low, upper, samples)?;
    Graph::assemble(CsrOffsets::Succinct(ef), neighbors, edge_ids, f.m)
}

/// Serializes one registry entry to snapshot bytes (always the current
/// container version). `delta_seq` is the entry's journaled-delta count —
/// 0 for a fresh upload, `GraphEntry::delta_seq` when re-snapshotting a
/// patched graph.
pub fn snapshot_to_bytes(
    name: &str,
    graph: &Graph,
    dec: &BcDecomposition,
    delta_seq: u64,
) -> Vec<u8> {
    snapshot_to_bytes_with_warm(name, graph, dec, delta_seq, &[])
}

/// [`snapshot_to_bytes`] with a warm-cache section: the given cached
/// responses ride along in the container and pre-warm the ranking cache
/// of the node that restores it.
///
/// # Panics
/// If `name` does not satisfy [`valid_graph_name`] — every caller
/// validates names at the API boundary, and an oversized name would
/// overflow the fixed one-page header.
pub fn snapshot_to_bytes_with_warm(
    name: &str,
    graph: &Graph,
    dec: &BcDecomposition,
    delta_seq: u64,
    warm: &[WarmEntry],
) -> Vec<u8> {
    let graph_bytes = graph_section_to_bytes(graph);
    let warm_bytes = warm_to_bytes(warm);
    let mut dec_bytes = Vec::new();
    bc::write_decomposition(dec, &mut dec_bytes);

    let graph_off = GRAPH_SECTION_OFFSET as u64;
    let warm_off = graph_off + graph_bytes.len() as u64;
    let dec_off = warm_off + warm_bytes.len() as u64;

    let mut out = Vec::with_capacity(
        GRAPH_SECTION_OFFSET + graph_bytes.len() + warm_bytes.len() + dec_bytes.len(),
    );
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    wire::put_u32(&mut out, SNAPSHOT_VERSION);
    wire::put_u32(&mut out, 0); // flags, reserved
    wire::put_u64(&mut out, delta_seq);
    put_extent(&mut out, graph_off, &graph_bytes);
    put_extent(&mut out, warm_off, &warm_bytes);
    put_extent(&mut out, dec_off, &dec_bytes);
    wire::put_str(&mut out, name);
    assert!(
        out.len() <= GRAPH_SECTION_OFFSET,
        "graph name overflows the snapshot header"
    );
    out.resize(GRAPH_SECTION_OFFSET, 0);
    out.extend_from_slice(&graph_bytes);
    out.extend_from_slice(&warm_bytes);
    out.extend_from_slice(&dec_bytes);
    out
}

/// Decodes snapshot bytes, validating magic, container version and every
/// section checksum. Graph-section damage is fatal, warm-section damage
/// degrades to an empty warm cache, and decomposition-section damage
/// degrades to `dec: Err(reason)`.
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<LoadedSnapshot, PersistError> {
    let mut r = Reader::new(bytes);
    let magic = r
        .bytes(SNAPSHOT_MAGIC.len())
        .map_err(|_| PersistError::Format("shorter than the magic header".into()))?;
    if magic != SNAPSHOT_MAGIC {
        return format_err("bad magic (not a saphyra snapshot)");
    }
    let version = r.u32().map_err(|e| PersistError::Format(e.to_string()))?;
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return format_err(format!(
            "snapshot version {version} outside supported {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION}"
        ));
    }
    if version >= 3 {
        return snapshot_from_bytes_v3(bytes);
    }

    let graph_payload = take_section(&mut r, "graph")?;
    let mut gr = Reader::new(graph_payload);
    let name = gr
        .str_()
        .map_err(|e| PersistError::Format(format!("graph name: {e}")))?;
    let graph = binio::read_graph(&mut gr).map_err(|e| PersistError::Format(e.to_string()))?;
    let delta_seq = if version >= 2 {
        gr.u64()
            .map_err(|e| PersistError::Format(format!("graph delta_seq: {e}")))?
    } else {
        0
    };
    if !gr.is_empty() {
        return format_err("trailing bytes in graph section");
    }

    // The decomposition section degrades instead of failing the load.
    let dec = match take_section(&mut r, "decomposition") {
        Err(e) => Err(e.to_string()),
        Ok(payload) => {
            let mut dr = Reader::new(payload);
            match bc::read_decomposition(&mut dr, &graph) {
                Err(e) => Err(e.to_string()),
                Ok(_) if !dr.is_empty() => Err("trailing bytes in decomposition section".into()),
                Ok(dec) => Ok(dec),
            }
        }
    };
    // A v1 container ends exactly after the second section. Trailing bytes
    // after a *well-formed* decomposition section mean the file is not
    // v1 (a concatenation, or a future format with more sections) —
    // reject it rather than silently treating a prefix as the whole
    // snapshot. When the section itself was damaged the reader position
    // is meaningless, so that case keeps degrading to recompute.
    if dec.is_ok() && !r.is_empty() {
        return format_err(format!(
            "{} trailing bytes after the decomposition section",
            r.remaining()
        ));
    }
    Ok(LoadedSnapshot {
        name,
        graph,
        dec,
        delta_seq,
        warm: Vec::new(),
        mapped: false,
    })
}

/// Decodes a warm section, degrading any damage (bad extent, bad CRC,
/// malformed entries) to an empty warm cache with a warning — warm data
/// is a performance hint, never worth failing a boot over.
fn decode_warm_section(bytes: &[u8], ext: &Extent) -> Vec<WarmEntry> {
    match read_section(bytes, ext, "warm").and_then(warm_from_bytes) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!(
                "warning: snapshot warm section damaged ({e}); continuing with an empty warm cache"
            );
            Vec::new()
        }
    }
}

/// Decodes a dec section against its graph; any failure degrades to
/// `Err(reason)` (the caller recomputes).
fn decode_dec_section(
    bytes: &[u8],
    ext: &Extent,
    graph: &Graph,
) -> Result<BcDecomposition, String> {
    let payload = read_section(bytes, ext, "decomposition")?;
    let mut dr = Reader::new(payload);
    match bc::read_decomposition(&mut dr, graph) {
        Err(e) => Err(e.to_string()),
        Ok(_) if !dr.is_empty() => Err("trailing bytes in decomposition section".into()),
        Ok(dec) => Ok(dec),
    }
}

/// The v3 byte-decode path: fully-validated owned arrays, no mapping.
/// [`load_snapshot_mapped`] is the zero-copy counterpart.
fn snapshot_from_bytes_v3(bytes: &[u8]) -> Result<LoadedSnapshot, PersistError> {
    let h = parse_v3_header(bytes)?;
    let graph_sec = read_section(bytes, &h.graph, "graph").map_err(PersistError::Format)?;
    // The dec section ends the container; a longer file is not this
    // snapshot (a concatenation, or junk appended past the CRCs' reach).
    let dec_end = h.dec.end().expect("checked in parse_v3_header");
    if (bytes.len() as u64) > dec_end {
        return format_err(format!(
            "{} trailing bytes after the decomposition section",
            bytes.len() as u64 - dec_end
        ));
    }
    let graph = graph_from_section_bytes(graph_sec)?;
    let warm = decode_warm_section(bytes, &h.warm);
    let dec = decode_dec_section(bytes, &h.dec, &graph);
    Ok(LoadedSnapshot {
        name: h.name,
        graph,
        dec,
        delta_seq: h.delta_seq,
        warm,
        mapped: false,
    })
}

/// The zero-copy load path for a mapped v3 container: CRC the graph
/// section once, then assemble a graph whose CSR arrays are windows into
/// the mapping. Warm and dec sections are small and decode to owned data
/// as usual.
fn snapshot_from_mapped(region: &Arc<MmapRegion>) -> Result<LoadedSnapshot, PersistError> {
    let bytes: &[u8] = region;
    let h = parse_v3_header(bytes)?;
    let graph_sec = read_section(bytes, &h.graph, "graph").map_err(PersistError::Format)?;
    let dec_end = h.dec.end().expect("checked in parse_v3_header");
    if (bytes.len() as u64) > dec_end {
        return format_err(format!(
            "{} trailing bytes after the decomposition section",
            bytes.len() as u64 - dec_end
        ));
    }
    let graph = graph_from_mapped_section(region, h.graph.off as usize, graph_sec.len())
        .map_err(PersistError::Format)?;
    let warm = decode_warm_section(bytes, &h.warm);
    let dec = decode_dec_section(bytes, &h.dec, &graph);
    Ok(LoadedSnapshot {
        name: h.name,
        graph,
        dec,
        delta_seq: h.delta_seq,
        warm,
        mapped: true,
    })
}

/// Writes a snapshot to `path` atomically: dot-prefixed temp file in the
/// same directory, `fsync`, `rename`, `fsync` of the directory. Readers
/// (and crashes) see either the previous file or the complete new one.
/// The temp name is unique per process *and* per call — concurrent saves
/// of the same name must not interleave writes into one temp file, or
/// the winning `rename` could publish a torn mix of both.
pub fn save_snapshot(
    path: &Path,
    name: &str,
    graph: &Graph,
    dec: &BcDecomposition,
    delta_seq: u64,
) -> Result<(), PersistError> {
    save_snapshot_with_warm(path, name, graph, dec, delta_seq, &[])
}

/// [`save_snapshot`] with a warm-cache section (same atomic write path).
pub fn save_snapshot_with_warm(
    path: &Path,
    name: &str,
    graph: &Graph,
    dec: &BcDecomposition,
    delta_seq: u64,
    warm: &[WarmEntry],
) -> Result<(), PersistError> {
    let bytes = snapshot_to_bytes_with_warm(name, graph, dec, delta_seq, warm);
    write_snapshot_atomic(path, &bytes)
}

fn write_snapshot_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| PersistError::Format(format!("bad snapshot path {path:?}")))?;
    let tmp_name = format!(
        ".{file_name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    // Persist the rename itself (the new directory entry).
    if let Some(d) = dir {
        if let Ok(dirf) = File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

/// The snapshot path for registry entry `name` inside `dir`.
pub fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.snap"))
}

/// Whether `name` can name a persisted graph: 1-64 chars of
/// `[A-Za-z0-9._-]`, no leading dot. The leading-dot rule is load-bearing
/// for persistence, not cosmetic: snapshots are stored as `<name>.snap`
/// and [`scan_snapshots`] skips dot-prefixed files (that namespace is
/// reserved for atomic-write temp files) — a ".g" graph would persist
/// "successfully" yet silently vanish on the next boot. Both the HTTP
/// `POST /graphs` path and the offline `snapshot save` CLI enforce this.
pub fn valid_graph_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Loads and fully validates one snapshot file.
pub fn load_snapshot(path: &Path) -> Result<LoadedSnapshot, PersistError> {
    snapshot_from_bytes(&fs::read(path)?)
}

/// Loads a snapshot zero-copy where possible: a v3 file is `mmap`ed
/// read-only and the graph's CSR arrays serve straight off the mapping
/// (`mapped: true`), with the section CRC verified once here. Anything
/// that prevents mapping — an older container version, a damaged v3
/// layout, a big-endian host, the `SAPHYRA_NO_MMAP` escape hatch, or the
/// mmap syscall failing — falls back to the owned byte-decode path with
/// a warning. Corruption yields a clean error either way, never
/// undefined behavior.
pub fn load_snapshot_mapped(path: &Path) -> Result<LoadedSnapshot, PersistError> {
    if cfg!(not(unix))
        || cfg!(target_endian = "big")
        || std::env::var_os("SAPHYRA_NO_MMAP").is_some()
    {
        return load_snapshot(path);
    }
    let file = File::open(path)?;
    let region = match MmapRegion::map(&file) {
        Ok(r) => Arc::new(r),
        Err(e) => {
            eprintln!("warning: cannot mmap snapshot {path:?} ({e}); falling back to byte decode");
            return load_snapshot(path);
        }
    };
    drop(file); // the mapping outlives the descriptor
    let bytes: &[u8] = &region;
    let v3 = bytes.len() >= SNAPSHOT_MAGIC.len() + 4
        && bytes[..SNAPSHOT_MAGIC.len()] == SNAPSHOT_MAGIC
        && u32::from_le_bytes(
            bytes[SNAPSHOT_MAGIC.len()..SNAPSHOT_MAGIC.len() + 4]
                .try_into()
                .expect("4 bytes"),
        ) >= 3;
    if !v3 {
        // v1/v2 (or not a snapshot at all): decode owned straight from
        // the mapping; it is dropped once the copy is done.
        return snapshot_from_bytes(bytes);
    }
    match snapshot_from_mapped(&region) {
        Ok(snap) => Ok(snap),
        Err(e) => {
            eprintln!("warning: mapped load of {path:?} failed ({e}); falling back to byte decode");
            load_snapshot(path)
        }
    }
}

/// Per-section accounting of one snapshot container — what the
/// `snapshot verify` CLI reports. Produced by [`inspect_snapshot`] after
/// a full-validation load, so an `Ok` info implies a loadable snapshot
/// (possibly with a degraded dec/warm section).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Container version the file was written with.
    pub version: u32,
    /// Registry name the snapshot was saved under.
    pub name: String,
    /// Journaled deltas already folded in.
    pub delta_seq: u64,
    /// Whole-file size in bytes.
    pub total_bytes: u64,
    /// Graph section payload bytes.
    pub graph_bytes: u64,
    /// Warm section payload bytes (0 for v1/v2 containers).
    pub warm_bytes: u64,
    /// Decomposition section payload bytes.
    pub dec_bytes: u64,
    /// Warm entries restored (0 when the section was damaged or absent).
    pub warm_entries: usize,
    /// Whether the decomposition section decoded (false = boot recomputes).
    pub dec_ok: bool,
}

/// Inspects a snapshot file: container version plus per-section byte
/// sizes, after a full-validation decode.
pub fn inspect_snapshot(path: &Path) -> Result<SnapshotInfo, PersistError> {
    inspect_snapshot_bytes(&fs::read(path)?)
}

/// [`inspect_snapshot`] over in-memory bytes.
pub fn inspect_snapshot_bytes(bytes: &[u8]) -> Result<SnapshotInfo, PersistError> {
    let snap = snapshot_from_bytes(bytes)?;
    let version = u32::from_le_bytes(
        bytes[SNAPSHOT_MAGIC.len()..SNAPSHOT_MAGIC.len() + 4]
            .try_into()
            .expect("snapshot_from_bytes checked the header"),
    );
    let (graph_bytes, warm_bytes, dec_bytes) = if version >= 3 {
        let h = parse_v3_header(bytes)?;
        (h.graph.len, h.warm.len, h.dec.len)
    } else {
        // v1/v2: sequential `u64 len | payload | u32 CRC` sections, both
        // already validated by the load above.
        let mut r = Reader::new(&bytes[SNAPSHOT_MAGIC.len() + 4..]);
        let glen = r
            .usize_()
            .map_err(|e| PersistError::Format(e.to_string()))?;
        r.bytes(glen + 4)
            .map_err(|e| PersistError::Format(e.to_string()))?;
        let dlen = r.usize_().unwrap_or(0);
        (glen as u64, 0, dlen as u64)
    };
    Ok(SnapshotInfo {
        version,
        name: snap.name,
        delta_seq: snap.delta_seq,
        total_bytes: bytes.len() as u64,
        graph_bytes,
        warm_bytes,
        dec_bytes,
        warm_entries: snap.warm.len(),
        dec_ok: snap.dec.is_ok(),
    })
}

/// All `*.snap` files in `dir`, name-sorted (deterministic boot order).
pub fn scan_snapshots(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().and_then(|x| x.to_str()) == Some("snap")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| !n.starts_with('.'))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// The append-only request journal of a state directory. Lines are
/// buffered in memory per call and appended with a single `write`, so
/// concurrent workers never interleave partial lines.
///
/// With a rotation bound set ([`Journal::open_with_limit`]), an append
/// that would push the file past the bound first renames it to
/// [`rotated_journal_path`] — a single atomic `rename` replacing any
/// previous rotation — and continues in a fresh file. At most two
/// generations exist at any time, so the disk footprint is bounded by
/// roughly twice the limit. [`replay_journals`] replays rotated + current
/// in order.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    max_bytes: Option<u64>,
    file: Mutex<JournalFile>,
}

#[derive(Debug)]
struct JournalFile {
    file: File,
    len: u64,
}

impl Journal {
    /// Opens (creating if needed) the journal of `dir` for appending,
    /// without a rotation bound (the pre-rotation behavior).
    pub fn open(dir: &Path) -> io::Result<Journal> {
        Journal::open_with_limit(dir, None)
    }

    /// Opens the journal of `dir` with an optional rotation bound in
    /// bytes. A bound smaller than one line still works: every append
    /// rotates, keeping exactly the last line in the current file.
    pub fn open_with_limit(dir: &Path, max_bytes: Option<u64>) -> io::Result<Journal> {
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(Journal {
            path,
            max_bytes,
            file: Mutex::new(JournalFile { file, len }),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (a newline is added; `line` must not contain
    /// one — JSON strings escape `\n`, so serialized [`Json`] never does).
    /// Rotates first when the bound would be crossed.
    pub fn append(&self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'));
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let mut inner = self.file.lock_ok();
        if let Some(max) = self.max_bytes {
            if inner.len > 0 && inner.len + buf.len() as u64 > max {
                // Rotate under the lock: the rename and the reopen are one
                // atomic step as far as other appenders are concerned. A
                // crash between them loses no data — the rotated file
                // holds everything written so far, and the next open
                // simply creates a fresh current file.
                fs::rename(&self.path, rotated_journal_path(&self.path))?;
                inner.file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)?;
                inner.len = 0;
            }
        }
        inner.file.write_all(&buf)?;
        inner.len += buf.len() as u64;
        Ok(())
    }
}

/// Where [`Journal::append`] rotates a full journal to: `<journal>.1`
/// next to the current file.
pub fn rotated_journal_path(journal: &Path) -> PathBuf {
    let mut name = journal
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".1");
    journal.with_file_name(name)
}

/// Builds one journal line for a handled `/rank` request.
pub fn journal_line(ts: u64, status: u16, cache: Option<&str>, request: Option<Json>) -> String {
    Json::Obj(vec![
        ("ts".to_string(), Json::from(ts)),
        ("status".to_string(), Json::from(status as u64)),
        ("cache".to_string(), cache.map_or(Json::Null, Json::from)),
        ("request".to_string(), request.unwrap_or(Json::Null)),
    ])
    .to_string()
}

/// A journaled edge delta (`PATCH /graphs/<name>`), decoded from a
/// journal line of the form
/// `{"ts":…,"patch":{"graph":"g","seq":3,"insert":[[0,1]],"delete":[]}}`.
///
/// `seq` is the graph's delta sequence number *after* the patch was
/// applied — the first patch against a fresh upload journals `seq: 1`.
/// Boot replay applies a record only when `seq == entry.delta_seq + 1`,
/// so records already folded into a snapshot are skipped and a gap
/// (records rotated away) is detected instead of silently misapplied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchRecord {
    /// Registry name the delta targets.
    pub graph: String,
    /// Delta sequence number after this patch.
    pub seq: u64,
    /// Edges inserted.
    pub insert: Vec<(u32, u32)>,
    /// Edges deleted.
    pub delete: Vec<(u32, u32)>,
}

fn edges_json(edges: &[(u32, u32)]) -> Json {
    Json::Arr(
        edges
            .iter()
            .map(|&(u, v)| Json::Arr(vec![Json::from(u), Json::from(v)]))
            .collect(),
    )
}

fn edges_from_json(v: &Json) -> Option<Vec<(u32, u32)>> {
    v.as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            match pair {
                [u, v] => Some((u.as_u64()? as u32, v.as_u64()? as u32)),
                _ => None,
            }
        })
        .collect()
}

/// Builds one journal line for an applied `PATCH /graphs/<name>` delta.
pub fn patch_line(ts: u64, record: &PatchRecord) -> String {
    Json::Obj(vec![
        ("ts".to_string(), Json::from(ts)),
        (
            "patch".to_string(),
            Json::Obj(vec![
                ("graph".to_string(), Json::from(record.graph.as_str())),
                ("seq".to_string(), Json::from(record.seq)),
                ("insert".to_string(), edges_json(&record.insert)),
                ("delete".to_string(), edges_json(&record.delete)),
            ]),
        ),
    ])
    .to_string()
}

/// Decodes a parsed journal line into a [`PatchRecord`], or `None` when
/// the line is not a (well-formed) patch record.
pub fn parse_patch_record(record: &Json) -> Option<PatchRecord> {
    let patch = record.get("patch")?;
    Some(PatchRecord {
        graph: patch.get("graph")?.as_str()?.to_string(),
        seq: patch.get("seq")?.as_u64()?,
        insert: edges_from_json(patch.get("insert")?)?,
        delete: edges_from_json(patch.get("delete")?)?,
    })
}

/// Every patch record surviving in the journal history of `dir`, in
/// append order (rotated generation first, then current). Non-patch
/// lines (`/rank` records) and malformed lines are skipped.
pub fn read_patch_records(dir: &Path) -> io::Result<Vec<PatchRecord>> {
    let current = dir.join(JOURNAL_FILE);
    let rotated = rotated_journal_path(&current);
    let mut out = Vec::new();
    for path in [rotated, current] {
        if !path.exists() {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        out.extend(
            text.lines()
                .filter_map(|l| Json::parse(l).ok())
                .filter_map(|v| parse_patch_record(&v)),
        );
    }
    Ok(out)
}

/// Outcome of a journal replay.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Journal lines seen.
    pub lines: usize,
    /// Requests re-issued.
    pub replayed: usize,
    /// Lines skipped (no recorded request body, e.g. rejected requests).
    pub skipped: usize,
    /// Replays whose status differed from the recorded one.
    pub status_mismatches: usize,
}

/// Replays the full journal history of a state directory: the rotated
/// generation (`journal.log.1`, if present) first, then the current
/// `journal.log` — i.e. every surviving record in the order it was
/// appended. Stats are summed across both files.
pub fn replay_journals(dir: &Path, service: &Service) -> io::Result<ReplayStats> {
    let current = dir.join(JOURNAL_FILE);
    let rotated = rotated_journal_path(&current);
    let mut stats = ReplayStats::default();
    for path in [rotated, current] {
        if !path.exists() {
            continue;
        }
        let s = replay_journal(&path, service)?;
        stats.lines += s.lines;
        stats.replayed += s.replayed;
        stats.skipped += s.skipped;
        stats.status_mismatches += s.status_mismatches;
    }
    Ok(stats)
}

/// Replays every recorded `/rank` request in the journal at `path`
/// against `service`, comparing response statuses with the recorded ones.
/// Lines without a `request` object (rejected/unparseable requests) are
/// skipped. The journal is read fully before the first replay, so it is
/// safe to replay a service that journals into the same file.
pub fn replay_journal(path: &Path, service: &Service) -> io::Result<ReplayStats> {
    let text = fs::read_to_string(path)?;
    let mut stats = ReplayStats::default();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        stats.lines += 1;
        let record = match Json::parse(line) {
            Ok(v) => v,
            Err(_) => {
                stats.skipped += 1;
                continue;
            }
        };
        let Some(request) = record.get("request").filter(|r| r.get("graph").is_some()) else {
            stats.skipped += 1;
            continue;
        };
        let req = Request {
            method: "POST".to_string(),
            path: "/rank".to_string(),
            headers: Vec::new(),
            body: request.to_string().into_bytes(),
        };
        let (resp, _) = service.handle(&req);
        stats.replayed += 1;
        let recorded = record.get("status").and_then(Json::as_u64);
        if recorded != Some(resp.status as u64) {
            stats.status_mismatches += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saphyra_graph::fixtures;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("saphyra_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let g = fixtures::grid_graph(4, 4);
        let dec = BcDecomposition::compute(&g);
        let bytes = snapshot_to_bytes("grid", &g, &dec, 0);
        let snap = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(snap.name, "grid");
        assert_eq!(snap.graph.num_nodes(), 16);
        let dec2 = snap.dec.expect("decomposition restores");
        assert_eq!(dec.gamma.to_bits(), dec2.gamma.to_bits());
        assert_eq!(dec.bic.edge_bicomp, dec2.bic.edge_bicomp);
    }

    #[test]
    fn graph_section_corruption_is_fatal() {
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let mut bytes = snapshot_to_bytes("g", &g, &dec, 0);
        // Flip one payload byte inside the graph section (a few bytes
        // past the section's fixed field header).
        bytes[GRAPH_SECTION_OFFSET + GRAPH_FIELDS_BYTES + 3] ^= 0x40;
        let err = snapshot_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Bad magic and bad version are equally fatal.
        let g2 = snapshot_to_bytes("g", &g, &dec, 0);
        let mut bad = g2.clone();
        bad[0] = b'X';
        assert!(snapshot_from_bytes(&bad).is_err());
        let mut bad = g2;
        bad[SNAPSHOT_MAGIC.len()] = 0xFF;
        assert!(snapshot_from_bytes(&bad)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn truncated_sections_error_instead_of_panicking() {
        // A bare header stub (shorter than the reserved page) must yield
        // Err, never a panic — boots load attacker-placeable files.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        wire::put_u32(&mut bytes, SNAPSHOT_VERSION);
        wire::put_usize(&mut bytes, 0);
        let err = snapshot_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Every prefix of a valid snapshot errors cleanly too — cuts
        // through the header, the header padding, and into the graph
        // section's field header and arrays.
        let g = fixtures::grid_graph(3, 3);
        let full = snapshot_to_bytes("g", &g, &BcDecomposition::compute(&g), 0);
        for cut in (0..full.len().min(128))
            .chain(GRAPH_SECTION_OFFSET - 2..full.len().min(GRAPH_SECTION_OFFSET + 200))
        {
            assert!(
                snapshot_from_bytes(&full[..cut]).is_err(),
                "prefix of {cut} bytes parsed as a whole snapshot"
            );
        }
        // The v2 regression that motivated this test: magic + version + a
        // zero section length with NO room for the 4-byte CRC used to
        // slip past the length guard and panic on the CRC read.
        let mut v2 = Vec::new();
        v2.extend_from_slice(&SNAPSHOT_MAGIC);
        wire::put_u32(&mut v2, 2);
        wire::put_usize(&mut v2, 0); // graph section: len 0, no CRC
        let err = snapshot_from_bytes(&v2).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn concurrent_saves_of_the_same_name_do_not_tear() {
        // Regression: a fixed temp-file name let two concurrent saves of
        // one graph interleave into the same temp file and publish a torn
        // snapshot. With unique temp names, whatever save wins the rename,
        // the published file is internally consistent.
        let dir = tmp_dir("race");
        let g = fixtures::grid_graph(4, 4);
        let dec = BcDecomposition::compute(&g);
        let path = snapshot_path(&dir, "g");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        save_snapshot(&path, "g", &g, &dec, 0).unwrap();
                    }
                });
            }
        });
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.name, "g");
        assert!(snap.dec.is_ok());
        // No temp litter survives the stampede.
        let litter: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(litter.is_empty(), "{litter:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dec_section_corruption_degrades_to_recompute() {
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let mut bytes = snapshot_to_bytes("g", &g, &dec, 0);
        // Flip the LAST payload byte — inside the decomposition section.
        let len = bytes.len();
        bytes[len - 5] ^= 0x01;
        let snap = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(snap.name, "g");
        assert_eq!(snap.graph.num_nodes(), 9);
        let reason = snap.dec.unwrap_err();
        assert!(reason.contains("checksum"), "{reason}");
        // Truncating the dec section entirely also degrades.
        let g2 = snapshot_to_bytes("g", &g, &BcDecomposition::compute(&g), 0);
        let truncated = &g2[..g2.len() - 20];
        let snap = snapshot_from_bytes(truncated).unwrap();
        assert!(snap.dec.is_err());
    }

    #[test]
    fn save_is_atomic_and_scan_finds_it() {
        let dir = tmp_dir("atomic");
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let path = snapshot_path(&dir, "grid");
        save_snapshot(&path, "grid", &g, &dec, 0).unwrap();
        // No temp file left behind; the scan sees exactly one snapshot.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file leaked: {leftovers:?}");
        assert_eq!(scan_snapshots(&dir).unwrap(), vec![path.clone()]);
        // Overwriting in place is fine (same atomic path).
        save_snapshot(&path, "grid", &g, &dec, 0).unwrap();
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.name, "grid");
        // A stray dotfile or non-snap file is not scanned.
        fs::write(dir.join(".hidden.snap"), b"junk").unwrap();
        fs::write(dir.join("notes.txt"), b"junk").unwrap();
        assert_eq!(scan_snapshots(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_garbage_after_a_valid_container_is_rejected() {
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let mut bytes = snapshot_to_bytes("g", &g, &dec, 0);
        // Pristine bytes parse; the same bytes plus appended junk do not.
        assert!(snapshot_from_bytes(&bytes).is_ok());
        bytes.extend_from_slice(b"junk");
        let err = snapshot_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        // Two concatenated snapshots are likewise not one snapshot.
        let mut twice = snapshot_to_bytes("g", &g, &dec, 0);
        twice.extend_from_slice(&snapshot_to_bytes("g", &g, &dec, 0));
        assert!(snapshot_from_bytes(&twice).is_err());
    }

    #[test]
    fn journal_rotates_at_the_byte_bound_and_keeps_two_generations() {
        let dir = tmp_dir("rotate");
        // Each line is ~40 bytes; bound at 100 → rotation every 2-3 lines.
        let j = Journal::open_with_limit(&dir, Some(100)).unwrap();
        let current = dir.join(JOURNAL_FILE);
        let rotated = rotated_journal_path(&current);
        for ts in 0..10u64 {
            j.append(&journal_line(ts, 200, Some("miss"), None))
                .unwrap();
        }
        // Both generations exist, neither exceeds the bound, and together
        // they hold a contiguous SUFFIX of the appended lines in order
        // (older lines age out two-generations deep — the bound is the
        // whole point).
        assert!(rotated.exists(), "no rotation happened");
        let cur_len = fs::metadata(&current).unwrap().len();
        let rot_len = fs::metadata(&rotated).unwrap().len();
        assert!(cur_len <= 100, "current grew past the bound: {cur_len}");
        assert!(rot_len <= 100, "rotated grew past the bound: {rot_len}");
        let mut all = fs::read_to_string(&rotated).unwrap();
        all.push_str(&fs::read_to_string(&current).unwrap());
        let ts_seen: Vec<u64> = all
            .lines()
            .map(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("ts")
                    .and_then(Json::as_u64)
                    .unwrap()
            })
            .collect();
        let expect: Vec<u64> = (10 - ts_seen.len() as u64..10).collect();
        assert_eq!(ts_seen, expect, "surviving lines out of order or gapped");
        assert!(ts_seen.len() < 10, "nothing was ever dropped — bound dead?");

        // Reopen mid-history: the length bookkeeping restarts from the
        // on-disk size, so the next rotation still happens on time.
        drop(j);
        let j = Journal::open_with_limit(&dir, Some(100)).unwrap();
        for ts in 10..14u64 {
            j.append(&journal_line(ts, 200, Some("hit"), None)).unwrap();
        }
        assert!(fs::metadata(&current).unwrap().len() <= 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_append_and_replay_honor_a_tiny_bound() {
        // A bound smaller than one line: every append rotates; the system
        // degrades to "remember the last two lines", never an error.
        let dir = tmp_dir("tinybound");
        let j = Journal::open_with_limit(&dir, Some(1)).unwrap();
        for ts in 0..3u64 {
            j.append(&journal_line(ts, 200, None, None)).unwrap();
        }
        let current = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        let rotated = fs::read_to_string(rotated_journal_path(&dir.join(JOURNAL_FILE))).unwrap();
        assert_eq!(current.lines().count(), 1);
        assert_eq!(rotated.lines().count(), 1);
        assert!(current.contains("\"ts\":2"), "{current}");
        assert!(rotated.contains("\"ts\":1"), "{rotated}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_round_trips_delta_seq_and_reads_v1_as_zero() {
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let snap = snapshot_from_bytes(&snapshot_to_bytes("g", &g, &dec, 7)).unwrap();
        assert_eq!(snap.delta_seq, 7);
        assert!(snap.dec.is_ok());

        // Hand-roll a version-1 container: same sections, no delta_seq in
        // the graph payload. It must load with delta_seq = 0 (nothing in
        // the journal predates it).
        let mut v1 = Vec::new();
        v1.extend_from_slice(&SNAPSHOT_MAGIC);
        wire::put_u32(&mut v1, 1);
        let mut graph_payload = Vec::new();
        wire::put_str(&mut graph_payload, "g");
        binio::write_graph(&g, &mut graph_payload);
        put_section(&mut v1, &graph_payload);
        let mut dec_payload = Vec::new();
        bc::write_decomposition(&dec, &mut dec_payload);
        put_section(&mut v1, &dec_payload);
        let snap = snapshot_from_bytes(&v1).unwrap();
        assert_eq!(snap.name, "g");
        assert_eq!(snap.delta_seq, 0);
        assert!(snap.dec.is_ok());

        // A v2 graph section truncated before the delta_seq is an error,
        // not a silent zero.
        let mut short = Vec::new();
        wire::put_str(&mut short, "g");
        binio::write_graph(&g, &mut short); // no delta_seq follows
        let mut bad = Vec::new();
        bad.extend_from_slice(&SNAPSHOT_MAGIC);
        wire::put_u32(&mut bad, 2);
        put_section(&mut bad, &short);
        put_section(&mut bad, &[]);
        let err = snapshot_from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("delta_seq"), "{err}");
    }

    /// Hand-rolls a full version-2 container (the pre-mmap sequential
    /// format this build no longer writes).
    fn v2_container(name: &str, g: &Graph, dec: &BcDecomposition, delta_seq: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        wire::put_u32(&mut out, 2);
        let mut graph_payload = Vec::new();
        wire::put_str(&mut graph_payload, name);
        binio::write_graph(g, &mut graph_payload);
        wire::put_u64(&mut graph_payload, delta_seq);
        put_section(&mut out, &graph_payload);
        let mut dec_payload = Vec::new();
        bc::write_decomposition(dec, &mut dec_payload);
        put_section(&mut out, &dec_payload);
        out
    }

    #[test]
    fn v2_containers_still_load_fully() {
        let g = fixtures::grid_graph(4, 4);
        let dec = BcDecomposition::compute(&g);
        let snap = snapshot_from_bytes(&v2_container("old", &g, &dec, 5)).unwrap();
        assert_eq!(snap.name, "old");
        assert_eq!(snap.delta_seq, 5);
        assert_eq!(snap.graph.num_nodes(), 16);
        assert!(snap.dec.is_ok());
        assert!(snap.warm.is_empty());
        assert!(!snap.mapped);
        // The mapped loader takes the decode path for old containers.
        let dir = tmp_dir("v2compat");
        let path = snapshot_path(&dir, "old");
        fs::write(&path, v2_container("old", &g, &dec, 5)).unwrap();
        let snap = load_snapshot_mapped(&path).unwrap();
        assert!(!snap.mapped);
        assert_eq!(snap.delta_seq, 5);
        assert!(snap.dec.is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mapped_load_serves_the_graph_zero_copy_and_identically() {
        let dir = tmp_dir("mapped");
        let g = fixtures::grid_graph(5, 7);
        let dec = BcDecomposition::compute(&g);
        let path = snapshot_path(&dir, "g");
        save_snapshot(&path, "g", &g, &dec, 4).unwrap();

        let mapped = load_snapshot_mapped(&path).unwrap();
        assert!(mapped.mapped);
        assert!(mapped.graph.is_mapped());
        assert!(mapped.graph.csr_offsets().is_succinct());
        assert_eq!(mapped.name, "g");
        assert_eq!(mapped.delta_seq, 4);
        assert!(mapped.dec.is_ok());

        // Byte-for-byte the same answers as the owned decode path.
        let owned = load_snapshot(&path).unwrap();
        assert!(!owned.mapped);
        assert!(!owned.graph.is_mapped());
        assert_eq!(owned.graph.num_nodes(), mapped.graph.num_nodes());
        assert_eq!(owned.graph.num_edges(), mapped.graph.num_edges());
        for v in owned.graph.nodes() {
            assert_eq!(owned.graph.neighbors(v), mapped.graph.neighbors(v));
            assert_eq!(owned.graph.slot_range(v), mapped.graph.slot_range(v));
        }
        assert_eq!(
            owned.graph.edges().collect::<Vec<_>>(),
            mapped.graph.edges().collect::<Vec<_>>()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_mapped_snapshots_fail_cleanly_or_degrade() {
        // Satellite of the memory tier: truncating a v3 file anywhere
        // must never be UB through the mapped path — the graph either
        // assembles fully validated or the load errors; a cut inside the
        // dec section degrades exactly like the decode path.
        let dir = tmp_dir("mapcut");
        let g = fixtures::grid_graph(4, 4);
        let dec = BcDecomposition::compute(&g);
        let path = snapshot_path(&dir, "g");
        save_snapshot(&path, "g", &g, &dec, 0).unwrap();
        let full = fs::read(&path).unwrap();
        let info = inspect_snapshot_bytes(&full).unwrap();
        let graph_end = GRAPH_SECTION_OFFSET + info.graph_bytes as usize;

        let cut_path = dir.join("cut.snap");
        // Cuts inside header, padding, and graph section: hard error.
        for cut in [0usize, 10, 96, GRAPH_SECTION_OFFSET, graph_end - 8] {
            fs::write(&cut_path, &full[..cut]).unwrap();
            let got = load_snapshot_mapped(&cut_path);
            assert!(got.is_err(), "cut at {cut} loaded: {got:?}");
        }
        // A cut inside the dec section degrades to recompute, still
        // serving the mapped graph.
        let dec_cut = full.len() - 10;
        fs::write(&cut_path, &full[..dec_cut]).unwrap();
        let snap = load_snapshot_mapped(&cut_path).unwrap();
        assert!(snap.mapped, "graph section intact, should still map");
        assert!(snap.dec.is_err());
        assert_eq!(snap.graph.num_nodes(), 16);
        let _ = fs::remove_dir_all(&dir);
    }

    fn warm_fixture() -> Vec<WarmEntry> {
        vec![
            WarmEntry {
                measure: 0,
                targets: vec![1, 2, 3],
                eps_bits: 0.05f64.to_bits(),
                delta_bits: 0.1f64.to_bits(),
                seed: 42,
                khops: 0,
                body: r#"{"scores":[0.5,0.25]}"#.to_string(),
            },
            WarmEntry {
                measure: 1,
                targets: vec![7],
                eps_bits: 0.02f64.to_bits(),
                delta_bits: 0.1f64.to_bits(),
                seed: 7,
                khops: 4,
                body: r#"{"scores":[1.0]}"#.to_string(),
            },
        ]
    }

    #[test]
    fn warm_entries_round_trip_and_damage_degrades_to_empty() {
        let g = fixtures::grid_graph(4, 4);
        let dec = BcDecomposition::compute(&g);
        let warm = warm_fixture();
        let bytes = snapshot_to_bytes_with_warm("g", &g, &dec, 2, &warm);
        let snap = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(snap.warm, warm);
        assert_eq!(snap.delta_seq, 2);

        // Through a file and the mapped path too.
        let dir = tmp_dir("warm");
        let path = snapshot_path(&dir, "g");
        save_snapshot_with_warm(&path, "g", &g, &dec, 2, &warm).unwrap();
        let snap = load_snapshot_mapped(&path).unwrap();
        assert!(snap.mapped);
        assert_eq!(snap.warm, warm);

        // Damage inside the warm section: the load still succeeds, the
        // graph and dec are intact, the warm cache is simply empty.
        let mut bad = fs::read(&path).unwrap();
        let info = inspect_snapshot_bytes(&bad).unwrap();
        assert!(info.warm_bytes > 4);
        let warm_off = GRAPH_SECTION_OFFSET + info.graph_bytes as usize;
        bad[warm_off + 5] ^= 0x10;
        let snap = snapshot_from_bytes(&bad).unwrap();
        assert!(snap.warm.is_empty());
        assert!(snap.dec.is_ok());
        assert_eq!(snap.graph.num_nodes(), 16);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_reports_version_and_section_sizes() {
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let bytes = snapshot_to_bytes_with_warm("g", &g, &dec, 9, &warm_fixture());
        let info = inspect_snapshot_bytes(&bytes).unwrap();
        assert_eq!(info.version, SNAPSHOT_VERSION);
        assert_eq!(info.name, "g");
        assert_eq!(info.delta_seq, 9);
        assert_eq!(info.total_bytes, bytes.len() as u64);
        assert!(info.graph_bytes >= GRAPH_FIELDS_BYTES as u64);
        assert!(info.warm_bytes > 4, "{info:?}");
        assert!(info.dec_bytes > 0);
        assert_eq!(info.warm_entries, 2);
        assert!(info.dec_ok);
        assert_eq!(
            info.total_bytes,
            GRAPH_SECTION_OFFSET as u64 + info.graph_bytes + info.warm_bytes + info.dec_bytes
        );

        // v1 containers report their sequential section sizes.
        let mut v1 = Vec::new();
        v1.extend_from_slice(&SNAPSHOT_MAGIC);
        wire::put_u32(&mut v1, 1);
        let mut graph_payload = Vec::new();
        wire::put_str(&mut graph_payload, "old");
        binio::write_graph(&g, &mut graph_payload);
        put_section(&mut v1, &graph_payload);
        let mut dec_payload = Vec::new();
        bc::write_decomposition(&dec, &mut dec_payload);
        put_section(&mut v1, &dec_payload);
        let info = inspect_snapshot_bytes(&v1).unwrap();
        assert_eq!(info.version, 1);
        assert_eq!(info.name, "old");
        assert_eq!(info.graph_bytes, graph_payload.len() as u64);
        assert_eq!(info.warm_bytes, 0);
        assert_eq!(info.dec_bytes, dec_payload.len() as u64);
        assert_eq!(info.warm_entries, 0);

        // Damage is a verdict, not a panic.
        let mut bad = snapshot_to_bytes("g", &g, &dec, 0);
        bad[GRAPH_SECTION_OFFSET + 100] ^= 0xFF;
        assert!(inspect_snapshot_bytes(&bad).is_err());
    }

    #[test]
    fn compacted_and_plain_graphs_snapshot_identically() {
        // The writer compacts plain offsets on the fly; a pre-compacted
        // graph must serialize to byte-identical snapshots so re-saves
        // never churn.
        let g = fixtures::grid_graph(4, 5);
        let dec = BcDecomposition::compute(&g);
        let mut c = g.clone();
        c.compact();
        assert_eq!(
            snapshot_to_bytes("g", &g, &dec, 1),
            snapshot_to_bytes("g", &c, &dec, 1)
        );
    }

    #[test]
    fn patch_records_round_trip_through_the_journal() {
        let dir = tmp_dir("patchlog");
        let j = Journal::open(&dir).unwrap();
        let rec = PatchRecord {
            graph: "g".to_string(),
            seq: 1,
            insert: vec![(0, 4), (2, 3)],
            delete: vec![(1, 2)],
        };
        // Interleave with rank lines: the scan must pick out only patches.
        j.append(&journal_line(10, 200, Some("miss"), None))
            .unwrap();
        j.append(&patch_line(11, &rec)).unwrap();
        let rec2 = PatchRecord {
            seq: 2,
            insert: vec![],
            delete: vec![(0, 4)],
            ..rec.clone()
        };
        j.append(&patch_line(12, &rec2)).unwrap();
        j.append("not json at all").unwrap();
        let records = read_patch_records(&dir).unwrap();
        assert_eq!(records, vec![rec, rec2]);
        // Malformed patch objects decode to None, not garbage.
        assert!(parse_patch_record(&Json::parse(r#"{"patch":{"graph":"g"}}"#).unwrap()).is_none());
        assert!(parse_patch_record(
            &Json::parse(r#"{"patch":{"graph":"g","seq":1,"insert":[[0]],"delete":[]}}"#).unwrap()
        )
        .is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn patch_records_survive_rotation_in_order() {
        let dir = tmp_dir("patchrot");
        let j = Journal::open_with_limit(&dir, Some(120)).unwrap();
        for seq in 1..=6u64 {
            let rec = PatchRecord {
                graph: "g".to_string(),
                seq,
                insert: vec![(0, seq as u32)],
                delete: vec![],
            };
            j.append(&patch_line(seq, &rec)).unwrap();
        }
        let records = read_patch_records(&dir).unwrap();
        assert!(!records.is_empty());
        // Whatever survived the bound is a contiguous in-order suffix.
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        let expect: Vec<u64> = (7 - seqs.len() as u64..=6).collect();
        assert_eq!(seqs, expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_appends_and_survives_reopen() {
        let dir = tmp_dir("journal");
        let j = Journal::open(&dir).unwrap();
        j.append(&journal_line(1, 200, Some("miss"), None)).unwrap();
        drop(j);
        let j = Journal::open(&dir).unwrap();
        j.append(&journal_line(2, 400, None, None)).unwrap();
        let text = fs::read_to_string(j.path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
        assert!(lines[1].contains("\"status\":400"), "{}", lines[1]);
        let _ = fs::remove_dir_all(&dir);
    }
}
