//! Crash-safe registry persistence: versioned, checksummed binary
//! snapshots of loaded graphs (CSR + full [`BcDecomposition`]) plus an
//! append-only request journal.
//!
//! ## Snapshot format (version 2)
//!
//! ```text
//! magic    8 bytes  b"SAPHSNAP"
//! version  u32      SNAPSHOT_VERSION
//! graph section:    u64 payload length | payload | u32 CRC-32 (IEEE)
//!   payload = name (length-prefixed UTF-8) + Graph (saphyra_graph::binio)
//!             + u64 delta_seq (v2+; v1 payloads end after the graph and
//!             load with delta_seq = 0)
//! dec section:      u64 payload length | payload | u32 CRC-32 (IEEE)
//!   payload = BcDecomposition (saphyra::bc::write_decomposition,
//!             carries its own DEC_FORMAT_VERSION)
//! ```
//!
//! `delta_seq` counts the journaled edge deltas (`PATCH /graphs/<name>`)
//! already folded into the snapshotted graph, so boot replay applies only
//! patch records with `seq > delta_seq` — snapshot + journal suffix
//! reconstructs the live graph with zero re-uploads.
//!
//! All integers little-endian. The two sections are checksummed
//! *independently*: a damaged graph section makes the snapshot unusable
//! (there is nothing to decompose), but a damaged or version-mismatched
//! decomposition section degrades gracefully — the graph is still
//! restored and the caller recomputes the decomposition, trading the
//! startup win for correctness, never a crash.
//!
//! ## Atomic writes
//!
//! [`save_snapshot`] writes to a dot-prefixed temp file in the target
//! directory, `fsync`s it, `rename`s it over the destination, and
//! `fsync`s the directory. A crash at any point leaves either the old
//! snapshot or the new one — never a torn file (a leftover `.tmp` is
//! ignored by the `*.snap` boot scan).
//!
//! ## Journal
//!
//! One JSON line per `/rank` request, appended in a single `write`:
//!
//! ```json
//! {"ts":1722268800,"status":200,"cache":"miss","request":{"graph":"g","targets":[1,2],...}}
//! ```
//!
//! `ts` is unix seconds, `cache` the `X-Saphyra-Cache` disposition
//! (`null` for rejected requests), and `request` the parsed request body
//! re-serialized canonically (`null` when the body was not valid JSON).
//! Because `f64`s serialize with shortest-round-trip precision, replaying
//! a journal line reconstructs the exact request bit pattern —
//! [`replay_journal`] drives the recorded requests back through a
//! [`Service`] and checks the statuses match.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use saphyra::bc::{self, BcDecomposition};
use saphyra_graph::binio;
use saphyra_graph::wire::{self, Reader};
use saphyra_graph::Graph;

use crate::http::Request;
use crate::json::Json;
use crate::server::Service;
use crate::sync::LockExt;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SAPHSNAP";
/// Snapshot container format version. Version 2 added `delta_seq` to the
/// graph section; version-1 files still load (with `delta_seq = 0`).
pub const SNAPSHOT_VERSION: u32 = 2;
/// Oldest snapshot container version this build still reads.
pub const SNAPSHOT_MIN_VERSION: u32 = 1;
/// File name of the append-only request journal inside a state dir.
pub const JOURNAL_FILE: &str = "journal.log";

/// Persistence failure: I/O or format (with context).
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes do not form a valid snapshot.
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Format(m) => write!(f, "invalid snapshot: {m}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn format_err<T>(msg: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError::Format(msg.into()))
}

/// A decoded snapshot. `dec` is `Err(reason)` when only the decomposition
/// section was damaged or version-mismatched: the graph is intact and the
/// caller should recompute (and may overwrite the snapshot).
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// Registry name the snapshot was saved under.
    pub name: String,
    /// The restored graph.
    pub graph: Graph,
    /// The restored decomposition, or the reason it must be recomputed.
    pub dec: Result<BcDecomposition, String>,
    /// How many journaled edge deltas the snapshotted graph already
    /// contains (0 for version-1 snapshots, which predate deltas).
    pub delta_seq: u64,
}

fn put_section(out: &mut Vec<u8>, payload: &[u8]) {
    wire::put_usize(out, payload.len());
    out.extend_from_slice(payload);
    wire::put_u32(out, wire::crc32(payload));
}

fn take_section<'a>(r: &mut Reader<'a>, what: &str) -> Result<&'a [u8], PersistError> {
    let len = r
        .usize_()
        .map_err(|e| PersistError::Format(format!("{what} section length: {e}")))?;
    // The section must hold `len` payload bytes PLUS its 4-byte CRC. The
    // two-sided check matters: with `remaining < 4` a declared length of 0
    // would pass a naive `len > remaining - 4` guard and the CRC read
    // below would fail — a snapshot load must never panic on any input.
    let need = len
        .checked_add(4)
        .filter(|&need| need <= r.remaining())
        .ok_or_else(|| {
            PersistError::Format(format!(
                "{what} section truncated: {len} payload bytes + CRC declared, {} available",
                r.remaining()
            ))
        })?;
    debug_assert!(need <= r.remaining());
    let payload = r.bytes(len).expect("length checked above");
    let stored = r.u32().expect("length checked above");
    let actual = wire::crc32(payload);
    if stored != actual {
        return format_err(format!(
            "{what} section checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        ));
    }
    Ok(payload)
}

/// Serializes one registry entry to snapshot bytes (always the current
/// container version). `delta_seq` is the entry's journaled-delta count —
/// 0 for a fresh upload, `GraphEntry::delta_seq` when re-snapshotting a
/// patched graph.
pub fn snapshot_to_bytes(
    name: &str,
    graph: &Graph,
    dec: &BcDecomposition,
    delta_seq: u64,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    wire::put_u32(&mut out, SNAPSHOT_VERSION);

    let mut graph_payload = Vec::new();
    wire::put_str(&mut graph_payload, name);
    binio::write_graph(graph, &mut graph_payload);
    wire::put_u64(&mut graph_payload, delta_seq);
    put_section(&mut out, &graph_payload);

    let mut dec_payload = Vec::new();
    bc::write_decomposition(dec, &mut dec_payload);
    put_section(&mut out, &dec_payload);
    out
}

/// Decodes snapshot bytes, validating magic, container version and both
/// section checksums. Graph-section damage is fatal; decomposition-section
/// damage degrades to `dec: Err(reason)`.
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<LoadedSnapshot, PersistError> {
    let mut r = Reader::new(bytes);
    let magic = r
        .bytes(SNAPSHOT_MAGIC.len())
        .map_err(|_| PersistError::Format("shorter than the magic header".into()))?;
    if magic != SNAPSHOT_MAGIC {
        return format_err("bad magic (not a saphyra snapshot)");
    }
    let version = r.u32().map_err(|e| PersistError::Format(e.to_string()))?;
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return format_err(format!(
            "snapshot version {version} outside supported {SNAPSHOT_MIN_VERSION}..={SNAPSHOT_VERSION}"
        ));
    }

    let graph_payload = take_section(&mut r, "graph")?;
    let mut gr = Reader::new(graph_payload);
    let name = gr
        .str_()
        .map_err(|e| PersistError::Format(format!("graph name: {e}")))?;
    let graph = binio::read_graph(&mut gr).map_err(|e| PersistError::Format(e.to_string()))?;
    let delta_seq = if version >= 2 {
        gr.u64()
            .map_err(|e| PersistError::Format(format!("graph delta_seq: {e}")))?
    } else {
        0
    };
    if !gr.is_empty() {
        return format_err("trailing bytes in graph section");
    }

    // The decomposition section degrades instead of failing the load.
    let dec = match take_section(&mut r, "decomposition") {
        Err(e) => Err(e.to_string()),
        Ok(payload) => {
            let mut dr = Reader::new(payload);
            match bc::read_decomposition(&mut dr, &graph) {
                Err(e) => Err(e.to_string()),
                Ok(_) if !dr.is_empty() => Err("trailing bytes in decomposition section".into()),
                Ok(dec) => Ok(dec),
            }
        }
    };
    // A v1 container ends exactly after the second section. Trailing bytes
    // after a *well-formed* decomposition section mean the file is not
    // v1 (a concatenation, or a future format with more sections) —
    // reject it rather than silently treating a prefix as the whole
    // snapshot. When the section itself was damaged the reader position
    // is meaningless, so that case keeps degrading to recompute.
    if dec.is_ok() && !r.is_empty() {
        return format_err(format!(
            "{} trailing bytes after the decomposition section",
            r.remaining()
        ));
    }
    Ok(LoadedSnapshot {
        name,
        graph,
        dec,
        delta_seq,
    })
}

/// Writes a snapshot to `path` atomically: dot-prefixed temp file in the
/// same directory, `fsync`, `rename`, `fsync` of the directory. Readers
/// (and crashes) see either the previous file or the complete new one.
/// The temp name is unique per process *and* per call — concurrent saves
/// of the same name must not interleave writes into one temp file, or
/// the winning `rename` could publish a torn mix of both.
pub fn save_snapshot(
    path: &Path,
    name: &str,
    graph: &Graph,
    dec: &BcDecomposition,
    delta_seq: u64,
) -> Result<(), PersistError> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let bytes = snapshot_to_bytes(name, graph, dec, delta_seq);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| PersistError::Format(format!("bad snapshot path {path:?}")))?;
    let tmp_name = format!(
        ".{file_name}.{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let mut f = File::create(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    // Persist the rename itself (the new directory entry).
    if let Some(d) = dir {
        if let Ok(dirf) = File::open(d) {
            let _ = dirf.sync_all();
        }
    }
    Ok(())
}

/// The snapshot path for registry entry `name` inside `dir`.
pub fn snapshot_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.snap"))
}

/// Whether `name` can name a persisted graph: 1-64 chars of
/// `[A-Za-z0-9._-]`, no leading dot. The leading-dot rule is load-bearing
/// for persistence, not cosmetic: snapshots are stored as `<name>.snap`
/// and [`scan_snapshots`] skips dot-prefixed files (that namespace is
/// reserved for atomic-write temp files) — a ".g" graph would persist
/// "successfully" yet silently vanish on the next boot. Both the HTTP
/// `POST /graphs` path and the offline `snapshot save` CLI enforce this.
pub fn valid_graph_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Loads and fully validates one snapshot file.
pub fn load_snapshot(path: &Path) -> Result<LoadedSnapshot, PersistError> {
    snapshot_from_bytes(&fs::read(path)?)
}

/// All `*.snap` files in `dir`, name-sorted (deterministic boot order).
pub fn scan_snapshots(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().and_then(|x| x.to_str()) == Some("snap")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| !n.starts_with('.'))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// The append-only request journal of a state directory. Lines are
/// buffered in memory per call and appended with a single `write`, so
/// concurrent workers never interleave partial lines.
///
/// With a rotation bound set ([`Journal::open_with_limit`]), an append
/// that would push the file past the bound first renames it to
/// [`rotated_journal_path`] — a single atomic `rename` replacing any
/// previous rotation — and continues in a fresh file. At most two
/// generations exist at any time, so the disk footprint is bounded by
/// roughly twice the limit. [`replay_journals`] replays rotated + current
/// in order.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    max_bytes: Option<u64>,
    file: Mutex<JournalFile>,
}

#[derive(Debug)]
struct JournalFile {
    file: File,
    len: u64,
}

impl Journal {
    /// Opens (creating if needed) the journal of `dir` for appending,
    /// without a rotation bound (the pre-rotation behavior).
    pub fn open(dir: &Path) -> io::Result<Journal> {
        Journal::open_with_limit(dir, None)
    }

    /// Opens the journal of `dir` with an optional rotation bound in
    /// bytes. A bound smaller than one line still works: every append
    /// rotates, keeping exactly the last line in the current file.
    pub fn open_with_limit(dir: &Path, max_bytes: Option<u64>) -> io::Result<Journal> {
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(Journal {
            path,
            max_bytes,
            file: Mutex::new(JournalFile { file, len }),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record (a newline is added; `line` must not contain
    /// one — JSON strings escape `\n`, so serialized [`Json`] never does).
    /// Rotates first when the bound would be crossed.
    pub fn append(&self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'));
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        let mut inner = self.file.lock_ok();
        if let Some(max) = self.max_bytes {
            if inner.len > 0 && inner.len + buf.len() as u64 > max {
                // Rotate under the lock: the rename and the reopen are one
                // atomic step as far as other appenders are concerned. A
                // crash between them loses no data — the rotated file
                // holds everything written so far, and the next open
                // simply creates a fresh current file.
                fs::rename(&self.path, rotated_journal_path(&self.path))?;
                inner.file = OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&self.path)?;
                inner.len = 0;
            }
        }
        inner.file.write_all(&buf)?;
        inner.len += buf.len() as u64;
        Ok(())
    }
}

/// Where [`Journal::append`] rotates a full journal to: `<journal>.1`
/// next to the current file.
pub fn rotated_journal_path(journal: &Path) -> PathBuf {
    let mut name = journal
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".1");
    journal.with_file_name(name)
}

/// Builds one journal line for a handled `/rank` request.
pub fn journal_line(ts: u64, status: u16, cache: Option<&str>, request: Option<Json>) -> String {
    Json::Obj(vec![
        ("ts".to_string(), Json::from(ts)),
        ("status".to_string(), Json::from(status as u64)),
        ("cache".to_string(), cache.map_or(Json::Null, Json::from)),
        ("request".to_string(), request.unwrap_or(Json::Null)),
    ])
    .to_string()
}

/// A journaled edge delta (`PATCH /graphs/<name>`), decoded from a
/// journal line of the form
/// `{"ts":…,"patch":{"graph":"g","seq":3,"insert":[[0,1]],"delete":[]}}`.
///
/// `seq` is the graph's delta sequence number *after* the patch was
/// applied — the first patch against a fresh upload journals `seq: 1`.
/// Boot replay applies a record only when `seq == entry.delta_seq + 1`,
/// so records already folded into a snapshot are skipped and a gap
/// (records rotated away) is detected instead of silently misapplied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchRecord {
    /// Registry name the delta targets.
    pub graph: String,
    /// Delta sequence number after this patch.
    pub seq: u64,
    /// Edges inserted.
    pub insert: Vec<(u32, u32)>,
    /// Edges deleted.
    pub delete: Vec<(u32, u32)>,
}

fn edges_json(edges: &[(u32, u32)]) -> Json {
    Json::Arr(
        edges
            .iter()
            .map(|&(u, v)| Json::Arr(vec![Json::from(u), Json::from(v)]))
            .collect(),
    )
}

fn edges_from_json(v: &Json) -> Option<Vec<(u32, u32)>> {
    v.as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            match pair {
                [u, v] => Some((u.as_u64()? as u32, v.as_u64()? as u32)),
                _ => None,
            }
        })
        .collect()
}

/// Builds one journal line for an applied `PATCH /graphs/<name>` delta.
pub fn patch_line(ts: u64, record: &PatchRecord) -> String {
    Json::Obj(vec![
        ("ts".to_string(), Json::from(ts)),
        (
            "patch".to_string(),
            Json::Obj(vec![
                ("graph".to_string(), Json::from(record.graph.as_str())),
                ("seq".to_string(), Json::from(record.seq)),
                ("insert".to_string(), edges_json(&record.insert)),
                ("delete".to_string(), edges_json(&record.delete)),
            ]),
        ),
    ])
    .to_string()
}

/// Decodes a parsed journal line into a [`PatchRecord`], or `None` when
/// the line is not a (well-formed) patch record.
pub fn parse_patch_record(record: &Json) -> Option<PatchRecord> {
    let patch = record.get("patch")?;
    Some(PatchRecord {
        graph: patch.get("graph")?.as_str()?.to_string(),
        seq: patch.get("seq")?.as_u64()?,
        insert: edges_from_json(patch.get("insert")?)?,
        delete: edges_from_json(patch.get("delete")?)?,
    })
}

/// Every patch record surviving in the journal history of `dir`, in
/// append order (rotated generation first, then current). Non-patch
/// lines (`/rank` records) and malformed lines are skipped.
pub fn read_patch_records(dir: &Path) -> io::Result<Vec<PatchRecord>> {
    let current = dir.join(JOURNAL_FILE);
    let rotated = rotated_journal_path(&current);
    let mut out = Vec::new();
    for path in [rotated, current] {
        if !path.exists() {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        out.extend(
            text.lines()
                .filter_map(|l| Json::parse(l).ok())
                .filter_map(|v| parse_patch_record(&v)),
        );
    }
    Ok(out)
}

/// Outcome of a journal replay.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Journal lines seen.
    pub lines: usize,
    /// Requests re-issued.
    pub replayed: usize,
    /// Lines skipped (no recorded request body, e.g. rejected requests).
    pub skipped: usize,
    /// Replays whose status differed from the recorded one.
    pub status_mismatches: usize,
}

/// Replays the full journal history of a state directory: the rotated
/// generation (`journal.log.1`, if present) first, then the current
/// `journal.log` — i.e. every surviving record in the order it was
/// appended. Stats are summed across both files.
pub fn replay_journals(dir: &Path, service: &Service) -> io::Result<ReplayStats> {
    let current = dir.join(JOURNAL_FILE);
    let rotated = rotated_journal_path(&current);
    let mut stats = ReplayStats::default();
    for path in [rotated, current] {
        if !path.exists() {
            continue;
        }
        let s = replay_journal(&path, service)?;
        stats.lines += s.lines;
        stats.replayed += s.replayed;
        stats.skipped += s.skipped;
        stats.status_mismatches += s.status_mismatches;
    }
    Ok(stats)
}

/// Replays every recorded `/rank` request in the journal at `path`
/// against `service`, comparing response statuses with the recorded ones.
/// Lines without a `request` object (rejected/unparseable requests) are
/// skipped. The journal is read fully before the first replay, so it is
/// safe to replay a service that journals into the same file.
pub fn replay_journal(path: &Path, service: &Service) -> io::Result<ReplayStats> {
    let text = fs::read_to_string(path)?;
    let mut stats = ReplayStats::default();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        stats.lines += 1;
        let record = match Json::parse(line) {
            Ok(v) => v,
            Err(_) => {
                stats.skipped += 1;
                continue;
            }
        };
        let Some(request) = record.get("request").filter(|r| r.get("graph").is_some()) else {
            stats.skipped += 1;
            continue;
        };
        let req = Request {
            method: "POST".to_string(),
            path: "/rank".to_string(),
            headers: Vec::new(),
            body: request.to_string().into_bytes(),
        };
        let (resp, _) = service.handle(&req);
        stats.replayed += 1;
        let recorded = record.get("status").and_then(Json::as_u64);
        if recorded != Some(resp.status as u64) {
            stats.status_mismatches += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saphyra_graph::fixtures;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("saphyra_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_bytes_round_trip() {
        let g = fixtures::grid_graph(4, 4);
        let dec = BcDecomposition::compute(&g);
        let bytes = snapshot_to_bytes("grid", &g, &dec, 0);
        let snap = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(snap.name, "grid");
        assert_eq!(snap.graph.num_nodes(), 16);
        let dec2 = snap.dec.expect("decomposition restores");
        assert_eq!(dec.gamma.to_bits(), dec2.gamma.to_bits());
        assert_eq!(dec.bic.edge_bicomp, dec2.bic.edge_bicomp);
    }

    #[test]
    fn graph_section_corruption_is_fatal() {
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let mut bytes = snapshot_to_bytes("g", &g, &dec, 0);
        // Flip one payload byte inside the graph section (right after the
        // magic + version + section length prefix).
        bytes[SNAPSHOT_MAGIC.len() + 4 + 8 + 3] ^= 0x40;
        let err = snapshot_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Bad magic and bad version are equally fatal.
        let g2 = snapshot_to_bytes("g", &g, &dec, 0);
        let mut bad = g2.clone();
        bad[0] = b'X';
        assert!(snapshot_from_bytes(&bad).is_err());
        let mut bad = g2;
        bad[SNAPSHOT_MAGIC.len()] = 0xFF;
        assert!(snapshot_from_bytes(&bad)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn truncated_sections_error_instead_of_panicking() {
        // Regression: magic + version + a zero section length with NO room
        // for the 4-byte CRC used to slip past the length guard and panic
        // on the CRC read. Any truncation point must yield Err, never a
        // panic — boots load attacker-placeable files.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        wire::put_u32(&mut bytes, SNAPSHOT_VERSION);
        wire::put_usize(&mut bytes, 0); // graph section: len 0, no CRC
        let err = snapshot_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Every prefix of a valid snapshot errors cleanly too.
        let g = fixtures::grid_graph(3, 3);
        let full = snapshot_to_bytes("g", &g, &BcDecomposition::compute(&g), 0);
        for cut in 0..full.len().min(64) {
            let _ = snapshot_from_bytes(&full[..cut]); // must not panic
        }
    }

    #[test]
    fn concurrent_saves_of_the_same_name_do_not_tear() {
        // Regression: a fixed temp-file name let two concurrent saves of
        // one graph interleave into the same temp file and publish a torn
        // snapshot. With unique temp names, whatever save wins the rename,
        // the published file is internally consistent.
        let dir = tmp_dir("race");
        let g = fixtures::grid_graph(4, 4);
        let dec = BcDecomposition::compute(&g);
        let path = snapshot_path(&dir, "g");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..8 {
                        save_snapshot(&path, "g", &g, &dec, 0).unwrap();
                    }
                });
            }
        });
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.name, "g");
        assert!(snap.dec.is_ok());
        // No temp litter survives the stampede.
        let litter: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(litter.is_empty(), "{litter:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dec_section_corruption_degrades_to_recompute() {
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let mut bytes = snapshot_to_bytes("g", &g, &dec, 0);
        // Flip the LAST payload byte — inside the decomposition section.
        let len = bytes.len();
        bytes[len - 5] ^= 0x01;
        let snap = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(snap.name, "g");
        assert_eq!(snap.graph.num_nodes(), 9);
        let reason = snap.dec.unwrap_err();
        assert!(reason.contains("checksum"), "{reason}");
        // Truncating the dec section entirely also degrades.
        let g2 = snapshot_to_bytes("g", &g, &BcDecomposition::compute(&g), 0);
        let truncated = &g2[..g2.len() - 20];
        let snap = snapshot_from_bytes(truncated).unwrap();
        assert!(snap.dec.is_err());
    }

    #[test]
    fn save_is_atomic_and_scan_finds_it() {
        let dir = tmp_dir("atomic");
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let path = snapshot_path(&dir, "grid");
        save_snapshot(&path, "grid", &g, &dec, 0).unwrap();
        // No temp file left behind; the scan sees exactly one snapshot.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file leaked: {leftovers:?}");
        assert_eq!(scan_snapshots(&dir).unwrap(), vec![path.clone()]);
        // Overwriting in place is fine (same atomic path).
        save_snapshot(&path, "grid", &g, &dec, 0).unwrap();
        let snap = load_snapshot(&path).unwrap();
        assert_eq!(snap.name, "grid");
        // A stray dotfile or non-snap file is not scanned.
        fs::write(dir.join(".hidden.snap"), b"junk").unwrap();
        fs::write(dir.join("notes.txt"), b"junk").unwrap();
        assert_eq!(scan_snapshots(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn trailing_garbage_after_a_valid_container_is_rejected() {
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let mut bytes = snapshot_to_bytes("g", &g, &dec, 0);
        // Pristine bytes parse; the same bytes plus appended junk do not.
        assert!(snapshot_from_bytes(&bytes).is_ok());
        bytes.extend_from_slice(b"junk");
        let err = snapshot_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        // Two concatenated snapshots are likewise not one snapshot.
        let mut twice = snapshot_to_bytes("g", &g, &dec, 0);
        twice.extend_from_slice(&snapshot_to_bytes("g", &g, &dec, 0));
        assert!(snapshot_from_bytes(&twice).is_err());
    }

    #[test]
    fn journal_rotates_at_the_byte_bound_and_keeps_two_generations() {
        let dir = tmp_dir("rotate");
        // Each line is ~40 bytes; bound at 100 → rotation every 2-3 lines.
        let j = Journal::open_with_limit(&dir, Some(100)).unwrap();
        let current = dir.join(JOURNAL_FILE);
        let rotated = rotated_journal_path(&current);
        for ts in 0..10u64 {
            j.append(&journal_line(ts, 200, Some("miss"), None))
                .unwrap();
        }
        // Both generations exist, neither exceeds the bound, and together
        // they hold a contiguous SUFFIX of the appended lines in order
        // (older lines age out two-generations deep — the bound is the
        // whole point).
        assert!(rotated.exists(), "no rotation happened");
        let cur_len = fs::metadata(&current).unwrap().len();
        let rot_len = fs::metadata(&rotated).unwrap().len();
        assert!(cur_len <= 100, "current grew past the bound: {cur_len}");
        assert!(rot_len <= 100, "rotated grew past the bound: {rot_len}");
        let mut all = fs::read_to_string(&rotated).unwrap();
        all.push_str(&fs::read_to_string(&current).unwrap());
        let ts_seen: Vec<u64> = all
            .lines()
            .map(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("ts")
                    .and_then(Json::as_u64)
                    .unwrap()
            })
            .collect();
        let expect: Vec<u64> = (10 - ts_seen.len() as u64..10).collect();
        assert_eq!(ts_seen, expect, "surviving lines out of order or gapped");
        assert!(ts_seen.len() < 10, "nothing was ever dropped — bound dead?");

        // Reopen mid-history: the length bookkeeping restarts from the
        // on-disk size, so the next rotation still happens on time.
        drop(j);
        let j = Journal::open_with_limit(&dir, Some(100)).unwrap();
        for ts in 10..14u64 {
            j.append(&journal_line(ts, 200, Some("hit"), None)).unwrap();
        }
        assert!(fs::metadata(&current).unwrap().len() <= 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_append_and_replay_honor_a_tiny_bound() {
        // A bound smaller than one line: every append rotates; the system
        // degrades to "remember the last two lines", never an error.
        let dir = tmp_dir("tinybound");
        let j = Journal::open_with_limit(&dir, Some(1)).unwrap();
        for ts in 0..3u64 {
            j.append(&journal_line(ts, 200, None, None)).unwrap();
        }
        let current = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
        let rotated = fs::read_to_string(rotated_journal_path(&dir.join(JOURNAL_FILE))).unwrap();
        assert_eq!(current.lines().count(), 1);
        assert_eq!(rotated.lines().count(), 1);
        assert!(current.contains("\"ts\":2"), "{current}");
        assert!(rotated.contains("\"ts\":1"), "{rotated}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_round_trips_delta_seq_and_reads_v1_as_zero() {
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let snap = snapshot_from_bytes(&snapshot_to_bytes("g", &g, &dec, 7)).unwrap();
        assert_eq!(snap.delta_seq, 7);
        assert!(snap.dec.is_ok());

        // Hand-roll a version-1 container: same sections, no delta_seq in
        // the graph payload. It must load with delta_seq = 0 (nothing in
        // the journal predates it).
        let mut v1 = Vec::new();
        v1.extend_from_slice(&SNAPSHOT_MAGIC);
        wire::put_u32(&mut v1, 1);
        let mut graph_payload = Vec::new();
        wire::put_str(&mut graph_payload, "g");
        binio::write_graph(&g, &mut graph_payload);
        put_section(&mut v1, &graph_payload);
        let mut dec_payload = Vec::new();
        bc::write_decomposition(&dec, &mut dec_payload);
        put_section(&mut v1, &dec_payload);
        let snap = snapshot_from_bytes(&v1).unwrap();
        assert_eq!(snap.name, "g");
        assert_eq!(snap.delta_seq, 0);
        assert!(snap.dec.is_ok());

        // A v2 graph section truncated before the delta_seq is an error,
        // not a silent zero.
        let bytes = snapshot_to_bytes("g", &g, &dec, 3);
        let mut r = Reader::new(&bytes[SNAPSHOT_MAGIC.len() + 4..]);
        let payload = take_section(&mut r, "graph").unwrap();
        let short = &payload[..payload.len() - 8];
        let mut bad = Vec::new();
        bad.extend_from_slice(&SNAPSHOT_MAGIC);
        wire::put_u32(&mut bad, SNAPSHOT_VERSION);
        put_section(&mut bad, short);
        put_section(&mut bad, &[]);
        let err = snapshot_from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("delta_seq"), "{err}");
    }

    #[test]
    fn patch_records_round_trip_through_the_journal() {
        let dir = tmp_dir("patchlog");
        let j = Journal::open(&dir).unwrap();
        let rec = PatchRecord {
            graph: "g".to_string(),
            seq: 1,
            insert: vec![(0, 4), (2, 3)],
            delete: vec![(1, 2)],
        };
        // Interleave with rank lines: the scan must pick out only patches.
        j.append(&journal_line(10, 200, Some("miss"), None))
            .unwrap();
        j.append(&patch_line(11, &rec)).unwrap();
        let rec2 = PatchRecord {
            seq: 2,
            insert: vec![],
            delete: vec![(0, 4)],
            ..rec.clone()
        };
        j.append(&patch_line(12, &rec2)).unwrap();
        j.append("not json at all").unwrap();
        let records = read_patch_records(&dir).unwrap();
        assert_eq!(records, vec![rec, rec2]);
        // Malformed patch objects decode to None, not garbage.
        assert!(parse_patch_record(&Json::parse(r#"{"patch":{"graph":"g"}}"#).unwrap()).is_none());
        assert!(parse_patch_record(
            &Json::parse(r#"{"patch":{"graph":"g","seq":1,"insert":[[0]],"delete":[]}}"#).unwrap()
        )
        .is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn patch_records_survive_rotation_in_order() {
        let dir = tmp_dir("patchrot");
        let j = Journal::open_with_limit(&dir, Some(120)).unwrap();
        for seq in 1..=6u64 {
            let rec = PatchRecord {
                graph: "g".to_string(),
                seq,
                insert: vec![(0, seq as u32)],
                delete: vec![],
            };
            j.append(&patch_line(seq, &rec)).unwrap();
        }
        let records = read_patch_records(&dir).unwrap();
        assert!(!records.is_empty());
        // Whatever survived the bound is a contiguous in-order suffix.
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        let expect: Vec<u64> = (7 - seqs.len() as u64..=6).collect();
        assert_eq!(seqs, expect);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_appends_and_survives_reopen() {
        let dir = tmp_dir("journal");
        let j = Journal::open(&dir).unwrap();
        j.append(&journal_line(1, 200, Some("miss"), None)).unwrap();
        drop(j);
        let j = Journal::open(&dir).unwrap();
        j.append(&journal_line(2, 400, None, None)).unwrap();
        let text = fs::read_to_string(j.path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"cache\":\"miss\""), "{}", lines[0]);
        assert!(lines[1].contains("\"status\":400"), "{}", lines[1]);
        let _ = fs::remove_dir_all(&dir);
    }
}
