//! Poison-tolerant lock helpers for the request path.
//!
//! A panic while holding a `Mutex` poisons it; the default
//! `.lock().unwrap()` then panics in *every other thread* that touches the
//! lock, so one bad request could take down the whole compute pool. These
//! extension methods recover instead:
//!
//! * [`LockExt::lock_ok`] — recover the guard via
//!   `PoisonError::into_inner`. Correct for structures whose invariants
//!   hold between individual operations (maps of `Arc`s, slot options,
//!   condvar-paired state): a panic can interrupt a *sequence* of our
//!   updates, but each container operation is internally complete.
//! * [`LockExt::lock_repair`] — recover and run a repair closure on the
//!   data first. For structures with multi-step internal invariants (the
//!   LRU cache updates two internal maps per touch), dropping the state is
//!   the only safe recovery; losing a cache is just cold misses.
//! * [`RwLockExt::read_ok`] / [`RwLockExt::write_ok`] — same recovery for
//!   `RwLock` (the graph registry).
//! * [`CondvarExt::wait_ok`] — same recovery around a condvar wait.
//!
//! `saphyra-check`'s lock-order lint recognizes these method names as
//! acquisitions, so converting a site keeps it in the nesting analysis.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub trait LockExt<T> {
    /// Locks, recovering the guard from a poisoned mutex as-is.
    fn lock_ok(&self) -> MutexGuard<'_, T>;
    /// Locks; on poison, runs `repair` on the data before returning it.
    fn lock_repair(&self, repair: impl FnOnce(&mut T)) -> MutexGuard<'_, T>;
}

impl<T> LockExt<T> for Mutex<T> {
    fn lock_ok(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_repair(&self, repair: impl FnOnce(&mut T)) -> MutexGuard<'_, T> {
        match self.lock() {
            Ok(g) => g,
            Err(e) => {
                let mut g = e.into_inner();
                repair(&mut g);
                // The data is consistent again; clear the flag so later
                // `lock()` callers (e.g. tests) see a healthy mutex.
                self.clear_poison();
                g
            }
        }
    }
}

pub trait RwLockExt<T> {
    fn read_ok(&self) -> RwLockReadGuard<'_, T>;
    fn write_ok(&self) -> RwLockWriteGuard<'_, T>;
}

impl<T> RwLockExt<T> for RwLock<T> {
    fn read_ok(&self) -> RwLockReadGuard<'_, T> {
        self.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_ok(&self) -> RwLockWriteGuard<'_, T> {
        self.write().unwrap_or_else(|e| e.into_inner())
    }
}

pub trait CondvarExt {
    /// Waits on the condvar, recovering the guard if the mutex was
    /// poisoned while we slept.
    fn wait_ok<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T>;
}

impl CondvarExt for Condvar {
    fn wait_ok<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait(guard).unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    fn poison<T: Send + 'static>(m: &Arc<Mutex<T>>) {
        let m2 = Arc::clone(m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
    }

    #[test]
    fn lock_ok_recovers_data() {
        let m = Arc::new(Mutex::new(41));
        poison(&m);
        *m.lock_ok() += 1;
        assert_eq!(*m.lock_ok(), 42);
    }

    #[test]
    fn lock_repair_runs_fix_and_clears_poison() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        poison(&m);
        assert!(m.lock_repair(|v| v.clear()).is_empty());
        assert!(!m.is_poisoned(), "repair clears the poison flag");
        // A healthy mutex is repaired by... nothing; data is untouched.
        m.lock_ok().push(9);
        assert_eq!(*m.lock_repair(|v| v.clear()), vec![9]);
    }

    #[test]
    fn rwlock_recovery() {
        let l = Arc::new(RwLock::new(7));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*l.read_ok(), 7);
        *l.write_ok() += 1;
        assert_eq!(*l.read_ok(), 8);
    }

    #[test]
    fn condvar_wait_survives_poison() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock_ok();
            while !*ready {
                ready = cv.wait_ok(ready);
            }
            true
        });
        let p3 = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let (m, _cv) = &*p3;
            let _g = m.lock().unwrap();
            panic!("poison while waiter sleeps");
        })
        .join();
        {
            let (m, cv) = &*pair;
            *m.lock_ok() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }
}
