//! # saphyra_service
//!
//! A long-lived HTTP/1.1 JSON ranking service over the SaPHyRa engine —
//! std-only (an `epoll`-driven reactor plus a request-bounded compute
//! pool; the `epoll`/`poll(2)` bindings in [`reactor`] are direct
//! `extern "C"` declarations against the libc std already links, so
//! there are no external dependencies, matching the offline build
//! environment).
//!
//! ## Endpoints
//!
//! | Method | Path        | Body |
//! |--------|-------------|------|
//! | GET    | `/healthz`  | — (status, graph count, request/cache counters) |
//! | GET    | `/graphs`   | — (loaded graphs, name-sorted) |
//! | POST   | `/graphs`   | `{"name", "path"}` or `{"name", "network", "size"?, "seed"?}` |
//! | POST   | `/rank`     | `{"graph", "targets", "measure"?, "eps"?, "delta"?, "seed"?, "khops"?}` |
//! | POST   | `/shutdown` | — (graceful stop) |
//! | POST   | `/shard/exec` | internal (shard role): binary sampling round → partial accumulators |
//!
//! ## Roles
//!
//! [`ServiceConfig::role`] selects the node's place in a sharded
//! deployment: `Standalone` (default) serves everything locally; `Shard`
//! additionally answers the internal `/shard/exec` endpoint; `Router`
//! places whole graphs on shards (crc32 of the name) and proxies their
//! requests, or — for `"split": true` loads — loads the graph everywhere
//! and drives each `/rank`'s sampling rounds across all shards via
//! [`shard::ShardedExec`], merging partial accumulators so the response
//! bytes match a standalone server exactly. See [`shard`] for the wire
//! protocol and the determinism contract.
//!
//! Loading a graph builds its [`saphyra::bc::BcDecomposition`] — bicomps,
//! block-cut tree, out-reach/ISP tables, bcₐ, γ, VC-bound precomputation —
//! **once**; the entry is then shared `Arc`-style across every worker.
//! Completed rankings are cached (LRU) keyed by the full request tuple
//! `(graph, measure, targets, eps, delta, seed, khops)`, so repeated
//! queries are O(1) and replay byte-identical bodies. Identical requests
//! racing a cold cache collapse behind one in-flight computation
//! (single-flight), and cold requests that differ **only in their target
//! set** coalesce into one shared sample stream during a short gather
//! window ([`ServiceConfig::batch_window`]): one pass over the sample
//! blocks scores every in-flight query's targets, with each member's body
//! bit-identical to a quiet-server run. The `X-Saphyra-Cache` header
//! reports `hit`, `miss`, `shared`, or `batched`; `/healthz` counts
//! `batched` members and total `sample_passes`.
//!
//! ## Connections
//!
//! Connections are persistent (HTTP/1.1 keep-alive) and owned by a
//! single reactor thread; **workers bound requests, not connections**,
//! so parked idle clients cost the compute pool nothing and
//! [`ServiceConfig::workers`] sizes to CPU. Requests pipeline up to
//! [`ServiceConfig::pipeline_depth`] per connection with responses
//! always in request order; [`http::Client`] keeps one pooled
//! connection (and [`http::Client::pipeline`] batches requests over
//! it), which keeps the TCP setup cost off the cache-hit path. The
//! server honors `Connection: close`, closes connections idle past
//! [`ServiceConfig::idle_timeout`] (via a timer wheel — no polling),
//! recycles a connection after
//! [`ServiceConfig::max_requests_per_conn`] requests, and sheds
//! connections beyond [`ServiceConfig::max_connections`].
//!
//! ## Persistence
//!
//! With [`ServiceConfig::state_dir`] set, the registry survives restarts:
//! every graph load writes a versioned, checksummed binary snapshot
//! (graph + full decomposition, written atomically via temp + fsync +
//! rename), boots restore all snapshots with **zero** recomputation
//! (`/healthz` reports `decompositions` / `snapshots_loaded`), and every
//! `/rank` request appends one JSON line to an append-only journal that
//! [`persist::replay_journal`] can re-issue. Damaged snapshots degrade
//! (recompute or skip, with a warning) — they never fail a boot. See
//! [`persist`] for the format.
//!
//! ## Determinism
//!
//! For a fixed request, the `/rank` response body is byte-identical
//! regardless of worker count, rayon thread count, or cache state — the
//! PR 1 engine-level determinism contract extended across the wire, and
//! across restarts: a snapshot-restored decomposition is bit-identical
//! to the one that was saved. See [`server`] for the mechanics.
//!
//! ## Quick start
//!
//! ```
//! use saphyra_service::http::Client;
//! use saphyra_service::registry::GraphEntry;
//! use saphyra_service::server::{serve_with, Service, ServiceConfig};
//! use std::sync::Arc;
//!
//! let cfg = ServiceConfig { workers: 2, cache_capacity: 16, ..Default::default() };
//! let service = Arc::new(Service::new(cfg));
//! service.registry().insert(GraphEntry::build(
//!     "grid",
//!     saphyra_graph::fixtures::grid_graph(4, 4),
//! ));
//! let handle = serve_with("127.0.0.1:0", service).unwrap();
//! let mut client = Client::new(handle.addr().to_string());
//! // Both requests ride the same pooled TCP connection.
//! assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
//! assert_eq!(client.request("GET", "/graphs", None).unwrap().status, 200);
//! drop(client);
//! handle.shutdown_and_join();
//! ```

pub mod cache;
pub mod http;
pub mod json;
pub mod persist;
pub mod reactor;
pub mod registry;
pub mod server;
pub mod shard;
pub mod sync;

pub use http::{request, Client, ClientResponse};
pub use registry::{GraphEntry, Registry};
pub use server::{serve, serve_with, Role, ServerHandle, Service, ServiceConfig};
