//! Event-loop primitives for the service runtime: readiness polling over
//! direct `epoll(7)` bindings (std already links libc, so the `extern
//! "C"` declarations below resolve without any new dependency), a
//! portable `poll(2)` fallback behind the same [`Poller`] trait, a
//! self-pipe [`WakePipe`] for cross-thread wakeups, and a hashed
//! [`TimerWheel`] for idle-timeout bookkeeping.
//!
//! Nothing in this module knows about HTTP or the service; it is the
//! substrate `server`'s reactor thread is built on. The design goal is
//! that **nothing in the connection path ever sleeps on a poll interval**:
//! the reactor blocks in `epoll_wait`/`poll` until a socket is ready, a
//! worker finishes a request (waking it through the pipe), or the next
//! timer-wheel slot with armed timers comes due.

use std::io;
use std::os::unix::io::RawFd;
use std::time::{Duration, Instant};

#[allow(non_camel_case_types)]
type c_int = i32;

// nfds_t is `unsigned long` on Linux (pointer-width, so 32 bits on
// armv7/i686 — declaring it u64 there would shift every later argument
// in the poll(2) call) and `unsigned int` elsewhere.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
#[allow(non_camel_case_types)]
type nfds_t = u64;
#[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
#[allow(non_camel_case_types)]
type nfds_t = u32;

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x1;
const POLLOUT: i16 = 0x4;
const POLLERR: i16 = 0x8;
const POLLHUP: i16 = 0x10;

extern "C" {
    fn close(fd: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn poll(fds: *mut PollFd, nfds: nfds_t, timeout: c_int) -> c_int;
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x4;

fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl on an owned fd with valid GETFL/SETFL arguments.
    unsafe {
        let flags = fcntl(fd, F_GETFL, 0);
        if flags < 0 {
            return Err(io::Error::last_os_error());
        }
        if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
            return Err(io::Error::last_os_error());
        }
    }
    Ok(())
}

/// One readiness event: the registered `token` plus what the fd is ready
/// for. `hangup` covers both error and hang-up conditions — the caller
/// should read (observing EOF/error) or drop the connection.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Token the fd was registered under.
    pub token: u64,
    /// Readable (or a peer close is observable via a 0-byte read).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hang-up condition.
    pub hangup: bool,
}

/// Readiness-polling backend. Level-triggered semantics on both
/// implementations: an fd that stays ready keeps reporting until the
/// condition (unread bytes, writable space) is consumed.
pub trait Poller: Send {
    /// Starts watching `fd` under `token`.
    fn register(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool)
        -> io::Result<()>;
    /// Updates the interest set of a registered fd.
    fn modify(&mut self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()>;
    /// Stops watching `fd`. Must be called before the fd is closed.
    fn deregister(&mut self, fd: RawFd) -> io::Result<()>;
    /// Blocks until at least one fd is ready or `timeout` elapses
    /// (`None` = wait forever), filling `events` (cleared first).
    fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<()>;
    /// Backend name, for logs/tests.
    fn name(&self) -> &'static str;
}

/// Ceil a duration to whole milliseconds for `epoll_wait`/`poll`
/// timeouts; flooring would busy-spin on sub-millisecond remainders.
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_nanos().div_ceil(1_000_000);
            ms.min(i32::MAX as u128) as c_int
        }
    }
}

// ---------------------------------------------------------------------------
// epoll backend (Linux)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod epoll {
    use super::*;

    // The kernel packs epoll_event on x86-64 only.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;

    /// `epoll`-backed [`Poller`].
    pub struct EpollPoller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl EpollPoller {
        /// Creates the epoll instance.
        pub fn new() -> io::Result<EpollPoller> {
            // SAFETY: plain syscall; the fd is owned by the struct.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(EpollPoller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: if r { EPOLLIN } else { 0 } | if w { EPOLLOUT } else { 0 },
                data: token,
            };
            // SAFETY: epfd and fd are live; ev outlives the call.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            // SAFETY: closing the owned epoll fd.
            unsafe { close(self.epfd) };
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, r, w)
        }

        fn modify(&mut self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, r, w)
        }

        fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<()> {
            events.clear();
            let n = loop {
                // SAFETY: buf is a live, correctly-sized epoll_event array.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms(timeout),
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
                // EINTR: retry with the same timeout (slight oversleep is
                // harmless; timers re-check deadlines against the clock).
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                events.push(Event {
                    token: ev.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }

        fn name(&self) -> &'static str {
            "epoll"
        }
    }
}

#[cfg(target_os = "linux")]
pub use epoll::EpollPoller;

// ---------------------------------------------------------------------------
// poll(2) fallback (portable)
// ---------------------------------------------------------------------------

/// `poll(2)`-backed [`Poller`]: O(n) per wait, kept for portability (and
/// as a cross-check that the reactor only relies on the trait contract).
pub struct PollPoller {
    entries: Vec<(RawFd, u64, bool, bool)>,
    fds: Vec<PollFd>,
}

impl PollPoller {
    /// Creates the (stateless) poll backend.
    pub fn new() -> PollPoller {
        PollPoller {
            entries: Vec::new(),
            fds: Vec::new(),
        }
    }

    fn position(&self, fd: RawFd) -> Option<usize> {
        self.entries.iter().position(|&(f, ..)| f == fd)
    }
}

impl Default for PollPoller {
    fn default() -> Self {
        PollPoller::new()
    }
}

impl Poller for PollPoller {
    fn register(&mut self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
        if self.position(fd).is_some() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.entries.push((fd, token, r, w));
        Ok(())
    }

    fn modify(&mut self, fd: RawFd, token: u64, r: bool, w: bool) -> io::Result<()> {
        let i = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries[i] = (fd, token, r, w);
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self
            .position(fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.entries.swap_remove(i);
        Ok(())
    }

    fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<()> {
        events.clear();
        self.fds.clear();
        for &(fd, _, r, w) in &self.entries {
            self.fds.push(PollFd {
                fd,
                events: if r { POLLIN } else { 0 } | if w { POLLOUT } else { 0 },
                revents: 0,
            });
        }
        let n = loop {
            // SAFETY: fds is a live pollfd array of entries.len() slots.
            let rc = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as nfds_t,
                    timeout_ms(timeout),
                )
            };
            if rc >= 0 {
                break rc;
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        };
        if n == 0 {
            return Ok(());
        }
        for (pfd, &(_, token, ..)) in self.fds.iter().zip(&self.entries) {
            let bits = pfd.revents;
            if bits == 0 {
                continue;
            }
            events.push(Event {
                token,
                readable: bits & POLLIN != 0,
                writable: bits & POLLOUT != 0,
                hangup: bits & (POLLERR | POLLHUP) != 0,
            });
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "poll"
    }
}

/// The best poller for this platform: `epoll` on Linux (falling back to
/// `poll(2)` if the epoll fd cannot be created — e.g. an exotic sandbox
/// seccomp profile), `poll(2)` elsewhere. `SAPHYRA_FORCE_POLL=1` forces
/// the fallback, which is how CI exercises both backends on one kernel.
pub fn new_poller() -> Box<dyn Poller> {
    if std::env::var_os("SAPHYRA_FORCE_POLL").is_some_and(|v| v == "1") {
        return Box::new(PollPoller::new());
    }
    #[cfg(target_os = "linux")]
    {
        if let Ok(p) = EpollPoller::new() {
            return Box::new(p);
        }
    }
    Box::new(PollPoller::new())
}

// ---------------------------------------------------------------------------
// Self-pipe waker
// ---------------------------------------------------------------------------

/// A nonblocking self-pipe: any thread can [`WakePipe::wake`] the reactor
/// out of its blocking wait by writing one byte; the reactor registers
/// [`WakePipe::read_fd`] and [`WakePipe::drain`]s it on wakeup. This is
/// what makes shutdown and worker-completion delivery event-driven — no
/// timed re-check loop anywhere.
#[derive(Debug)]
pub struct WakePipe {
    r: RawFd,
    w: RawFd,
}

// SAFETY: both raw fds are owned exclusively by this struct for its whole
// lifetime (closed only in Drop), so sending it to another thread just
// transfers descriptor ownership with it.
unsafe impl Send for WakePipe {}
// SAFETY: the only operations through a shared reference are write() on the
// nonblocking write end (wake) and read() on the read end (drain); concurrent
// single-byte pipe writes are atomic, and drain tolerates any interleaving.
unsafe impl Sync for WakePipe {}

impl WakePipe {
    /// Creates the pipe with both ends nonblocking.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: pipe() fills the two-slot array on success.
        if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
            return Err(io::Error::last_os_error());
        }
        let (r, w) = (fds[0], fds[1]);
        let nb = set_nonblocking_fd(r).and_then(|()| set_nonblocking_fd(w));
        if let Err(e) = nb {
            // SAFETY: closing the just-created fds on the error path.
            unsafe {
                close(r);
                close(w);
            }
            return Err(e);
        }
        Ok(WakePipe { r, w })
    }

    /// The readable end, for poller registration.
    pub fn read_fd(&self) -> RawFd {
        self.r
    }

    /// Wakes the reactor. Lossy by design: if the pipe buffer is full the
    /// reactor already has a pending wakeup, so dropping the byte is fine.
    pub fn wake(&self) {
        let buf = [1u8];
        // SAFETY: writing one byte from a live buffer to an owned fd.
        unsafe {
            let _ = write(self.w, buf.as_ptr(), 1);
        }
    }

    /// Drains every buffered wake byte (call once per reactor wakeup).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a live buffer from an owned fd.
            let n = unsafe { read(self.r, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: closing the owned fds exactly once.
        unsafe {
            close(self.r);
            close(self.w);
        }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// An armed timer: fires `(token, gen)` back to the caller. `gen` lets
/// the reactor discard entries for connections that died (or were slain
/// and their slot reused) between arming and firing — the wheel never
/// needs explicit cancellation.
#[derive(Debug, Clone, Copy)]
struct TimerEntry {
    token: u64,
    gen: u64,
    tick: u64,
}

/// A hashed timer wheel: `slots` buckets of `tick` width. Arming is O(1),
/// expiry is O(entries due); deadlines beyond one full rotation wrap and
/// are re-examined when their slot comes around again (at the default
/// tick that is minutes away — idle timeouts never wrap in practice).
#[derive(Debug)]
pub struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    tick: Duration,
    start: Instant,
    /// First tick index not yet processed by [`TimerWheel::expire`].
    cursor: u64,
    len: usize,
}

impl TimerWheel {
    /// A wheel of `slots` buckets, each `tick` wide. `tick` is clamped to
    /// ≥ 1 ms (sub-millisecond poll timeouts round to a busy spin).
    pub fn new(tick: Duration, slots: usize) -> TimerWheel {
        TimerWheel {
            slots: vec![Vec::new(); slots.max(2)],
            tick: tick.max(Duration::from_millis(1)),
            start: Instant::now(),
            cursor: 0,
            len: 0,
        }
    }

    fn tick_index(&self, at: Instant) -> u64 {
        let dt = at.saturating_duration_since(self.start);
        (dt.as_nanos() / self.tick.as_nanos()) as u64
    }

    /// Arms a timer firing no earlier than `at`.
    pub fn schedule(&mut self, token: u64, gen: u64, at: Instant) {
        // Ceil to the next tick boundary so the timer never fires early,
        // and never behind the cursor (it would be skipped for a full
        // rotation).
        let tick = (self.tick_index(at) + 1).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(TimerEntry { token, gen, tick });
        self.len += 1;
    }

    /// How long the reactor may sleep before the next armed slot comes
    /// due. `None` when no timers are armed (sleep until an fd or wake
    /// event). May be early for wrapped entries — a spurious wakeup
    /// expires nothing and re-arms, it never fires a timer early.
    pub fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let n = self.slots.len() as u64;
        let due = (self.cursor..self.cursor + n)
            .find(|t| !self.slots[(t % n) as usize].is_empty())
            .expect("len > 0 implies a non-empty slot");
        // Stay in u64 nanoseconds: `self.tick * (due as u32)` would wrap
        // the tick counter after ~2^32 ticks (49.7 days at a 1 ms tick),
        // computing fire_at in the past and degrading every wait into a
        // 1 ms busy-wake loop.
        let fire_at = self.start
            + Duration::from_nanos((self.tick.as_nanos() as u64).saturating_mul(due + 1));
        Some(
            fire_at
                .saturating_duration_since(now)
                .max(Duration::from_millis(1)),
        )
    }

    /// Collects every `(token, gen)` whose deadline has passed into
    /// `out`, leaving wrapped entries filed for a later rotation.
    pub fn expire(&mut self, now: Instant, out: &mut Vec<(u64, u64)>) {
        let now_tick = self.tick_index(now);
        if self.cursor > now_tick {
            return;
        }
        let n = self.slots.len() as u64;
        // Visit each slot at most once however long the reactor slept: a
        // span of a full rotation or more covers every slot, and a due
        // entry (tick <= now_tick) can only live in a slot of its own
        // tick range, all of which the sweep hits.
        let span = (now_tick - self.cursor + 1).min(n);
        for k in 0..span {
            let slot = ((self.cursor + k) % n) as usize;
            let entries = &mut self.slots[slot];
            let before = entries.len();
            entries.retain(|e| {
                if e.tick <= now_tick {
                    out.push((e.token, e.gen));
                    false
                } else {
                    true
                }
            });
            self.len -= before - entries.len();
        }
        self.cursor = now_tick + 1;
    }

    /// Armed timer count (stale entries included until they fire).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poller_smoke(mut p: Box<dyn Poller>) {
        let pipe = WakePipe::new().unwrap();
        p.register(pipe.read_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();

        // Nothing ready: a short wait times out empty.
        p.wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "{}: spurious event", p.name());

        // A wake byte makes the read end readable.
        pipe.wake();
        p.wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert_eq!(events.len(), 1, "{}", p.name());
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: still readable until drained.
        p.wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert_eq!(events.len(), 1, "{}: not level-triggered", p.name());
        pipe.drain();
        p.wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "{}: drain did not clear", p.name());

        // Interest updates and deregistration are honored.
        pipe.wake();
        p.modify(pipe.read_fd(), 7, false, false).unwrap();
        p.wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "{}: modify ignored", p.name());
        p.deregister(pipe.read_fd()).unwrap();
        p.wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn poll_backend_reports_readiness() {
        poller_smoke(Box::new(PollPoller::new()));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_reports_readiness() {
        poller_smoke(Box::new(EpollPoller::new().unwrap()));
    }

    #[test]
    fn wake_pipe_is_lossy_but_never_blocks() {
        let pipe = WakePipe::new().unwrap();
        // Far more wakes than the pipe buffer holds: must not block.
        for _ in 0..100_000 {
            pipe.wake();
        }
        pipe.drain();
        let mut p = PollPoller::new();
        p.register(pipe.read_fd(), 1, true, false).unwrap();
        let mut events = Vec::new();
        p.wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "drain left bytes behind");
    }

    #[test]
    fn timer_wheel_fires_in_order_and_not_early() {
        let mut wheel = TimerWheel::new(Duration::from_millis(5), 16);
        let now = Instant::now();
        wheel.schedule(1, 10, now + Duration::from_millis(20));
        wheel.schedule(2, 20, now + Duration::from_millis(60));
        assert_eq!(wheel.len(), 2);

        let mut fired = Vec::new();
        wheel.expire(now, &mut fired);
        assert!(fired.is_empty(), "fired early: {fired:?}");

        // Past the first deadline (plus a tick of slack) only #1 fires.
        wheel.expire(now + Duration::from_millis(30), &mut fired);
        assert_eq!(fired, vec![(1, 10)]);

        fired.clear();
        wheel.expire(now + Duration::from_millis(80), &mut fired);
        assert_eq!(fired, vec![(2, 20)]);
        assert!(wheel.is_empty());
        assert!(wheel.next_wakeup(now).is_none());
    }

    #[test]
    fn timer_wheel_handles_wrapping_deadlines() {
        // 8 slots x 5ms = one 40ms rotation; a 100ms deadline wraps more
        // than twice and must still fire only after its real deadline.
        let mut wheel = TimerWheel::new(Duration::from_millis(5), 8);
        let now = Instant::now();
        wheel.schedule(9, 1, now + Duration::from_millis(100));
        let mut fired = Vec::new();
        for ms in [10u64, 40, 70, 99] {
            wheel.expire(now + Duration::from_millis(ms), &mut fired);
            assert!(fired.is_empty(), "wrapped entry fired early at {ms}ms");
        }
        wheel.expire(now + Duration::from_millis(120), &mut fired);
        assert_eq!(fired, vec![(9, 1)]);
    }

    #[test]
    fn timer_wheel_survives_long_sleeps() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 4);
        let now = Instant::now();
        wheel.schedule(1, 1, now + Duration::from_millis(2));
        let mut fired = Vec::new();
        // A sleep of many whole rotations must expire everything due in
        // one bounded sweep (regression guard for the cursor jump).
        wheel.expire(now + Duration::from_secs(10), &mut fired);
        assert_eq!(fired, vec![(1, 1)]);
        // And scheduling still works afterwards.
        wheel.schedule(2, 2, now + Duration::from_secs(11));
        fired.clear();
        wheel.expire(now + Duration::from_secs(12), &mut fired);
        assert_eq!(fired, vec![(2, 2)]);
    }

    #[test]
    fn next_wakeup_tracks_earliest_armed_slot() {
        let mut wheel = TimerWheel::new(Duration::from_millis(10), 32);
        let now = Instant::now();
        assert!(wheel.next_wakeup(now).is_none());
        wheel.schedule(1, 1, now + Duration::from_millis(200));
        let sleep = wheel.next_wakeup(now).unwrap();
        // Must cover the deadline (no early fire) without sleeping the
        // whole rotation.
        assert!(sleep >= Duration::from_millis(190), "{sleep:?}");
        assert!(sleep <= Duration::from_millis(230), "{sleep:?}");
    }
}
