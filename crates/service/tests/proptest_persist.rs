//! Property: for any graph, `Graph → snapshot bytes → Graph +
//! BcDecomposition` is bit-identical — a service entry restored from a
//! snapshot serves byte-identical `/rank` responses to one freshly
//! decomposed, for the same seed.

use proptest::prelude::*;
use saphyra::bc::BcDecomposition;
use saphyra_graph::{Graph, GraphBuilder};
use saphyra_service::http::Request;
use saphyra_service::persist;
use saphyra_service::registry::GraphEntry;
use saphyra_service::server::{Service, ServiceConfig};

/// Strategy: a random simple graph with 2..=20 nodes (mixes connected,
/// disconnected and edgeless shapes).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=20).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.max(1))
            .prop_map(move |edges| GraphBuilder::new(n).edges(edges).build().unwrap())
    })
}

fn rank_response(entry: GraphEntry, body: &str) -> String {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        cache_capacity: 4,
        ..ServiceConfig::default()
    });
    svc.registry().insert(entry);
    let (resp, _) = svc.handle(&Request {
        method: "POST".to_string(),
        path: "/rank".to_string(),
        headers: Vec::new(),
        body: body.as_bytes().to_vec(),
    });
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    resp.body_str().to_string()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn snapshot_round_trip_preserves_rank_bytes(g in arb_graph(), seed in 0u64..1000) {
        // Fresh decomposition and its snapshot-restored twin.
        let dec = BcDecomposition::compute(&g);
        let bytes = persist::snapshot_to_bytes("p", &g, &dec, 0);
        let snap = persist::snapshot_from_bytes(&bytes).unwrap();
        prop_assert_eq!(&snap.name, "p");
        let dec2 = snap.dec.expect("intact snapshot restores");

        // Bit-identity of the decomposition itself.
        prop_assert_eq!(&dec.bic.edge_bicomp, &dec2.bic.edge_bicomp);
        prop_assert_eq!(&dec.outreach.r, &dec2.outreach.r);
        prop_assert_eq!(dec.gamma.to_bits(), dec2.gamma.to_bits());
        let bca: Vec<u64> = dec.bca.iter().map(|x| x.to_bits()).collect();
        let bca2: Vec<u64> = dec2.bca.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(bca, bca2);

        // Byte-identity of the wire responses computed from each.
        let n = g.num_nodes() as u32;
        let targets: Vec<u32> = if n >= 4 { vec![0, n / 2, n - 1] } else { vec![0, n - 1] };
        let targets_json: Vec<String> = targets.iter().map(|t| t.to_string()).collect();
        let body = format!(
            r#"{{"graph":"p","targets":[{}],"eps":0.3,"delta":0.1,"seed":{seed}}}"#,
            targets_json.join(",")
        );
        let fresh = rank_response(GraphEntry::from_parts("p", snap.graph, dec), &body);
        let restored = rank_response(GraphEntry::from_parts("p", g, dec2), &body);
        prop_assert_eq!(fresh, restored, "restored entry ranked differently");
    }
}
