//! End-to-end registry-persistence tests: restart from snapshots with
//! *zero* recomputation, graceful degradation on damaged snapshot
//! sections, journal appending and replay — all over real TCP sockets.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use saphyra_service::http::request;
use saphyra_service::json::Json;
use saphyra_service::persist;
use saphyra_service::server::{serve, Service, ServiceConfig};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh per-test state directory.
fn state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "saphyra_persist_e2e_{tag}_{}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg_with(dir: &std::path::Path) -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        cache_capacity: 16,
        state_dir: Some(dir.to_path_buf()),
        ..ServiceConfig::default()
    }
}

const RANK_BODY: &str =
    r#"{"graph":"g","targets":[1,5,9,13],"measure":"bc","eps":0.15,"delta":0.1,"seed":42}"#;

fn health(addr: &str) -> Json {
    let resp = request(addr, "GET", "/healthz", None).unwrap();
    Json::parse(&resp.body).unwrap()
}

fn counter(h: &Json, key: &str) -> u64 {
    h.get(key).and_then(Json::as_u64).unwrap()
}

#[test]
fn restart_from_snapshot_is_byte_identical_with_zero_decompositions() {
    let dir = state_dir("restart");

    // First life: load a graph (decomposing it once), rank, shut down.
    let first_body;
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        let resp = request(
            &addr,
            "POST",
            "/graphs",
            Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("persisted").unwrap().as_bool(), Some(true));

        let resp = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        first_body = resp.body;

        let h = health(&addr);
        assert_eq!(counter(&h, "decompositions"), 1);
        assert_eq!(counter(&h, "snapshots_loaded"), 0);
        handle.shutdown_and_join();
    }
    assert!(persist::snapshot_path(&dir, "g").exists());

    // Second life: the registry must come back from the snapshot alone —
    // zero decompositions — and serve byte-identical rank responses.
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        let h = health(&addr);
        assert_eq!(counter(&h, "graphs"), 1, "snapshot not restored");
        assert_eq!(
            counter(&h, "decompositions"),
            0,
            "restart recomputed a decomposition"
        );
        assert_eq!(counter(&h, "snapshots_loaded"), 1);

        let resp = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        // Fresh process, fresh cache: this is a cold computation from the
        // restored decomposition, not a replayed cache entry.
        assert_eq!(resp.header("x-saphyra-cache"), Some("miss"));
        assert_eq!(
            resp.body, first_body,
            "restored decomposition ranked differently"
        );
        // Ranking used the restored entry; still no decomposition ran.
        assert_eq!(counter(&health(&addr), "decompositions"), 0);
        handle.shutdown_and_join();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn damaged_dec_section_recomputes_and_still_serves() {
    let dir = state_dir("dec_corrupt");
    let baseline;
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        request(
            &addr,
            "POST",
            "/graphs",
            Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
        )
        .unwrap();
        baseline = request(&addr, "POST", "/rank", Some(RANK_BODY))
            .unwrap()
            .body;
        handle.shutdown_and_join();
    }

    // Flip a byte inside the decomposition payload (5 bytes from the end:
    // past the payload start, before the trailing 4-byte CRC).
    let path = persist::snapshot_path(&dir, "g");
    let mut bytes = fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 5] ^= 0x01;
    fs::write(&path, bytes).unwrap();

    let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
    let addr = handle.addr().to_string();
    let h = health(&addr);
    assert_eq!(counter(&h, "graphs"), 1, "graph must survive dec damage");
    assert_eq!(counter(&h, "decompositions"), 1, "fallback must recompute");
    assert_eq!(counter(&h, "snapshots_loaded"), 0);
    // The recomputed decomposition is identical math: same bytes out.
    let resp = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.body, baseline);
    handle.shutdown_and_join();

    // Self-healing: the fallback rewrote the repaired snapshot, so the
    // NEXT boot restores with zero recomputation again.
    assert!(persist::load_snapshot(&path).unwrap().dec.is_ok());
    let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
    let addr = handle.addr().to_string();
    let h = health(&addr);
    assert_eq!(counter(&h, "decompositions"), 0, "repair did not stick");
    assert_eq!(counter(&h, "snapshots_loaded"), 1);
    handle.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_with_mismatched_embedded_name_cannot_shadow_the_real_one() {
    let dir = state_dir("shadow");
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        request(
            &addr,
            "POST",
            "/graphs",
            Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
        )
        .unwrap();
        handle.shutdown_and_join();
    }
    // Forge a later-sorting snapshot whose EMBEDDED name is also "g" but
    // holds a different graph: by scan order it would replace the genuine
    // g.snap in the registry if embedded names were trusted.
    let decoy_graph = saphyra_graph::fixtures::grid_graph(3, 3);
    let decoy_dec = saphyra::bc::BcDecomposition::compute(&decoy_graph);
    persist::save_snapshot(
        &persist::snapshot_path(&dir, "zz"),
        "g",
        &decoy_graph,
        &decoy_dec,
        0,
    )
    .unwrap();

    let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
    let addr = handle.addr().to_string();
    let h = health(&addr);
    assert_eq!(counter(&h, "graphs"), 1, "decoy must be skipped, g kept");
    let resp = request(&addr, "GET", "/graphs", None).unwrap();
    let v = Json::parse(&resp.body).unwrap();
    let graphs = v.get("graphs").unwrap().as_arr().unwrap();
    assert_eq!(graphs[0].get("name").unwrap().as_str(), Some("g"));
    // The real flickr-tiny graph (600 nodes), not the 9-node decoy.
    assert_eq!(graphs[0].get("nodes").unwrap().as_u64(), Some(600));
    handle.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn read_only_state_dir_still_restores_snapshots() {
    let dir = state_dir("readonly");
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        request(
            &addr,
            "POST",
            "/graphs",
            Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
        )
        .unwrap();
        handle.shutdown_and_join();
    }
    // Strip the write bit: the journal cannot open, but the snapshots are
    // still readable — a boot must restore them, not start empty.
    let mut perms = fs::metadata(&dir).unwrap().permissions();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        perms.set_mode(0o555);
        fs::set_permissions(&dir, perms.clone()).unwrap();
    }
    let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
    let addr = handle.addr().to_string();
    let h = health(&addr);
    assert_eq!(counter(&h, "graphs"), 1, "read-only dir lost the registry");
    assert_eq!(counter(&h, "snapshots_loaded"), 1);
    assert_eq!(counter(&h, "decompositions"), 0);
    let resp = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    handle.shutdown_and_join();
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        perms.set_mode(0o755);
        fs::set_permissions(&dir, perms).unwrap();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn damaged_graph_section_is_skipped_not_fatal() {
    let dir = state_dir("graph_corrupt");
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        request(
            &addr,
            "POST",
            "/graphs",
            Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
        )
        .unwrap();
        handle.shutdown_and_join();
    }

    // Corrupt the graph section (just past magic + version + length).
    let path = persist::snapshot_path(&dir, "g");
    let mut bytes = fs::read(&path).unwrap();
    bytes[25] ^= 0xFF;
    fs::write(&path, bytes).unwrap();

    // The boot survives; the snapshot is just skipped.
    let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
    let addr = handle.addr().to_string();
    let h = health(&addr);
    assert_eq!(counter(&h, "graphs"), 0, "damaged snapshot must be skipped");
    assert_eq!(counter(&h, "snapshots_loaded"), 0);
    // The server still works: loading the graph again overwrites the
    // damaged snapshot with a good one.
    let resp = request(
        &addr,
        "POST",
        "/graphs",
        Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
    )
    .unwrap();
    assert_eq!(resp.status, 200);
    handle.shutdown_and_join();
    assert!(persist::load_snapshot(&path).unwrap().dec.is_ok());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journal_records_requests_and_replays_cleanly() {
    let dir = state_dir("journal");
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        request(
            &addr,
            "POST",
            "/graphs",
            Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
        )
        .unwrap();
        // Two distinct rankings, one repeat (cache hit), one rejected.
        for body in [
            RANK_BODY,
            r#"{"graph":"g","targets":[2,3],"eps":0.2,"delta":0.1,"seed":7}"#,
            RANK_BODY,
        ] {
            assert_eq!(
                request(&addr, "POST", "/rank", Some(body)).unwrap().status,
                200
            );
        }
        let resp = request(
            &addr,
            "POST",
            "/rank",
            Some(r#"{"graph":"nope","targets":[1]}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 404);
        handle.shutdown_and_join();
    }

    // Journal shape: one line per /rank request, cache disposition kept.
    let journal = dir.join(persist::JOURNAL_FILE);
    let text = fs::read_to_string(&journal).unwrap();
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), 4, "{text}");
    let cache_of = |i: usize| lines[i].get("cache").unwrap().as_str().map(String::from);
    assert_eq!(cache_of(0).as_deref(), Some("miss"));
    assert_eq!(cache_of(1).as_deref(), Some("miss"));
    assert_eq!(cache_of(2).as_deref(), Some("hit"));
    assert_eq!(lines[3].get("cache"), Some(&Json::Null));
    assert_eq!(lines[3].get("status").unwrap().as_u64(), Some(404));
    assert_eq!(
        lines[0]
            .get("request")
            .unwrap()
            .get("graph")
            .unwrap()
            .as_str(),
        Some("g")
    );

    // Replay against a journal-less service restored from the snapshots:
    // every recorded request (including the 404) reproduces its status.
    let service = Service::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let (restored, recomputed) = service.restore_from_dir(&dir);
    assert_eq!((restored, recomputed), (1, 0));
    let stats = persist::replay_journal(&journal, &service).unwrap();
    assert_eq!(stats.lines, 4);
    assert_eq!(stats.replayed, 4);
    assert_eq!(stats.skipped, 0);
    assert_eq!(stats.status_mismatches, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn journal_rotates_mid_stream_and_replay_covers_both_generations() {
    let dir = state_dir("rotation");
    // A bound of ~3 journal lines (each /rank line here is ~150 bytes):
    // the request stream below must cross it mid-stream.
    let cfg = ServiceConfig {
        journal_max_bytes: Some(512),
        ..cfg_with(&dir)
    };
    let handle = serve("127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr().to_string();
    let resp = request(
        &addr,
        "POST",
        "/graphs",
        Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    // 10 distinct rank requests; every one is journaled.
    for seed in 0..10u64 {
        let body =
            format!(r#"{{"graph":"g","targets":[1,5,9],"eps":0.2,"delta":0.1,"seed":{seed}}}"#);
        let resp = request(&addr, "POST", "/rank", Some(&body)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    handle.shutdown_and_join();

    // Rotation happened mid-stream: both generations exist, the current
    // file respects the bound, and the combined tail is contiguous.
    let current = dir.join(persist::JOURNAL_FILE);
    let rotated = persist::rotated_journal_path(&current);
    assert!(rotated.exists(), "journal never rotated");
    assert!(fs::metadata(&current).unwrap().len() <= 512);
    assert!(fs::metadata(&rotated).unwrap().len() <= 512);
    let mut all = fs::read_to_string(&rotated).unwrap();
    all.push_str(&fs::read_to_string(&current).unwrap());
    let seeds: Vec<u64> = all
        .lines()
        .map(|l| {
            Json::parse(l)
                .unwrap()
                .get("request")
                .unwrap()
                .get("seed")
                .and_then(Json::as_u64)
                .unwrap()
        })
        .collect();
    assert!(!seeds.is_empty() && seeds.len() < 10, "{seeds:?}");
    let expect: Vec<u64> = (10 - seeds.len() as u64..10).collect();
    assert_eq!(seeds, expect, "rotated+current must be the ordered tail");

    // replay_journals walks rotated then current, in order, cleanly.
    let service = Service::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let (restored, recomputed) = service.restore_from_dir(&dir);
    assert_eq!((restored, recomputed), (1, 0));
    let stats = persist::replay_journals(&dir, &service).unwrap();
    assert_eq!(stats.replayed, seeds.len());
    assert_eq!(stats.status_mismatches, 0, "{stats:?}");
}

#[test]
fn concurrent_same_name_loads_leave_disk_and_memory_agreeing() {
    // Regression: snapshot write and registry insert used to be unordered
    // across loaders — thread A's snapshot could land last on disk while
    // thread B's entry landed last in memory, so a restart would silently
    // restore a different graph than the one being served.
    use saphyra_service::http::Request;
    let dir = state_dir("publish_race");
    let svc = Service::new(cfg_with(&dir));
    std::thread::scope(|scope| {
        for seed in 0..8u64 {
            let svc = &svc;
            scope.spawn(move || {
                let body =
                    format!(r#"{{"name":"g","network":"flickr","size":"tiny","seed":{seed}}}"#);
                let (resp, _) = svc.handle(&Request {
                    method: "POST".to_string(),
                    path: "/graphs".to_string(),
                    headers: Vec::new(),
                    body: body.into_bytes(),
                });
                assert_eq!(resp.status, 200, "{}", resp.body_str());
            });
        }
    });
    // Whatever interleaving happened, the snapshot on disk and the entry
    // in memory must describe the same graph.
    let snap = persist::load_snapshot(&persist::snapshot_path(&dir, "g")).unwrap();
    let entry = svc.registry().get("g").unwrap();
    let edges = |g: &saphyra_graph::Graph| {
        let mut buf = Vec::new();
        saphyra_graph::io::write_edge_list(g, &mut buf).unwrap();
        buf
    };
    assert_eq!(
        edges(&snap.graph),
        edges(&entry.graph),
        "disk and memory diverged under concurrent same-name loads"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// The delta-journaling read path: journaled `PATCH` deltas replay on
/// restart from the snapshot alone — zero re-uploads, zero full
/// decompositions — and the replayed graph ranks byte-identically to the
/// patched graph the first life served.
#[test]
fn patched_graphs_survive_restart_via_journal_replay() {
    let dir = state_dir("patch_replay");
    let post_patch_body;
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        let resp = request(
            &addr,
            "POST",
            "/graphs",
            Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);

        // Two patches, well under the default re-snapshot cadence (16):
        // the snapshot on disk stays at seq 0, the journal carries both.
        let resp = request(
            &addr,
            "PATCH",
            "/graphs/g",
            Some(r#"{"insert":[[0,7],[3,11]]}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("delta_seq").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("journaled").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("persisted"), None, "seq 1 must not re-snapshot yet");
        let resp = request(&addr, "PATCH", "/graphs/g", Some(r#"{"delete":[[0,7]]}"#)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("delta_seq").unwrap().as_u64(), Some(2));

        let resp = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        post_patch_body = resp.body;
        handle.shutdown_and_join();
    }
    assert_eq!(persist::read_patch_records(&dir).unwrap().len(), 2);
    assert_eq!(
        persist::load_snapshot(&persist::snapshot_path(&dir, "g"))
            .unwrap()
            .delta_seq,
        0
    );

    // Second life: snapshot restores the upload-time graph, patch replay
    // walks it to seq 2. No POST /graphs, no full decomposition.
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        let h = health(&addr);
        assert_eq!(counter(&h, "graphs"), 1);
        assert_eq!(counter(&h, "snapshots_loaded"), 1);
        assert_eq!(
            counter(&h, "decompositions"),
            0,
            "replay must be incremental"
        );
        assert_eq!(counter(&h, "patches_replayed"), 2);

        let resp = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(resp.header("x-saphyra-cache"), Some("miss"));
        assert_eq!(
            resp.body, post_patch_body,
            "replayed deltas ranked differently from the patched first life"
        );
        // The replayed entry continues the sequence, not restarts it.
        let resp = request(&addr, "PATCH", "/graphs/g", Some(r#"{"delete":[[3,11]]}"#)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("delta_seq").unwrap().as_u64(), Some(3));
        handle.shutdown_and_join();
    }
    let _ = fs::remove_dir_all(&dir);
}

/// With `resnapshot_deltas = 1` every patch folds into the snapshot, so a
/// restart restores the patched graph directly and replays nothing — the
/// journal records are recognized as already contained (`seq <= delta_seq`).
#[test]
fn resnapshot_folds_deltas_so_replay_skips_them() {
    let dir = state_dir("resnap");
    let cfg = ServiceConfig {
        resnapshot_deltas: 1,
        ..cfg_with(&dir)
    };
    {
        let handle = serve("127.0.0.1:0", cfg.clone()).unwrap();
        let addr = handle.addr().to_string();
        request(
            &addr,
            "POST",
            "/graphs",
            Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
        )
        .unwrap();
        let resp = request(
            &addr,
            "PATCH",
            "/graphs/g",
            Some(r#"{"insert":[[0,7],[3,11]]}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("journaled").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("persisted").unwrap().as_bool(), Some(true));
        handle.shutdown_and_join();
    }
    // The snapshot itself now sits at seq 1...
    let snap = persist::load_snapshot(&persist::snapshot_path(&dir, "g")).unwrap();
    assert_eq!(snap.delta_seq, 1);
    // ...so the boot replays zero of the (still present) patch records.
    assert_eq!(persist::read_patch_records(&dir).unwrap().len(), 1);
    let handle = serve("127.0.0.1:0", cfg).unwrap();
    let addr = handle.addr().to_string();
    let h = health(&addr);
    assert_eq!(counter(&h, "graphs"), 1);
    assert_eq!(counter(&h, "snapshots_loaded"), 1);
    assert_eq!(counter(&h, "patches_replayed"), 0);
    handle.shutdown_and_join();
    let _ = fs::remove_dir_all(&dir);
}

/// The warm-cache region: a graceful `POST /shutdown` persists the
/// hottest cached bodies into the snapshot's warm section; the next boot
/// re-inserts them under the restored entry's fresh epoch and answers the
/// same requests as cache hits — byte-identical, zero recomputation —
/// accounted in `/healthz` as `warm_hits`. On unix the restored graph
/// also serves zero-copy from the mapped snapshot (`mmap_graphs`).
#[test]
fn warm_section_round_trips_hot_responses_across_restart() {
    let dir = state_dir("warm");
    let first_body;
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        let resp = request(
            &addr,
            "POST",
            "/graphs",
            Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let resp = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        first_body = resp.body;
        // Graceful shutdown through the HTTP route: this is the path that
        // flushes warm-enriched snapshots before the server goes down.
        let resp = request(&addr, "POST", "/shutdown", None).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        let v = Json::parse(&resp.body).unwrap();
        assert_eq!(v.get("warm_snapshots").unwrap().as_u64(), Some(1));
        handle.join();
    }
    let snap = persist::load_snapshot(&persist::snapshot_path(&dir, "g")).unwrap();
    assert_eq!(snap.warm.len(), 1, "hot body missing from the warm section");

    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        let resp = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(
            resp.header("x-saphyra-cache"),
            Some("hit"),
            "restart did not answer from the warm section"
        );
        assert_eq!(resp.body, first_body, "warm body diverged across restart");
        let h = health(&addr);
        assert_eq!(counter(&h, "warm_hits"), 1);
        assert_eq!(counter(&h, "computations"), 0, "warm hit still recomputed");
        if cfg!(unix) {
            assert!(
                counter(&h, "mmap_graphs") >= 1,
                "v3 snapshot did not restore zero-copy: {h}"
            );
            assert!(counter(&h, "resident_graph_bytes") > 0);
        }
        handle.shutdown_and_join();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restart_mints_fresh_epochs_for_restored_entries() {
    let dir = state_dir("epochs");
    {
        let handle = serve("127.0.0.1:0", cfg_with(&dir)).unwrap();
        let addr = handle.addr().to_string();
        request(
            &addr,
            "POST",
            "/graphs",
            Some(r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#),
        )
        .unwrap();
        handle.shutdown_and_join();
    }
    // Two services restored from the same snapshot in one process: their
    // entries must not share an epoch (epochs are never persisted).
    let restore = || {
        let s = Service::new(ServiceConfig::default());
        s.restore_from_dir(&dir);
        s.registry().get("g").unwrap().epoch
    };
    let (a, b) = (restore(), restore());
    assert_ne!(a, b, "restored entries reused a persisted epoch");
    let _ = fs::remove_dir_all(&dir);
}
