//! Sharded serving e2e (in-process processes-worth of servers on real
//! sockets): a router driving split graphs across shard backends must
//! serve `/rank` bodies byte-identical to a standalone server, survive
//! idle-timeout disconnects between rounds, and degrade to clean 503s —
//! never hangs — when a shard dies.

use std::sync::Arc;
use std::time::Duration;

use saphyra_service::http::{Client, Request};
use saphyra_service::server::{serve_with, Role, ServerHandle, Service, ServiceConfig};

fn start(role: Role, shards: Vec<String>, idle: Duration) -> ServerHandle {
    let cfg = ServiceConfig {
        workers: 2,
        cache_capacity: 32,
        idle_timeout: idle,
        role,
        shards,
        ..ServiceConfig::default()
    };
    serve_with("127.0.0.1:0", Arc::new(Service::new(cfg))).expect("bind ephemeral port")
}

const IDLE: Duration = Duration::from_secs(10);

/// Router + `n` shards, all on ephemeral ports.
fn start_cluster(n: usize, idle: Duration) -> (ServerHandle, Vec<ServerHandle>) {
    let shards: Vec<ServerHandle> = (0..n)
        .map(|_| start(Role::Shard, Vec::new(), idle))
        .collect();
    let addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();
    let router = start(Role::Router, addrs, idle);
    (router, shards)
}

const LOAD: &str = r#"{"name":"g","network":"flickr","size":"tiny","seed":7}"#;
const LOAD_SPLIT: &str = r#"{"name":"g","network":"flickr","size":"tiny","seed":7,"split":true}"#;

fn rank_body(measure: &str, seed: u64) -> String {
    format!(
        r#"{{"graph":"g","measure":"{measure}","targets":[0,3,9,17,40],"eps":0.2,"delta":0.1,"seed":{seed},"khops":4}}"#
    )
}

/// The same request served by a socket-less standalone service (the
/// pre-sharding code path, bit-for-bit).
fn standalone_bytes(rank: &str) -> String {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let post = |path: &str, body: &str| {
        svc.handle(&Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        })
        .0
    };
    let loaded = post("/graphs", LOAD);
    assert_eq!(loaded.status, 200, "{}", loaded.body_str());
    let resp = post("/rank", rank);
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    resp.body_str().to_string()
}

#[test]
fn split_rank_is_byte_identical_to_standalone_for_every_measure() {
    let (router, shards) = start_cluster(2, IDLE);
    let mut client = Client::new(router.addr().to_string());

    let loaded = client.request("POST", "/graphs", Some(LOAD_SPLIT)).unwrap();
    assert_eq!(loaded.status, 200, "{}", loaded.body);
    assert!(loaded.body.contains("\"split\":true"), "{}", loaded.body);
    assert!(loaded.body.contains("\"shards\":2"), "{}", loaded.body);

    for measure in ["bc", "kpath", "harmonic"] {
        let body = rank_body(measure, 11);
        let via_router = client.request("POST", "/rank", Some(&body)).unwrap();
        assert_eq!(via_router.status, 200, "{measure}: {}", via_router.body);
        assert_eq!(via_router.header("X-Saphyra-Cache"), Some("miss"));
        assert_eq!(
            via_router.body,
            standalone_bytes(&body),
            "{measure}: sharded bytes diverge from standalone"
        );
        // Replays hit the router's own cache.
        let again = client.request("POST", "/rank", Some(&body)).unwrap();
        assert_eq!(again.header("X-Saphyra-Cache"), Some("hit"));
        assert_eq!(again.body, via_router.body);
    }

    // The router actually fanned rounds out (and timed its merges).
    let health = client.request("GET", "/healthz", None).unwrap();
    assert!(
        health.body.contains("\"role\":\"router\""),
        "{}",
        health.body
    );
    let json = saphyra_service::json::Json::parse(&health.body).unwrap();
    assert!(json.get("sharded_rounds").unwrap().as_u64().unwrap() > 0);

    // The split graph shows in the merged registry view.
    let graphs = client.request("GET", "/graphs", None).unwrap();
    assert_eq!(graphs.status, 200);
    assert!(graphs.body.contains("\"split\":true"), "{}", graphs.body);

    drop(client);
    router.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

/// The same load + patch + rank sequence served by a socket-less
/// standalone service — the reference bytes for patched sharded serving.
fn standalone_patched_bytes(delta: &str, rank: &str) -> String {
    let svc = Service::new(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let send = |method: &str, path: &str, body: &str| {
        svc.handle(&Request {
            method: method.to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        })
        .0
    };
    assert_eq!(send("POST", "/graphs", LOAD).status, 200);
    let patched = send("PATCH", "/graphs/g", delta);
    assert_eq!(patched.status, 200, "{}", patched.body_str());
    let resp = send("POST", "/rank", rank);
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    resp.body_str().to_string()
}

/// `PATCH` through the router. Split placement: the router patches its own
/// copy (the authoritative validation + response) and fans the delta to
/// every shard, so post-patch sharded ranking still matches a standalone
/// server that applied the same delta. Whole-graph placement: the PATCH is
/// proxied verbatim to the owning shard.
#[test]
fn router_patch_fans_out_and_stays_byte_identical() {
    const DELTA: &str = r#"{"insert":[[0,9],[3,17]],"delete":[[0,3]]}"#;
    let (router, shards) = start_cluster(2, IDLE);
    let mut client = Client::new(router.addr().to_string());

    // No placement yet: 404, not a fan-out of garbage.
    let resp = client.request("PATCH", "/graphs/g", Some(DELTA)).unwrap();
    assert_eq!(resp.status, 404, "{}", resp.body);

    let loaded = client.request("POST", "/graphs", Some(LOAD_SPLIT)).unwrap();
    assert_eq!(loaded.status, 200, "{}", loaded.body);
    let patched = client.request("PATCH", "/graphs/g", Some(DELTA)).unwrap();
    assert_eq!(patched.status, 200, "{}", patched.body);
    assert!(patched.body.contains("\"shards\":2"), "{}", patched.body);
    assert!(patched.body.contains("\"delta_seq\":1"), "{}", patched.body);

    for measure in ["bc", "harmonic"] {
        let body = rank_body(measure, 41);
        let via_router = client.request("POST", "/rank", Some(&body)).unwrap();
        assert_eq!(via_router.status, 200, "{measure}: {}", via_router.body);
        assert_eq!(
            via_router.body,
            standalone_patched_bytes(DELTA, &body),
            "{measure}: post-patch sharded bytes diverge from standalone"
        );
    }

    // Bad deltas are rejected by the router's own copy before any fan-out.
    let resp = client
        .request("PATCH", "/graphs/g", Some(r#"{"insert":[[5,5]]}"#))
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    drop(client);
    router.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

#[test]
fn router_patch_proxies_whole_graph_placement() {
    const DELTA: &str = r#"{"insert":[[1,30]]}"#;
    let (router, shards) = start_cluster(2, IDLE);
    let mut client = Client::new(router.addr().to_string());

    let loaded = client.request("POST", "/graphs", Some(LOAD)).unwrap();
    assert_eq!(loaded.status, 200, "{}", loaded.body);
    let patched = client.request("PATCH", "/graphs/g", Some(DELTA)).unwrap();
    assert_eq!(patched.status, 200, "{}", patched.body);
    // The shard's response body is relayed verbatim — no "shards" field.
    assert!(patched.body.contains("\"delta_seq\":1"), "{}", patched.body);
    assert!(!patched.body.contains("\"shards\""), "{}", patched.body);

    let body = rank_body("bc", 43);
    let via_router = client.request("POST", "/rank", Some(&body)).unwrap();
    assert_eq!(via_router.status, 200, "{}", via_router.body);
    assert_eq!(via_router.body, standalone_patched_bytes(DELTA, &body));

    drop(client);
    router.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

#[test]
fn whole_graph_placement_proxies_rank_and_merges_listing() {
    let (router, shards) = start_cluster(2, IDLE);
    let mut client = Client::new(router.addr().to_string());

    // No "split": the router places the whole graph on one shard.
    let loaded = client.request("POST", "/graphs", Some(LOAD)).unwrap();
    assert_eq!(loaded.status, 200, "{}", loaded.body);
    assert!(loaded.body.contains("\"shard\":"), "{}", loaded.body);

    let body = rank_body("bc", 13);
    let via_router = client.request("POST", "/rank", Some(&body)).unwrap();
    assert_eq!(via_router.status, 200, "{}", via_router.body);
    // The shard's cache header is relayed through the proxy.
    assert_eq!(via_router.header("X-Saphyra-Cache"), Some("miss"));
    assert_eq!(via_router.body, standalone_bytes(&body));
    let again = client.request("POST", "/rank", Some(&body)).unwrap();
    assert_eq!(again.header("X-Saphyra-Cache"), Some("hit"));

    // The merged view reports the owning shard and the graph counters.
    let graphs = client.request("GET", "/graphs", None).unwrap();
    assert_eq!(graphs.status, 200);
    assert!(graphs.body.contains("\"shard\":"), "{}", graphs.body);
    assert!(graphs.body.contains("\"nodes\":"), "{}", graphs.body);
    assert!(graphs.body.contains("\"bicomps\":"), "{}", graphs.body);

    drop(client);
    router.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

#[test]
fn dead_shard_mid_stream_yields_clean_503_not_a_hang() {
    let (router, mut shards) = start_cluster(2, IDLE);
    let mut client = Client::new(router.addr().to_string());

    let loaded = client.request("POST", "/graphs", Some(LOAD_SPLIT)).unwrap();
    assert_eq!(loaded.status, 200, "{}", loaded.body);
    let warm = rank_body("bc", 21);
    assert_eq!(
        client.request("POST", "/rank", Some(&warm)).unwrap().status,
        200
    );

    // Kill the first backend (chunk splits always feed shard 0 first,
    // so it is guaranteed a share of every round), then issue a *cold*
    // request (fresh seed): the fan-out must fail fast with a JSON 503
    // naming the shard.
    let victim = shards.remove(0);
    let victim_addr = victim.addr().to_string();
    victim.shutdown_and_join();
    let cold = rank_body("bc", 22);
    let resp = client.request("POST", "/rank", Some(&cold)).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    let json = saphyra_service::json::Json::parse(&resp.body).unwrap();
    let msg = json.get("error").unwrap().as_str().unwrap().to_string();
    assert!(
        msg.contains(&victim_addr),
        "error does not name the shard: {msg}"
    );

    // Cached results survive the outage; nothing was poisoned.
    let cached = client.request("POST", "/rank", Some(&warm)).unwrap();
    assert_eq!(cached.status, 200);
    assert_eq!(cached.header("X-Saphyra-Cache"), Some("hit"));

    drop(client);
    router.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

#[test]
fn router_redials_shards_after_idle_timeout() {
    // Shards that hang up idle connections between requests: the pooled
    // clients must transparently redial (stale-connection retry) so a
    // later multi-round estimation still completes — and still matches
    // standalone bytes.
    let (router, shards) = start_cluster(2, Duration::from_millis(150));
    let mut client = Client::new(router.addr().to_string());

    let loaded = client.request("POST", "/graphs", Some(LOAD_SPLIT)).unwrap();
    assert_eq!(loaded.status, 200, "{}", loaded.body);
    let first = rank_body("harmonic", 31);
    assert_eq!(
        client
            .request("POST", "/rank", Some(&first))
            .unwrap()
            .status,
        200
    );

    // Let every shard close the router's idle /shard/exec connections.
    std::thread::sleep(Duration::from_millis(500));

    let second = rank_body("harmonic", 32);
    let resp = client.request("POST", "/rank", Some(&second)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.body, standalone_bytes(&second));

    drop(client);
    router.shutdown_and_join();
    for s in shards {
        s.shutdown_and_join();
    }
}

#[test]
fn role_validation_without_sockets() {
    let post = |svc: &Service, path: &str, body: &str| {
        svc.handle(&Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        })
        .0
    };

    // "split" on a standalone node is a 400, not a silent local load.
    let standalone = Service::new(ServiceConfig::default());
    let resp = post(&standalone, "/graphs", LOAD_SPLIT);
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    assert!(resp.body_str().contains("router"), "{}", resp.body_str());

    // /shard/exec on a non-shard node is a 400.
    let resp = post(&standalone, "/shard/exec", "junk");
    assert_eq!(resp.status, 400, "{}", resp.body_str());

    // Invalid shard pools (empty, duplicated) are a 400 at load time —
    // the same `saphyra::params::check_shard_addrs` the CLI runs.
    for shards in [Vec::new(), vec!["h:1".to_string(), "h:1".to_string()]] {
        let router = Service::new(ServiceConfig {
            role: Role::Router,
            shards,
            ..ServiceConfig::default()
        });
        let resp = post(&router, "/graphs", LOAD);
        assert_eq!(resp.status, 400, "{}", resp.body_str());
        assert!(
            resp.body_str().contains("shard configuration invalid"),
            "{}",
            resp.body_str()
        );
    }
}
