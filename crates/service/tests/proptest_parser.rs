//! Properties of the sans-IO [`RequestParser`]: any valid request byte
//! stream, split at arbitrary boundaries, parses to the same `Request` as
//! the blocking one-shot path; and every torn/truncated prefix is
//! classified `NeedMore` (parser) / `UnexpectedEof` (one-shot), never a
//! panic, never a mangled partial parse.

use proptest::prelude::*;
use saphyra_service::http::{read_request, ParseStatus, Request, RequestParser};

/// Picks characters of `alphabet` by generated index (the vendored
/// proptest has no `sample::select`).
fn chars_of(alphabet: &'static str, len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..alphabet.len(), len).prop_map(move |idx| {
        idx.into_iter()
            .map(|i| alphabet.as_bytes()[i] as char)
            .collect()
    })
}

/// Strategy: a syntactically valid request plus its serialized bytes.
/// Covers `\r\n` and bare-`\n` line endings, absent/empty/non-empty
/// bodies, unknown headers, and binary body bytes.
fn arb_request() -> impl Strategy<Value = Vec<u8>> {
    let method = (0usize..4).prop_map(|i| ["GET", "POST", "put", "DELETE"][i]);
    let path_tail = chars_of("abcXYZ09._-/", 0..12);
    // Header names stick to letters a-h plus '-': no way to spell
    // "content-length", so generated headers can never collide with the
    // framing header added below.
    let headers = proptest::collection::vec(
        (chars_of("abcdefgh-", 1..8), chars_of(" abc123=;,", 0..10)),
        0..4,
    );
    let body = proptest::collection::vec(0u8..=255u8, 0..200);
    (method, path_tail, headers, body, any::<bool>()).prop_map(
        |(method, path_tail, headers, body, crlf)| {
            let eol = if crlf { "\r\n" } else { "\n" };
            let path = format!("/{path_tail}");
            let mut out = format!("{method} {path} HTTP/1.1{eol}");
            for (name, value) in headers {
                out.push_str(&format!("{name}: {value}{eol}"));
            }
            if !body.is_empty() {
                out.push_str(&format!("Content-Length: {}{eol}", body.len()));
            }
            out.push_str(eol);
            let mut bytes = out.into_bytes();
            bytes.extend_from_slice(&body);
            bytes
        },
    )
}

/// Drives a parser over `bytes` cut at the given split points, asserting
/// `NeedMore` before completion. Returns the parsed request and how many
/// bytes it consumed.
fn parse_split(bytes: &[u8], splits: &[usize]) -> (Request, usize) {
    let mut parser = RequestParser::new();
    let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (bytes.len() + 1)).collect();
    cuts.push(bytes.len());
    cuts.sort_unstable();
    let mut fed = 0usize;
    for cut in cuts {
        if cut < fed {
            continue;
        }
        fed = cut;
        match parser.parse(&bytes[..fed]).expect("valid request errored") {
            ParseStatus::Complete { request, consumed } => return (request, consumed),
            ParseStatus::NeedMore => {
                assert!(
                    fed < bytes.len(),
                    "full request classified NeedMore: {:?}",
                    String::from_utf8_lossy(bytes)
                );
            }
        }
    }
    unreachable!("parser never completed on the full buffer");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn split_boundaries_do_not_change_the_parse(
        bytes in arb_request(),
        splits in proptest::collection::vec(0usize..10_000, 0..8),
    ) {
        // One-shot reference parse (the blocking path).
        let reference = read_request(&mut &bytes[..])
            .expect("one-shot parse failed")
            .expect("empty parse");

        let (incremental, consumed) = parse_split(&bytes, &splits);
        prop_assert_eq!(consumed, bytes.len(), "consumed != request length");
        prop_assert_eq!(&incremental.method, &reference.method);
        prop_assert_eq!(&incremental.path, &reference.path);
        prop_assert_eq!(&incremental.headers, &reference.headers);
        prop_assert_eq!(&incremental.body, &reference.body);
    }

    #[test]
    fn truncated_prefixes_classify_consistently_and_never_panic(
        bytes in arb_request(),
        cut in 0usize..10_000,
        splits in proptest::collection::vec(0usize..10_000, 0..4),
    ) {
        // A strict prefix of a valid request is always NeedMore for the
        // parser — fed whole or in arbitrary pieces — and UnexpectedEof
        // for the one-shot path (Ok(None) for the empty prefix).
        let cut = cut % bytes.len().max(1);
        let prefix = &bytes[..cut];

        let mut parser = RequestParser::new();
        prop_assert!(
            matches!(parser.parse(prefix).expect("prefix errored"), ParseStatus::NeedMore),
            "torn prefix of {} bytes did not classify NeedMore", cut
        );
        // Feeding the same prefix piecewise agrees.
        let mut piecewise = RequestParser::new();
        let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (cut + 1)).collect();
        cuts.push(cut);
        cuts.sort_unstable();
        for c in cuts {
            prop_assert!(matches!(
                piecewise.parse(&prefix[..c]).expect("prefix errored"),
                ParseStatus::NeedMore
            ));
        }

        match read_request(&mut &prefix[..]) {
            Ok(None) => prop_assert_eq!(cut, 0, "non-empty prefix parsed as end-of-stream"),
            Ok(Some(_)) => prop_assert!(false, "torn prefix parsed as a complete request"),
            Err(e) => prop_assert_eq!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof,
                "prefix of {} bytes: wrong error kind {}", cut, e
            ),
        }
    }

    #[test]
    fn pipelined_streams_parse_back_to_back(
        reqs in proptest::collection::vec(arb_request(), 1..5),
        splits in proptest::collection::vec(0usize..10_000, 0..6),
    ) {
        // Concatenate several requests; the parser must carve them back
        // out at exactly the right boundaries whatever the feed pattern.
        let stream: Vec<u8> = reqs.iter().flatten().copied().collect();
        let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (stream.len() + 1)).collect();
        cuts.push(stream.len());
        cuts.sort_unstable();

        let mut parser = RequestParser::new();
        let mut start = 0usize; // offset of the current request
        let mut parsed = Vec::new();
        for cut in cuts {
            if cut < start {
                continue;
            }
            // Keep consuming completions inside this feed window —
            // exactly what the reactor's parse loop does.
            while let ParseStatus::Complete { request, consumed } =
                parser.parse(&stream[start..cut]).expect("stream errored")
            {
                start += consumed;
                parsed.push(request);
            }
        }
        prop_assert_eq!(parsed.len(), reqs.len(), "request count diverged");
        prop_assert_eq!(start, stream.len(), "trailing bytes left unconsumed");
        for (got, raw) in parsed.iter().zip(&reqs) {
            let want = read_request(&mut &raw[..]).unwrap().unwrap();
            prop_assert_eq!(&got.method, &want.method);
            prop_assert_eq!(&got.path, &want.path);
            prop_assert_eq!(&got.body, &want.body);
        }
    }
}
