//! End-to-end service tests over real TCP sockets: the wire-level
//! determinism contract, persistent-connection (keep-alive) semantics,
//! single-flight collapsing, cache isolation between graphs under
//! concurrency, and graceful shutdown.

use std::sync::Arc;
use std::time::Duration;

use saphyra_service::http::{request, Client};
use saphyra_service::json::Json;
use saphyra_service::server::{serve, serve_with, Service, ServiceConfig};

fn start(workers: usize) -> (saphyra_service::ServerHandle, String) {
    let cfg = ServiceConfig {
        workers,
        cache_capacity: 64,
        ..ServiceConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn load_flickr(addr: &str, name: &str, seed: u64) {
    let body = format!(r#"{{"name":"{name}","network":"flickr","size":"tiny","seed":{seed}}}"#);
    let resp = request(addr, "POST", "/graphs", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
}

const RANK_BODY: &str =
    r#"{"graph":"g","targets":[1,5,9,13,40],"measure":"bc","eps":0.15,"delta":0.1,"seed":42}"#;

#[test]
fn rank_is_byte_identical_across_worker_counts() {
    let mut bodies = Vec::new();
    for workers in [1usize, 2, 4] {
        let (handle, addr) = start(workers);
        load_flickr(&addr, "g", 5);
        let resp = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
        assert_eq!(resp.status, 200, "workers={workers}: {}", resp.body);
        assert_eq!(resp.header("x-saphyra-cache"), Some("miss"));
        bodies.push(resp.body);
        handle.shutdown_and_join();
    }
    assert_eq!(bodies[0], bodies[1], "1 vs 2 workers differ");
    assert_eq!(bodies[0], bodies[2], "1 vs 4 workers differ");
}

#[test]
fn concurrent_identical_requests_are_identical_and_hit_the_cache() {
    let (handle, addr) = start(4);
    load_flickr(&addr, "g", 5);

    // Warm the cache once so the concurrent wave can hit it.
    let warm = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);

    let mut threads = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap()
        }));
    }
    for t in threads {
        let resp = t.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, warm.body, "concurrent response diverged");
        assert_eq!(resp.header("x-saphyra-cache"), Some("hit"));
    }
    handle.shutdown_and_join();
}

#[test]
fn concurrent_mixed_graph_requests_do_not_cross_contaminate() {
    // Two different graphs under one server; 8 interleaved requests (2
    // graphs × 4 seeds) fired concurrently must each match the response
    // the same request gets on a quiet, freshly loaded server.
    let requests: Vec<(String, String)> = (0..8u64)
        .map(|i| {
            let graph = if i % 2 == 0 { "even" } else { "odd" };
            let body = format!(
                r#"{{"graph":"{graph}","targets":[2,3,5,8],"eps":0.15,"delta":0.1,"seed":{}}}"#,
                100 + i / 2
            );
            (graph.to_string(), body)
        })
        .collect();

    // Baselines: one server per request, zero concurrency.
    let mut baselines = Vec::new();
    {
        let (handle, addr) = start(1);
        load_flickr(&addr, "even", 5);
        load_flickr(&addr, "odd", 77);
        for (_, body) in &requests {
            let resp = request(&addr, "POST", "/rank", Some(body)).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body);
            baselines.push(resp.body);
        }
        handle.shutdown_and_join();
    }
    // The two graphs genuinely differ, otherwise contamination is invisible.
    assert_ne!(baselines[0], baselines[1]);

    let (handle, addr) = start(4);
    load_flickr(&addr, "even", 5);
    load_flickr(&addr, "odd", 77);
    let mut threads = Vec::new();
    for (i, (_, body)) in requests.iter().enumerate() {
        let addr = addr.clone();
        let body = body.clone();
        threads.push(std::thread::spawn(move || {
            (i, request(&addr, "POST", "/rank", Some(&body)).unwrap())
        }));
    }
    for t in threads {
        let (i, resp) = t.join().unwrap();
        assert_eq!(resp.status, 200, "request {i}: {}", resp.body);
        assert_eq!(
            resp.body, baselines[i],
            "request {i} contaminated under concurrency"
        );
        let parsed = Json::parse(&resp.body).unwrap();
        assert_eq!(
            parsed.get("graph").unwrap().as_str(),
            Some(requests[i].0.as_str())
        );
    }
    handle.shutdown_and_join();
}

#[test]
fn keep_alive_replays_byte_identical_responses_over_one_connection() {
    let (handle, addr) = start(2);
    load_flickr(&addr, "g", 5);

    // One-shot baselines (fresh connection per request, the PR 2 model).
    let baseline_rank = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
    assert_eq!(baseline_rank.status, 200, "{}", baseline_rank.body);
    let baseline_graphs = request(&addr, "GET", "/graphs", None).unwrap();
    let before = handle.service().connections();

    // Many requests over ONE pooled persistent connection.
    let mut client = Client::new(addr.clone());
    for _ in 0..10 {
        let resp = client.request("POST", "/rank", Some(RANK_BODY)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body, baseline_rank.body,
            "keep-alive response diverged from one-shot bytes"
        );
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }
    // Mixed endpoints ride the same connection too.
    let resp = client.request("GET", "/graphs", None).unwrap();
    assert_eq!(resp.body, baseline_graphs.body);
    let resp = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);

    // All 12 requests used exactly one new TCP connection.
    assert_eq!(
        handle.service().connections() - before,
        1,
        "client failed to reuse its pooled connection"
    );
    drop(client);
    handle.shutdown_and_join();
}

#[test]
fn single_flight_collapses_identical_cold_requests_on_the_wire() {
    let (handle, addr) = start(8);
    load_flickr(&addr, "g", 5);

    // 8 identical COLD requests fired concurrently (no warm-up): exactly
    // one ranking computation may run; the rest replay its bytes.
    let mut threads = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap()
        }));
    }
    let responses: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(
        handle.service().computations(),
        1,
        "identical concurrent cold requests were not collapsed"
    );
    let misses = responses
        .iter()
        .filter(|r| r.header("x-saphyra-cache") == Some("miss"))
        .count();
    assert_eq!(misses, 1);
    for resp in &responses {
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(resp.body, responses[0].body, "shared bytes diverged");
        assert!(matches!(
            resp.header("x-saphyra-cache"),
            Some("miss" | "shared" | "hit")
        ));
    }
    handle.shutdown_and_join();
}

#[test]
fn idle_timeout_closes_the_connection_and_client_redials() {
    let cfg = ServiceConfig {
        workers: 2,
        cache_capacity: 8,
        idle_timeout: Duration::from_millis(150),
        ..ServiceConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();

    let mut client = Client::new(addr.clone());
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    assert_eq!(handle.service().connections(), 1);

    // Sit idle past the timeout: the server closes the pooled connection.
    std::thread::sleep(Duration::from_millis(500));

    // The client transparently redials and the request still succeeds.
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    assert_eq!(
        handle.service().connections(),
        2,
        "expected a redial after the server's idle timeout"
    );
    drop(client);
    handle.shutdown_and_join();
}

#[test]
fn max_requests_per_connection_recycles_the_connection() {
    let cfg = ServiceConfig {
        workers: 1,
        cache_capacity: 8,
        max_requests_per_conn: 3,
        ..ServiceConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();

    let mut client = Client::new(addr.clone());
    for i in 0..7 {
        let resp = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 200, "request {i}");
        // Every 3rd response on a connection announces the close.
        let expect_close = i % 3 == 2;
        assert_eq!(
            resp.header("connection"),
            Some(if expect_close { "close" } else { "keep-alive" }),
            "request {i}"
        );
    }
    // ceil(7 / 3) = 3 connections served the 7 requests.
    assert_eq!(handle.service().connections(), 3);
    drop(client);
    handle.shutdown_and_join();
}

#[test]
fn shutdown_is_prompt_even_with_idle_keep_alive_connections() {
    let (handle, addr) = start(2);
    let mut client = Client::new(addr.clone());
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    // The client parks its pooled connection idle (default idle timeout
    // 10 s). Workers poll the shutdown flag while idle, so join must
    // return promptly instead of waiting out the idle timeout.
    let t0 = std::time::Instant::now();
    handle.shutdown_and_join();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown waited on an idle connection: {:?}",
        t0.elapsed()
    );
    drop(client);
}

#[test]
fn preloaded_registry_and_health_counters() {
    let cfg = ServiceConfig {
        workers: 2,
        cache_capacity: 8,
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::new(cfg));
    service
        .registry()
        .insert(saphyra_service::GraphEntry::build(
            "grid",
            saphyra_graph::fixtures::grid_graph(5, 5),
        ));
    let handle = serve_with("127.0.0.1:0", service).unwrap();
    let addr = handle.addr().to_string();

    let resp = request(&addr, "GET", "/graphs", None).unwrap();
    let v = Json::parse(&resp.body).unwrap();
    let graphs = v.get("graphs").unwrap().as_arr().unwrap();
    assert_eq!(graphs.len(), 1);
    assert_eq!(graphs[0].get("name").unwrap().as_str(), Some("grid"));

    let body = r#"{"graph":"grid","targets":[6,12],"eps":0.2,"delta":0.1,"seed":1}"#;
    request(&addr, "POST", "/rank", Some(body)).unwrap();
    request(&addr, "POST", "/rank", Some(body)).unwrap();
    let resp = request(&addr, "GET", "/healthz", None).unwrap();
    let v = Json::parse(&resp.body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(v.get("cache_hits").unwrap().as_u64(), Some(1));
    assert_eq!(v.get("cache_misses").unwrap().as_u64(), Some(1));
    handle.shutdown_and_join();
}

#[test]
fn wire_level_validation_errors() {
    let (handle, addr) = start(1);
    let resp = request(&addr, "POST", "/rank", Some("{not json")).unwrap();
    assert_eq!(resp.status, 400);
    assert!(Json::parse(&resp.body).unwrap().get("error").is_some());
    let resp = request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(resp.status, 404);
    handle.shutdown_and_join();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let (handle, addr) = start(2);
    let resp = request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    // join() returns only once the acceptor and all workers exited.
    handle.join();
    // The port no longer accepts requests.
    assert!(request(&addr, "GET", "/healthz", None).is_err());
}
