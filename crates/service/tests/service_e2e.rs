//! End-to-end service tests over real TCP sockets: the wire-level
//! determinism contract, persistent-connection (keep-alive) semantics,
//! single-flight collapsing, cross-request batching (one shared sample
//! pass for concurrent distinct-target requests, byte-identical to quiet
//! runs), cache isolation between graphs under concurrency, and graceful
//! shutdown.

use std::sync::Arc;
use std::time::Duration;

use saphyra_service::http::{request, Client};
use saphyra_service::json::Json;
use saphyra_service::server::{serve, serve_with, Service, ServiceConfig};

fn start(workers: usize) -> (saphyra_service::ServerHandle, String) {
    let cfg = ServiceConfig {
        workers,
        cache_capacity: 64,
        ..ServiceConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn load_flickr(addr: &str, name: &str, seed: u64) {
    let body = format!(r#"{{"name":"{name}","network":"flickr","size":"tiny","seed":{seed}}}"#);
    let resp = request(addr, "POST", "/graphs", Some(&body)).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
}

const RANK_BODY: &str =
    r#"{"graph":"g","targets":[1,5,9,13,40],"measure":"bc","eps":0.15,"delta":0.1,"seed":42}"#;

#[test]
fn rank_is_byte_identical_across_worker_counts() {
    let mut bodies = Vec::new();
    for workers in [1usize, 2, 4] {
        let (handle, addr) = start(workers);
        load_flickr(&addr, "g", 5);
        let resp = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
        assert_eq!(resp.status, 200, "workers={workers}: {}", resp.body);
        assert_eq!(resp.header("x-saphyra-cache"), Some("miss"));
        bodies.push(resp.body);
        handle.shutdown_and_join();
    }
    assert_eq!(bodies[0], bodies[1], "1 vs 2 workers differ");
    assert_eq!(bodies[0], bodies[2], "1 vs 4 workers differ");
}

#[test]
fn concurrent_identical_requests_are_identical_and_hit_the_cache() {
    let (handle, addr) = start(4);
    load_flickr(&addr, "g", 5);

    // Warm the cache once so the concurrent wave can hit it.
    let warm = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);

    let mut threads = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap()
        }));
    }
    for t in threads {
        let resp = t.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, warm.body, "concurrent response diverged");
        assert_eq!(resp.header("x-saphyra-cache"), Some("hit"));
    }
    handle.shutdown_and_join();
}

#[test]
fn concurrent_mixed_graph_requests_do_not_cross_contaminate() {
    // Two different graphs under one server; 8 interleaved requests (2
    // graphs × 4 seeds) fired concurrently must each match the response
    // the same request gets on a quiet, freshly loaded server.
    let requests: Vec<(String, String)> = (0..8u64)
        .map(|i| {
            let graph = if i % 2 == 0 { "even" } else { "odd" };
            let body = format!(
                r#"{{"graph":"{graph}","targets":[2,3,5,8],"eps":0.15,"delta":0.1,"seed":{}}}"#,
                100 + i / 2
            );
            (graph.to_string(), body)
        })
        .collect();

    // Baselines: one server per request, zero concurrency.
    let mut baselines = Vec::new();
    {
        let (handle, addr) = start(1);
        load_flickr(&addr, "even", 5);
        load_flickr(&addr, "odd", 77);
        for (_, body) in &requests {
            let resp = request(&addr, "POST", "/rank", Some(body)).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body);
            baselines.push(resp.body);
        }
        handle.shutdown_and_join();
    }
    // The two graphs genuinely differ, otherwise contamination is invisible.
    assert_ne!(baselines[0], baselines[1]);

    let (handle, addr) = start(4);
    load_flickr(&addr, "even", 5);
    load_flickr(&addr, "odd", 77);
    let mut threads = Vec::new();
    for (i, (_, body)) in requests.iter().enumerate() {
        let addr = addr.clone();
        let body = body.clone();
        threads.push(std::thread::spawn(move || {
            (i, request(&addr, "POST", "/rank", Some(&body)).unwrap())
        }));
    }
    for t in threads {
        let (i, resp) = t.join().unwrap();
        assert_eq!(resp.status, 200, "request {i}: {}", resp.body);
        assert_eq!(
            resp.body, baselines[i],
            "request {i} contaminated under concurrency"
        );
        let parsed = Json::parse(&resp.body).unwrap();
        assert_eq!(
            parsed.get("graph").unwrap().as_str(),
            Some(requests[i].0.as_str())
        );
    }
    handle.shutdown_and_join();
}

#[test]
fn keep_alive_replays_byte_identical_responses_over_one_connection() {
    let (handle, addr) = start(2);
    load_flickr(&addr, "g", 5);

    // One-shot baselines (fresh connection per request, the PR 2 model).
    let baseline_rank = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
    assert_eq!(baseline_rank.status, 200, "{}", baseline_rank.body);
    let baseline_graphs = request(&addr, "GET", "/graphs", None).unwrap();
    let before = handle.service().connections();

    // Many requests over ONE pooled persistent connection.
    let mut client = Client::new(addr.clone());
    for _ in 0..10 {
        let resp = client.request("POST", "/rank", Some(RANK_BODY)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body, baseline_rank.body,
            "keep-alive response diverged from one-shot bytes"
        );
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }
    // Mixed endpoints ride the same connection too.
    let resp = client.request("GET", "/graphs", None).unwrap();
    assert_eq!(resp.body, baseline_graphs.body);
    let resp = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(resp.status, 200);

    // All 12 requests used exactly one new TCP connection.
    assert_eq!(
        handle.service().connections() - before,
        1,
        "client failed to reuse its pooled connection"
    );
    drop(client);
    handle.shutdown_and_join();
}

#[test]
fn single_flight_collapses_identical_cold_requests_on_the_wire() {
    let (handle, addr) = start(8);
    load_flickr(&addr, "g", 5);

    // 8 identical COLD requests fired concurrently (no warm-up): exactly
    // one ranking computation may run; the rest replay its bytes.
    let mut threads = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap()
        }));
    }
    let responses: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(
        handle.service().computations(),
        1,
        "identical concurrent cold requests were not collapsed"
    );
    let misses = responses
        .iter()
        .filter(|r| r.header("x-saphyra-cache") == Some("miss"))
        .count();
    assert_eq!(misses, 1);
    for resp in &responses {
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(resp.body, responses[0].body, "shared bytes diverged");
        assert!(matches!(
            resp.header("x-saphyra-cache"),
            Some("miss" | "shared" | "hit")
        ));
    }
    handle.shutdown_and_join();
}

/// The batching acceptance property on the wire: 8 concurrent cold
/// requests with pairwise-distinct target sets — same graph, measure, ε,
/// δ, seed — coalesce into ONE shared sample pass, every response is
/// marked `batched`, and every body is byte-identical to what a quiet
/// server (no other traffic) returns for the same request.
#[test]
fn batched_distinct_targets_one_pass_and_quiet_server_bytes() {
    let n = 8usize;
    let bodies: Vec<String> = (0..n)
        .map(|i| {
            format!(
                r#"{{"graph":"g","targets":[{},{},{}],"measure":"bc","eps":0.15,"delta":0.1,"seed":42}}"#,
                2 * i,
                2 * i + 1,
                30 + i
            )
        })
        .collect();

    // Quiet-server baselines: the same requests, zero concurrency.
    let mut baselines = Vec::new();
    {
        let (handle, addr) = start(1);
        load_flickr(&addr, "g", 5);
        for b in &bodies {
            let r = request(&addr, "POST", "/rank", Some(b)).unwrap();
            assert_eq!(r.status, 200, "{}", r.body);
            baselines.push(r.body);
        }
        handle.shutdown_and_join();
    }

    // Batching server: one worker per request so every member can park in
    // the gather window, and a window comfortably wider than the time the
    // 8 client threads need to connect and send.
    let cfg = ServiceConfig {
        workers: n,
        cache_capacity: 64,
        batch_window: Duration::from_millis(300),
        ..ServiceConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();
    load_flickr(&addr, "g", 5);

    let mut threads = Vec::new();
    for (i, body) in bodies.iter().enumerate() {
        let addr = addr.clone();
        let body = body.clone();
        threads.push(std::thread::spawn(move || {
            (i, request(&addr, "POST", "/rank", Some(&body)).unwrap())
        }));
    }
    for t in threads {
        let (i, resp) = t.join().unwrap();
        assert_eq!(resp.status, 200, "request {i}: {}", resp.body);
        assert_eq!(
            resp.header("x-saphyra-cache"),
            Some("batched"),
            "request {i} missed the batch"
        );
        assert_eq!(
            resp.body, baselines[i],
            "request {i}: batched bytes diverged from the quiet server"
        );
    }
    assert_eq!(
        handle.service().sample_passes(),
        1,
        "{n} distinct-target requests must share one sample pass"
    );
    assert_eq!(handle.service().computations(), n as u64);

    // /healthz reports the batching counters.
    let resp = request(&addr, "GET", "/healthz", None).unwrap();
    let v = Json::parse(&resp.body).unwrap();
    assert_eq!(v.get("batched").unwrap().as_u64(), Some(n as u64));
    assert_eq!(v.get("sample_passes").unwrap().as_u64(), Some(1));
    handle.shutdown_and_join();
}

#[test]
fn idle_timeout_closes_the_connection_and_client_redials() {
    let cfg = ServiceConfig {
        workers: 2,
        cache_capacity: 8,
        idle_timeout: Duration::from_millis(150),
        ..ServiceConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();

    let mut client = Client::new(addr.clone());
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    assert_eq!(handle.service().connections(), 1);

    // Sit idle past the timeout: the server closes the pooled connection.
    std::thread::sleep(Duration::from_millis(500));

    // The client transparently redials and the request still succeeds.
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    assert_eq!(
        handle.service().connections(),
        2,
        "expected a redial after the server's idle timeout"
    );
    drop(client);
    handle.shutdown_and_join();
}

#[test]
fn max_requests_per_connection_recycles_the_connection() {
    let cfg = ServiceConfig {
        workers: 1,
        cache_capacity: 8,
        max_requests_per_conn: 3,
        ..ServiceConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();

    let mut client = Client::new(addr.clone());
    for i in 0..7 {
        let resp = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(resp.status, 200, "request {i}");
        // Every 3rd response on a connection announces the close.
        let expect_close = i % 3 == 2;
        assert_eq!(
            resp.header("connection"),
            Some(if expect_close { "close" } else { "keep-alive" }),
            "request {i}"
        );
    }
    // ceil(7 / 3) = 3 connections served the 7 requests.
    assert_eq!(handle.service().connections(), 3);
    drop(client);
    handle.shutdown_and_join();
}

#[test]
fn shutdown_is_prompt_even_with_idle_keep_alive_connections() {
    let (handle, addr) = start(2);
    let mut client = Client::new(addr.clone());
    assert_eq!(client.request("GET", "/healthz", None).unwrap().status, 200);
    // The client parks its pooled connection idle (default idle timeout
    // 10 s). Workers poll the shutdown flag while idle, so join must
    // return promptly instead of waiting out the idle timeout.
    let t0 = std::time::Instant::now();
    handle.shutdown_and_join();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown waited on an idle connection: {:?}",
        t0.elapsed()
    );
    drop(client);
}

#[test]
fn preloaded_registry_and_health_counters() {
    let cfg = ServiceConfig {
        workers: 2,
        cache_capacity: 8,
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::new(cfg));
    service
        .registry()
        .insert(saphyra_service::GraphEntry::build(
            "grid",
            saphyra_graph::fixtures::grid_graph(5, 5),
        ));
    let handle = serve_with("127.0.0.1:0", service).unwrap();
    let addr = handle.addr().to_string();

    let resp = request(&addr, "GET", "/graphs", None).unwrap();
    let v = Json::parse(&resp.body).unwrap();
    let graphs = v.get("graphs").unwrap().as_arr().unwrap();
    assert_eq!(graphs.len(), 1);
    assert_eq!(graphs[0].get("name").unwrap().as_str(), Some("grid"));

    let body = r#"{"graph":"grid","targets":[6,12],"eps":0.2,"delta":0.1,"seed":1}"#;
    request(&addr, "POST", "/rank", Some(body)).unwrap();
    request(&addr, "POST", "/rank", Some(body)).unwrap();
    let resp = request(&addr, "GET", "/healthz", None).unwrap();
    let v = Json::parse(&resp.body).unwrap();
    assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(v.get("cache_hits").unwrap().as_u64(), Some(1));
    assert_eq!(v.get("cache_misses").unwrap().as_u64(), Some(1));
    handle.shutdown_and_join();
}

#[test]
fn wire_level_validation_errors() {
    let (handle, addr) = start(1);
    let resp = request(&addr, "POST", "/rank", Some("{not json")).unwrap();
    assert_eq!(resp.status, 400);
    assert!(Json::parse(&resp.body).unwrap().get("error").is_some());
    let resp = request(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(resp.status, 404);
    handle.shutdown_and_join();
}

#[test]
fn pipelined_requests_return_in_order_with_identical_bytes() {
    let (handle, addr) = start(2);
    load_flickr(&addr, "g", 5);

    // One-shot baselines for four distinct requests.
    let bodies: Vec<String> = (0..4)
        .map(|s| format!(r#"{{"graph":"g","targets":[2,7,11],"eps":0.2,"delta":0.1,"seed":{s}}}"#))
        .collect();
    let baselines: Vec<String> = bodies
        .iter()
        .map(|b| {
            let r = request(&addr, "POST", "/rank", Some(b)).unwrap();
            assert_eq!(r.status, 200, "{}", r.body);
            r.body
        })
        .collect();

    // The same four requests, plus repeats, pipelined over ONE connection:
    // all written before any response is read. Responses must come back in
    // request order with byte-identical bodies.
    let before = handle.service().connections();
    let mut client = Client::new(addr.clone());
    let batch: Vec<(&str, &str, Option<&str>)> = (0..12)
        .map(|i| ("POST", "/rank", Some(bodies[i % 4].as_str())))
        .collect();
    let responses = client.pipeline(&batch).unwrap();
    assert_eq!(responses.len(), 12);
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.status, 200, "pipelined {i}: {}", resp.body);
        assert_eq!(
            resp.body,
            baselines[i % 4],
            "pipelined response {i} diverged or came back out of order"
        );
    }
    assert_eq!(
        handle.service().connections() - before,
        1,
        "the whole batch must ride one connection"
    );
    // The server observed real pipelining: requests parsed while earlier
    // responses were still in flight.
    assert!(
        handle.service().pipelined() > 0,
        "no request was parsed while a prior response was in flight"
    );

    // /healthz reports both new fields (the gauge counts at least this
    // client's own live connection).
    let resp = client.request("GET", "/healthz", None).unwrap();
    let v = Json::parse(&resp.body).unwrap();
    assert!(v.get("open_connections").unwrap().as_u64().unwrap() >= 1);
    assert!(v.get("pipelined").unwrap().as_u64().unwrap() > 0);
    drop(client);
    handle.shutdown_and_join();
}

#[test]
fn pipelining_respects_connection_close_mid_batch() {
    let (handle, addr) = start(2);
    // A pipelined batch whose first request asks to close: the server
    // answers it with `Connection: close` and drops the rest.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    use std::io::{Read, Write};
    let two = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n";
    stream.write_all(two).unwrap();
    let mut all = Vec::new();
    stream.read_to_end(&mut all).unwrap(); // server closes after one response
    let text = String::from_utf8(all).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("Connection: close\r\n"), "{text}");
    assert_eq!(
        text.matches("HTTP/1.1").count(),
        1,
        "second request must be dropped after Connection: close: {text}"
    );
    handle.shutdown_and_join();
}

/// The tentpole acceptance number: with 2 workers, 64 parked idle
/// keep-alive connections must not starve active clients — their
/// cache-hit throughput stays within 2x of a quiet-server baseline
/// (under the old runtime the idle connections held every worker and the
/// active clients stalled until idle timeouts fired).
#[test]
fn idle_connections_do_not_starve_active_clients() {
    let cfg = ServiceConfig {
        workers: 2,
        cache_capacity: 64,
        ..ServiceConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();
    load_flickr(&addr, "g", 5);

    // Warm the cache so the measured path is pure cache-hit traffic.
    let warm = request(&addr, "POST", "/rank", Some(RANK_BODY)).unwrap();
    assert_eq!(warm.status, 200, "{}", warm.body);

    let active_round = |addr: &str| {
        let t0 = std::time::Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(move || {
                    let mut client = Client::new(addr);
                    for _ in 0..25 {
                        let r = client.request("POST", "/rank", Some(RANK_BODY)).unwrap();
                        assert_eq!(r.status, 200);
                    }
                });
            }
        });
        t0.elapsed()
    };

    // Baseline: no idle connections. One throwaway round first so thread
    // spin-up and allocator warm-up hit both measurements equally.
    active_round(&addr);
    let quiet = active_round(&addr);

    // Park 64 idle keep-alive connections (they never send a byte).
    let idles: Vec<_> = (0..64)
        .map(|_| std::net::TcpStream::connect(&addr).unwrap())
        .collect();
    // Let the reactor accept them all before measuring.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.service().open_connections() < 64 {
        assert!(
            std::time::Instant::now() < deadline,
            "reactor failed to accept parked connections: {}",
            handle.service().open_connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let loris = active_round(&addr);
    drop(idles);

    assert!(
        loris < quiet * 2,
        "64 idle connections starved 8 active clients: quiet {quiet:?} vs slow-loris {loris:?}"
    );
    handle.shutdown_and_join();
}

/// Pipelined cache-hit throughput must not fall below plain keep-alive
/// request-response throughput: batching removes a full client-server
/// round trip per request, it can only help.
#[test]
fn pipelined_throughput_not_worse_than_keep_alive() {
    let (handle, addr) = start(2);
    let n = 384;
    let mut client = Client::new(addr.clone());
    // Warm up the connection and the cache path.
    client.request("GET", "/healthz", None).unwrap();

    let t0 = std::time::Instant::now();
    for _ in 0..n {
        let r = client.request("GET", "/healthz", None).unwrap();
        assert_eq!(r.status, 200);
    }
    let keep_alive = t0.elapsed();

    let batch: Vec<(&str, &str, Option<&str>)> =
        (0..n).map(|_| ("GET", "/healthz", None)).collect();
    let t0 = std::time::Instant::now();
    let responses = client.pipeline(&batch).unwrap();
    let pipelined = t0.elapsed();
    assert_eq!(responses.len(), n);

    // Generous slack: the assertion is "pipelining is not a regression",
    // the bench reports the actual multiple (typically several x).
    assert!(
        pipelined <= keep_alive * 3 / 2,
        "pipelined {n} requests slower than request-response keep-alive: \
         {pipelined:?} vs {keep_alive:?}"
    );
    drop(client);
    handle.shutdown_and_join();
}

#[test]
fn write_then_half_close_client_still_gets_its_responses() {
    // Regression: a client that writes its request(s) and then shuts down
    // its write side before reading (`printf ... | nc`-style one-shots)
    // must still be answered — the blocking runtime served this, and an
    // early reactor draft closed on EOF with requests still buffered or
    // in flight.
    use std::io::{Read, Write};
    let (handle, addr) = start(2);

    // Single request, FIN racing right behind it.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("\"status\":\"ok\""), "{text}");

    // A pipelined burst then FIN: every request gets its response, in
    // order, and the connection closes afterwards without waiting out
    // the idle timeout.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        b"GET /healthz HTTP/1.1\r\n\r\nGET /graphs HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\n\r\n",
    )
    .unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let t0 = std::time::Instant::now();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 3, "{text}");
    assert!(text.contains("\"graphs\""), "{text}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "half-closed connection waited out the idle timeout: {:?}",
        t0.elapsed()
    );

    // A torn trailing request after a served one is discarded quietly.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /torn HTT")
        .unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    assert_eq!(text.matches("HTTP/1.1").count(), 1, "{text}");
    handle.shutdown_and_join();
}

#[test]
fn depth_limited_followup_parsed_on_completion_is_still_answered() {
    // Regression: with pipeline_depth=1, a follow-up request (or a
    // malformed one needing a 400) only gets parsed when the first
    // request's completion frees the depth slot — the response staged by
    // that parse must still be flushed, not stranded until the idle
    // timeout closes the socket under it.
    use std::io::{Read, Write};
    let cfg = ServiceConfig {
        workers: 1,
        pipeline_depth: 1,
        ..ServiceConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();

    // Valid + valid burst.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let t0 = std::time::Instant::now();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    assert_eq!(text.matches("HTTP/1.1 200 OK").count(), 2, "{text}");
    assert!(t0.elapsed() < Duration::from_secs(5), "{:?}", t0.elapsed());

    // Valid + malformed burst: the 400 must arrive after the 200.
    let mut s = std::net::TcpStream::connect(&addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\nGARBAGE\r\n\r\n")
        .unwrap();
    let t0 = std::time::Instant::now();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
    assert!(text.contains("HTTP/1.1 400 Bad Request"), "{text}");
    assert!(text.contains("malformed request"), "{text}");
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "400 stranded until idle timeout: {:?}",
        t0.elapsed()
    );
    handle.shutdown_and_join();
}

#[test]
fn max_connections_cap_sheds_excess_connections() {
    let cfg = ServiceConfig {
        workers: 1,
        max_connections: 2,
        ..ServiceConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).expect("bind");
    let addr = handle.addr().to_string();

    let mut c1 = Client::new(addr.clone());
    let mut c2 = Client::new(addr.clone());
    assert_eq!(c1.request("GET", "/healthz", None).unwrap().status, 200);
    assert_eq!(c2.request("GET", "/healthz", None).unwrap().status, 200);

    // A third connection is accepted and immediately closed: the client
    // sees EOF before any response.
    let mut c3 = Client::new(addr.clone()).with_timeout(Duration::from_secs(5));
    let err = c3.request("GET", "/healthz", None);
    assert!(err.is_err(), "third connection must be shed at the cap");

    // Capped shedding is not counted as a served connection, and the
    // gauge stays at the cap.
    assert_eq!(handle.service().connections(), 2);
    assert_eq!(handle.service().open_connections(), 2);

    // Dropping one frees capacity for a newcomer.
    drop(c1);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.service().open_connections() >= 2 {
        assert!(std::time::Instant::now() < deadline, "close not observed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut c4 = Client::new(addr.clone());
    assert_eq!(c4.request("GET", "/healthz", None).unwrap().status, 200);
    drop((c2, c4));
    handle.shutdown_and_join();
}

#[test]
fn shutdown_endpoint_stops_the_server() {
    let (handle, addr) = start(2);
    let resp = request(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(resp.status, 200);
    // join() returns only once the acceptor and all workers exited.
    handle.join();
    // The port no longer accepts requests.
    assert!(request(&addr, "GET", "/healthz", None).is_err());
}
