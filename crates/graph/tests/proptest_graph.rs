//! Property-based invariants of the graph substrate.

use proptest::prelude::*;
use saphyra_graph::bbbfs::BiBfs;
use saphyra_graph::bfs::BfsWorkspace;
use saphyra_graph::{Bicomps, BlockCutTree, Graph, GraphBuilder};

/// Strategy: a random simple graph with 2..=16 nodes.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=16).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..=max_edges.max(1))
            .prop_map(move |edges| GraphBuilder::new(n).edges(edges).build().unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_adjacency_is_sorted_and_symmetric(g in arb_graph()) {
        for v in g.nodes() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            for &u in ns {
                prop_assert!(g.has_edge(u, v));
                prop_assert_eq!(g.edge_id(u, v), g.edge_id(v, u));
            }
        }
        prop_assert_eq!(g.edges().count(), g.num_edges());
    }

    #[test]
    fn degree_sum_equals_twice_edges(g in arb_graph()) {
        let total: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn bicomps_partition_edges(g in arb_graph()) {
        let bic = Bicomps::compute(&g);
        // Every edge has exactly one component label in range.
        for (_, _, eid) in g.edges() {
            prop_assert!((bic.bicomp_of_edge(eid) as usize) < bic.num_bicomps.max(1));
        }
        // A node is a cutpoint iff it belongs to >= 2 components.
        for v in g.nodes() {
            prop_assert_eq!(bic.is_cutpoint[v as usize], bic.bicomps_of(v).len() > 1);
        }
        // Component node lists are consistent with edge labels.
        for (u, v, eid) in g.edges() {
            let b = bic.bicomp_of_edge(eid);
            prop_assert!(bic.nodes_of(b).contains(&u));
            prop_assert!(bic.nodes_of(b).contains(&v));
        }
    }

    #[test]
    fn bicomps_are_internally_connected(g in arb_graph()) {
        let bic = Bicomps::compute(&g);
        let mut ws = BfsWorkspace::new(g.num_nodes());
        for b in 0..bic.num_bicomps as u32 {
            let nodes = bic.nodes_of(b);
            ws.run_counting(&g, nodes[0], None, |slot| bic.bicomp_of_slot(&g, slot) == b);
            for &v in nodes {
                prop_assert!(ws.visited(v), "component {b} node {v} unreachable");
            }
        }
    }

    #[test]
    fn blockcut_branches_partition_component(g in arb_graph()) {
        let bic = Bicomps::compute(&g);
        let tree = BlockCutTree::compute(&bic);
        for (ci, &c) in tree.cutpoints.iter().enumerate() {
            let total: u64 = tree.branches(ci as u32).map(|(_, w)| w as u64).sum();
            // Branches cover everything except the cutpoint itself.
            let n_c = tree
                .branches(ci as u32)
                .next()
                .map(|(b, _)| tree.comp_total_of_bicomp[b as usize])
                .unwrap();
            prop_assert_eq!(total, n_c as u64 - 1, "cutpoint {}", c);
        }
    }

    #[test]
    fn bidirectional_bfs_matches_unidirectional(g in arb_graph()) {
        let n = g.num_nodes();
        let mut ws = BfsWorkspace::new(n);
        let mut bb = BiBfs::new(n);
        for s in g.nodes().take(4) {
            ws.run_counting(&g, s, None, |_| true);
            for t in g.nodes() {
                match bb.query(&g, s, t, |_| true) {
                    None => prop_assert!(!ws.visited(t)),
                    Some(r) => {
                        prop_assert_eq!(r.dist, ws.dist(t));
                        prop_assert!((r.sigma_st - ws.sigma(t)).abs() < 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn brandes_values_are_sane(g in arb_graph()) {
        let bc = saphyra_graph::brandes::betweenness_exact(&g);
        for (v, &x) in bc.iter().enumerate() {
            prop_assert!((0.0..=1.0).contains(&x), "node {v}: {x}");
            // Degree-<2 nodes are never interior.
            if g.degree(v as u32) < 2 {
                prop_assert_eq!(x, 0.0);
            }
        }
    }

    #[test]
    fn subset_diameter_upper_is_sound_on_multi_component_subsets(
        g in arb_graph(),
        picks in proptest::collection::vec(0usize..1_000_000, 1..=8),
    ) {
        // arb_graph frequently produces disconnected graphs; the subset may
        // intersect several components, and the §IV-C upper bound must
        // dominate the exact subset diameter on every one of them.
        let mut subset: Vec<u32> = picks
            .iter()
            .map(|&ix| (ix % g.num_nodes()) as u32)
            .collect();
        subset.sort_unstable();
        subset.dedup();
        let exact = saphyra_graph::diameter::exact_subset_diameter(&g, &subset);
        let mut ws = BfsWorkspace::new(g.num_nodes());
        let upper = saphyra_graph::diameter::subset_diameter_upper(&g, &subset, &mut ws);
        prop_assert!(upper >= exact, "subset {:?}: upper {} < exact {}", subset, upper, exact);
    }

    #[test]
    fn edge_list_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        saphyra_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = saphyra_graph::io::read_edge_list(&buf[..], g.num_nodes()).unwrap();
        prop_assert_eq!(g.num_nodes(), g2.num_nodes());
        prop_assert_eq!(g.num_edges(), g2.num_edges());
    }
}
