//! Property-based equivalence of the succinct memory tier: an Elias–Fano
//! compacted graph must answer every CSR query exactly like the plain
//! `Vec<usize>` offsets it replaced, across the degenerate shapes the
//! serving path meets — empty graphs, isolated nodes, and max-degree skew.

use proptest::prelude::*;
use proptest::BoxedStrategy;
use saphyra_graph::succinct::EliasFano;
use saphyra_graph::{Graph, GraphBuilder};

/// Strategy: a random simple graph with 0..=24 nodes, biased toward the
/// degenerate shapes the serving path meets: `kind 0` is the empty graph,
/// uniform arms leave isolated high-id nodes whenever edges cluster low,
/// and the hub arm produces max-degree skew around node 0.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (0usize..10, 1usize..=24).prop_flat_map(|(kind, n)| -> BoxedStrategy<Graph> {
        match kind {
            0 => Just(GraphBuilder::new(0).build().unwrap()).boxed(),
            1..=6 => proptest::collection::vec((0..n as u32, 0..n as u32), 0..=3 * n)
                .prop_map(move |edges| GraphBuilder::new(n).edges(edges).build().unwrap())
                .boxed(),
            // Star around node 0: one max-degree node, the rest degree <= 1.
            _ => proptest::collection::vec(0..n as u32, 0..n)
                .prop_map(move |vs| {
                    GraphBuilder::new(n)
                        .edges(vs.into_iter().map(|v| (0, v)))
                        .build()
                        .unwrap()
                })
                .boxed(),
        }
    })
}

fn plain_offsets(g: &Graph) -> Vec<usize> {
    g.csr_offsets().iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn succinct_offsets_equal_plain_offsets(g in arb_graph()) {
        let offsets = plain_offsets(&g);
        let ef = EliasFano::from_values(&offsets);
        prop_assert_eq!(ef.len(), offsets.len());
        for (i, &off) in offsets.iter().enumerate() {
            prop_assert_eq!(ef.get(i) as usize, off, "offset {i}");
        }
        for i in 0..offsets.len() - 1 {
            let (a, b) = ef.pair(i);
            prop_assert_eq!((a as usize, b as usize), (offsets[i], offsets[i + 1]));
        }
        let decoded: Vec<usize> = ef.iter().map(|v| v as usize).collect();
        prop_assert_eq!(decoded, offsets);
    }

    #[test]
    fn compacted_graph_answers_identically(g in arb_graph()) {
        let mut c = g.clone();
        c.compact();
        prop_assert!(c.csr_offsets().is_succinct());
        prop_assert_eq!(g.num_nodes(), c.num_nodes());
        prop_assert_eq!(g.num_edges(), c.num_edges());
        for v in g.nodes() {
            prop_assert_eq!(g.degree(v), c.degree(v));
            prop_assert_eq!(g.neighbors(v), c.neighbors(v));
            prop_assert_eq!(g.slot_range(v), c.slot_range(v));
            for u in g.nodes() {
                prop_assert_eq!(g.edge_id(v, u), c.edge_id(v, u));
            }
        }
        prop_assert_eq!(
            g.edges().collect::<Vec<_>>(),
            c.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn from_parts_accepts_exactly_its_own_encoding(g in arb_graph()) {
        let offsets = plain_offsets(&g);
        let ef = EliasFano::from_values(&offsets);
        let (low, upper, samples) = ef.parts();
        let re = EliasFano::from_parts(
            ef.len(),
            ef.universe(),
            ef.low_bits(),
            low.clone(),
            upper.clone(),
            samples.clone(),
        );
        prop_assert!(re.is_ok(), "own parts rejected: {:?}", re.err());
        let re = re.unwrap();
        prop_assert_eq!(
            re.iter().collect::<Vec<_>>(),
            ef.iter().collect::<Vec<_>>()
        );
    }
}
