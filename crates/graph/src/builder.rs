//! Deduplicating graph construction from edge lists.

use crate::csr::{Graph, NodeId};
use crate::error::GraphError;

/// Accumulates edges and produces a [`Graph`].
///
/// Self-loops are dropped and duplicate edges collapsed, matching the paper's
/// preprocessing ("we ignore the information on the weight and direction of
/// the edges", §V-A).
///
/// ```
/// use saphyra_graph::GraphBuilder;
/// let g = GraphBuilder::new(3).edges([(0, 1), (1, 0), (1, 1), (1, 2)]).build().unwrap();
/// assert_eq!(g.num_edges(), 2); // duplicate and self-loop removed
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on nodes `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_edge_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Adds one undirected edge (direction and duplicates are irrelevant).
    pub fn edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many edges.
    pub fn edges<I: IntoIterator<Item = (NodeId, NodeId)>>(mut self, it: I) -> Self {
        self.edges.extend(it);
        self
    }

    /// Adds one edge in place (non-consuming, for loops).
    pub fn push(&mut self, u: NodeId, v: NodeId) {
        self.edges.push((u, v));
    }

    /// Current number of (raw, possibly duplicate) edges added.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Validates, deduplicates and builds the CSR graph.
    pub fn build(self) -> Result<Graph, GraphError> {
        let GraphBuilder { n, mut edges } = self;
        if n > u32::MAX as usize {
            return Err(GraphError::TooManyNodes(n as u64));
        }
        for &(u, v) in &edges {
            let bad = [u, v].into_iter().find(|&x| x as usize >= n);
            if let Some(node) = bad {
                return Err(GraphError::EndpointOutOfRange {
                    node: node as u64,
                    n: n as u64,
                });
            }
        }

        // Canonicalize, drop self-loops, dedup: yields the undirected edge
        // list in lexicographic order, whose index is the edge id.
        for e in edges.iter_mut() {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        edges.retain(|&(u, v)| u != v);
        edges.sort_unstable();
        edges.dedup();
        let m = edges.len();

        // Counting pass for CSR offsets over both directions.
        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in &edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        // Fill pass. Because `edges` is sorted lexicographically by
        // (min, max), per-node forward slots are appended in ascending
        // neighbor order; backward slots (v -> u with u < v) also arrive in
        // ascending order of u for fixed v, but interleave with forward
        // slots, so a final per-node sort is required.
        let total = 2 * m;
        let mut neighbors = vec![0 as NodeId; total];
        let mut edge_ids = vec![0u32; total];
        let mut cursor = offsets.clone();
        for (id, &(u, v)) in edges.iter().enumerate() {
            let cu = cursor[u as usize];
            neighbors[cu] = v;
            edge_ids[cu] = id as u32;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize];
            neighbors[cv] = u;
            edge_ids[cv] = id as u32;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            let r = offsets[v]..offsets[v + 1];
            // Sort (neighbor, edge_id) pairs by neighbor. Small slices; an
            // insertion-friendly unstable sort is fine.
            let mut pairs: Vec<(NodeId, u32)> =
                r.clone().map(|s| (neighbors[s], edge_ids[s])).collect();
            pairs.sort_unstable();
            for (k, s) in r.enumerate() {
                neighbors[s] = pairs[k].0;
                edge_ids[s] = pairs[k].1;
            }
        }

        Ok(Graph::from_parts(offsets, neighbors, edge_ids, m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let g = GraphBuilder::new(3)
            .edges([(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)])
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = GraphBuilder::new(2).edge(0, 5).build().unwrap_err();
        assert!(matches!(
            err,
            GraphError::EndpointOutOfRange { node: 5, .. }
        ));
    }

    #[test]
    fn adjacency_sorted_for_all_nodes() {
        // Deliberately insert in scrambled order.
        let g = GraphBuilder::new(6)
            .edges([(5, 0), (3, 0), (0, 1), (4, 0), (2, 0)])
            .build()
            .unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
        for v in g.nodes() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "unsorted at {v}");
        }
    }

    #[test]
    fn push_and_capacity_api() {
        let mut b = GraphBuilder::new(3).with_edge_capacity(4);
        b.push(0, 1);
        b.push(1, 2);
        assert_eq!(b.raw_edge_count(), 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_ids_are_lexicographic_rank() {
        let g = GraphBuilder::new(4)
            .edges([(3, 2), (1, 0), (2, 0)])
            .build()
            .unwrap();
        // canonical sorted edges: (0,1)=0, (0,2)=1, (2,3)=2
        assert_eq!(g.edge_id(0, 1), Some(0));
        assert_eq!(g.edge_id(2, 0), Some(1));
        assert_eq!(g.edge_id(3, 2), Some(2));
    }
}
