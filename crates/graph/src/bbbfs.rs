//! Balanced bidirectional BFS (Borassi–Natale, KADABRA).
//!
//! For a node pair `(s, t)` the sampler must (a) compute the number of
//! shortest paths `σ_st` and (b) draw one of them uniformly. A unidirectional
//! BFS costs Θ(m) per sample; the bidirectional variant expands the cheaper
//! frontier of two simultaneous searches and, per Lemma 21 of the paper
//! (Theorem 4 of KADABRA), touches only `n^{1/2+o(1)}` edges on
//! power-law-ish graphs. This module is shared by the KADABRA baseline
//! (whole-graph sampling) and SaPHyRa_bc's `Gen_bc` (sampling restricted to
//! one biconnected component via an edge filter).
//!
//! Correctness sketch: each side settles complete BFS levels. When the sides
//! have jointly covered the true distance `D` (`Ls + Lt ≥ D`), every
//! shortest path crosses the *cut level* `L = max(0, D − Lt)` at exactly one
//! node `u` with `ds(u) = L`, `dt(u) = D − L`, both finalized, so
//! `σ_st = Σ_u σs(u) · σt(u)` and a uniform path is a σ-weighted meeting
//! node plus two independent σ-weighted backward walks.

use crate::csr::{Graph, NodeId};

const UNSET_DIST: u32 = u32::MAX;

/// One direction of the bidirectional search, stamp-cleared like
/// [`crate::bfs::BfsWorkspace`].
#[derive(Debug)]
struct Side {
    dist: Vec<u32>,
    sigma: Vec<f64>,
    stamp: Vec<u32>,
    generation: u32,
    order: Vec<NodeId>,
    level_starts: Vec<usize>,
    /// Sum of degrees of the current frontier (balance heuristic).
    frontier_degree: u64,
    /// Deepest fully-expanded level.
    depth: u32,
}

impl Side {
    fn new(n: usize) -> Self {
        Side {
            dist: vec![0; n],
            sigma: vec![0.0; n],
            stamp: vec![0; n],
            generation: 0,
            order: Vec::new(),
            level_starts: Vec::new(),
            frontier_degree: 0,
            depth: 0,
        }
    }

    fn reset(&mut self, root: NodeId, g: &Graph) {
        self.generation = self.generation.checked_add(1).unwrap_or_else(|| {
            self.stamp.fill(0);
            1
        });
        self.order.clear();
        self.level_starts.clear();
        self.depth = 0;
        self.frontier_degree = 0;
        self.settle(root, 0, 1.0, g);
        self.level_starts.push(0);
        self.level_starts.push(1);
    }

    #[inline]
    fn visited(&self, v: NodeId) -> bool {
        self.stamp[v as usize] == self.generation
    }

    #[inline]
    fn dist(&self, v: NodeId) -> u32 {
        if self.visited(v) {
            self.dist[v as usize]
        } else {
            UNSET_DIST
        }
    }

    #[inline]
    fn sigma(&self, v: NodeId) -> f64 {
        self.sigma[v as usize]
    }

    #[inline]
    fn settle(&mut self, v: NodeId, d: u32, s: f64, g: &Graph) {
        self.stamp[v as usize] = self.generation;
        self.dist[v as usize] = d;
        self.sigma[v as usize] = s;
        self.order.push(v);
        self.frontier_degree += g.degree(v) as u64;
    }

    fn frontier_range(&self) -> std::ops::Range<usize> {
        let k = self.level_starts.len();
        self.level_starts[k - 2]..self.level_starts[k - 1]
    }

    fn level_range(&self, d: u32) -> std::ops::Range<usize> {
        self.level_starts[d as usize]..self.level_starts[d as usize + 1]
    }

    /// Expands one full level, reporting every newly settled node to
    /// `on_settle`. Returns false if the frontier was empty (side exhausted).
    fn expand<F, S>(&mut self, g: &Graph, keep_edge: &mut F, mut on_settle: S) -> bool
    where
        F: FnMut(usize) -> bool,
        S: FnMut(NodeId),
    {
        let frontier = self.frontier_range();
        if frontier.is_empty() {
            return false;
        }
        let d = self.depth;
        self.frontier_degree = 0;
        for i in frontier {
            let v = self.order[i];
            let sv = self.sigma[v as usize];
            for slot in g.slot_range(v) {
                if !keep_edge(slot) {
                    continue;
                }
                let w = g.neighbor_at(slot);
                if !self.visited(w) {
                    self.settle(w, d + 1, sv, g);
                    on_settle(w);
                } else if self.dist[w as usize] == d + 1 {
                    self.sigma[w as usize] += sv;
                }
            }
        }
        self.depth = d + 1;
        self.level_starts.push(self.order.len());
        true
    }
}

/// Outcome of a bidirectional pair query: distance, path count and the cut
/// level used for meeting-node enumeration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairResult {
    /// Shortest-path distance `d(s, t)`.
    pub dist: u32,
    /// Number of shortest `s`–`t` paths (`f64`; exact for small counts).
    pub sigma_st: f64,
    cut_level: u32,
}

/// Reusable bidirectional-BFS workspace.
#[derive(Debug)]
pub struct BiBfs {
    fwd: Side,
    bwd: Side,
    s: NodeId,
    t: NodeId,
    /// Edges touched by the last query (for the Lemma 21 ablation bench).
    pub edges_touched: u64,
}

impl BiBfs {
    /// Allocates a workspace for graphs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        BiBfs {
            fwd: Side::new(n),
            bwd: Side::new(n),
            s: 0,
            t: 0,
            edges_touched: 0,
        }
    }

    /// Computes distance and `σ_st`, or `None` when `s` and `t` are
    /// disconnected (within the filtered edge set). `keep_edge` filters CSR
    /// slots as in [`crate::bfs::BfsWorkspace::run_counting`].
    pub fn query<F>(
        &mut self,
        g: &Graph,
        s: NodeId,
        t: NodeId,
        mut keep_edge: F,
    ) -> Option<PairResult>
    where
        F: FnMut(usize) -> bool,
    {
        self.s = s;
        self.t = t;
        self.fwd.reset(s, g);
        self.bwd.reset(t, g);
        self.edges_touched = 0;
        if s == t {
            return Some(PairResult {
                dist: 0,
                sigma_st: 1.0,
                cut_level: 0,
            });
        }

        let mut best = UNSET_DIST;
        loop {
            if best != UNSET_DIST && self.fwd.depth + self.bwd.depth >= best {
                break;
            }
            // Balance: expand the side whose frontier is cheaper.
            let expand_fwd = self.fwd.frontier_degree <= self.bwd.frontier_degree;
            let (active, passive) = if expand_fwd {
                (&mut self.fwd, &self.bwd)
            } else {
                (&mut self.bwd, &self.fwd)
            };
            let mut touched = 0u64;
            let new_depth = active.depth + 1;
            let progressed = active.expand(
                g,
                &mut |slot| {
                    touched += 1;
                    keep_edge(slot)
                },
                |w| {
                    if passive.visited(w) {
                        let cand = new_depth + passive.dist[w as usize];
                        if cand < best {
                            best = cand;
                        }
                    }
                },
            );
            self.edges_touched += touched;
            if !progressed {
                return None; // a side exhausted: disconnected
            }
        }

        let dist = best;
        let cut_level = dist.saturating_sub(self.bwd.depth).min(self.fwd.depth);
        let back_level = dist - cut_level;
        let mut sigma_st = 0.0;
        for i in self.fwd.level_range(cut_level) {
            let u = self.fwd.order[i];
            if self.bwd.dist(u) == back_level {
                sigma_st += self.fwd.sigma(u) * self.bwd.sigma(u);
            }
        }
        debug_assert!(sigma_st > 0.0);
        Some(PairResult {
            dist,
            sigma_st,
            cut_level,
        })
    }

    /// Samples one uniformly random shortest path for the pair of the last
    /// successful [`BiBfs::query`] (the same `keep_edge` must be supplied).
    /// Returns the node sequence `s ..= t`.
    pub fn sample_path<R, F>(
        &self,
        g: &Graph,
        res: PairResult,
        rng: &mut R,
        keep_edge: F,
    ) -> Vec<NodeId>
    where
        R: rand::Rng + ?Sized,
        F: FnMut(usize) -> bool,
    {
        let mut path = Vec::new();
        self.sample_path_into(g, res, rng, keep_edge, &mut path);
        path
    }

    /// Allocation-free variant of [`BiBfs::sample_path`]: fills `path`
    /// (cleared first) — the samplers call this millions of times.
    pub fn sample_path_into<R, F>(
        &self,
        g: &Graph,
        res: PairResult,
        rng: &mut R,
        mut keep_edge: F,
        path: &mut Vec<NodeId>,
    ) where
        R: rand::Rng + ?Sized,
        F: FnMut(usize) -> bool,
    {
        path.clear();
        if res.dist == 0 {
            path.push(self.s);
            return;
        }
        let back_level = res.dist - res.cut_level;
        // Meeting node ∝ σs(u)·σt(u).
        let mut x = rng.gen::<f64>() * res.sigma_st;
        let mut meet = NodeId::MAX;
        for i in self.fwd.level_range(res.cut_level) {
            let u = self.fwd.order[i];
            if self.bwd.dist(u) == back_level {
                meet = u;
                x -= self.fwd.sigma(u) * self.bwd.sigma(u);
                if x <= 0.0 {
                    break;
                }
            }
        }
        debug_assert!(meet != NodeId::MAX);

        path.resize(res.dist as usize + 1, 0);
        path[res.cut_level as usize] = meet;
        // Backward σ-weighted walk to s through the forward side.
        let mut v = meet;
        for d in (0..res.cut_level).rev() {
            v = weighted_pred(&self.fwd, g, v, d, rng, &mut keep_edge);
            path[d as usize] = v;
        }
        // Forward walk to t through the backward side (dt decreasing).
        let mut v = meet;
        for d in (0..back_level).rev() {
            v = weighted_pred(&self.bwd, g, v, d, rng, &mut keep_edge);
            path[(res.dist - d) as usize] = v;
        }
        debug_assert_eq!(path[0], self.s);
        debug_assert_eq!(path[res.dist as usize], self.t);
    }
}

#[inline]
fn weighted_pred<R, F>(
    side: &Side,
    g: &Graph,
    v: NodeId,
    d: u32,
    rng: &mut R,
    keep_edge: &mut F,
) -> NodeId
where
    R: rand::Rng + ?Sized,
    F: FnMut(usize) -> bool,
{
    let mut x = rng.gen::<f64>() * side.sigma(v);
    let mut last = NodeId::MAX;
    for slot in g.slot_range(v) {
        if !keep_edge(slot) {
            continue;
        }
        let u = g.neighbor_at(slot);
        if side.visited(u) && side.dist(u) == d {
            last = u;
            x -= side.sigma(u);
            if x <= 0.0 {
                return u;
            }
        }
    }
    debug_assert!(
        last != NodeId::MAX,
        "missing predecessor in bidirectional DAG"
    );
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::BfsWorkspace;
    use crate::fixtures;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Checks dist/σ against a unidirectional reference for all pairs.
    fn check_against_reference(g: &Graph) {
        let n = g.num_nodes();
        let mut bb = BiBfs::new(n);
        let mut ws = BfsWorkspace::new(n);
        for s in g.nodes() {
            ws.run_counting(g, s, None, |_| true);
            for t in g.nodes() {
                let res = bb.query(g, s, t, |_| true);
                if !ws.visited(t) {
                    assert!(res.is_none(), "{s}->{t} should be disconnected");
                } else {
                    let r = res.expect("connected");
                    assert_eq!(r.dist, ws.dist(t), "dist {s}->{t}");
                    assert!(
                        (r.sigma_st - ws.sigma(t)).abs() < 1e-9,
                        "sigma {s}->{t}: {} vs {}",
                        r.sigma_st,
                        ws.sigma(t)
                    );
                }
            }
        }
    }

    #[test]
    fn matches_unidirectional_on_fixtures() {
        for g in [
            fixtures::path_graph(7),
            fixtures::cycle_graph(8),
            fixtures::grid_graph(5, 4),
            fixtures::paper_fig2(),
            fixtures::lollipop_graph(5, 4),
            fixtures::disconnected_mix(),
            fixtures::binary_tree(4),
        ] {
            check_against_reference(&g);
        }
    }

    #[test]
    fn matches_unidirectional_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let n = 30;
            let mut b = crate::GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen::<f64>() < 0.12 {
                        b.push(u, v);
                    }
                }
            }
            check_against_reference(&b.build().unwrap());
        }
    }

    #[test]
    fn self_pair() {
        let g = fixtures::path_graph(3);
        let mut bb = BiBfs::new(3);
        let r = bb.query(&g, 1, 1, |_| true).unwrap();
        assert_eq!(r.dist, 0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(bb.sample_path(&g, r, &mut rng, |_| true), vec![1]);
    }

    #[test]
    fn sampled_paths_are_valid() {
        let g = fixtures::grid_graph(6, 5);
        let mut bb = BiBfs::new(30);
        let mut rng = StdRng::seed_from_u64(5);
        for (s, t) in [(0u32, 29u32), (3, 27), (10, 19)] {
            let r = bb.query(&g, s, t, |_| true).unwrap();
            for _ in 0..30 {
                let p = bb.sample_path(&g, r, &mut rng, |_| true);
                assert_eq!(p.len(), r.dist as usize + 1);
                assert_eq!(p[0], s);
                assert_eq!(*p.last().unwrap(), t);
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn sampled_paths_are_uniform_small() {
        // 2x3 grid, corner to corner: 3 distinct shortest paths.
        let g = fixtures::grid_graph(3, 2);
        let mut bb = BiBfs::new(6);
        let r = bb.query(&g, 0, 5, |_| true).unwrap();
        assert_eq!(r.dist, 3);
        assert_eq!(r.sigma_st, 3.0);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = std::collections::BTreeMap::new();
        let trials = 6000;
        for _ in 0..trials {
            let p = bb.sample_path(&g, r, &mut rng, |_| true);
            *counts.entry(p).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 3);
        for &c in counts.values() {
            let frac = c as f64 / trials as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.04, "frac={frac}");
        }
    }

    #[test]
    fn respects_edge_filter() {
        // Two triangles joined by a bridge; filtering out the bridge
        // disconnects the halves.
        let g = fixtures::two_triangles_bridge();
        let bridge = g.edge_id(2, 3).unwrap();
        let mut bb = BiBfs::new(6);
        let res = bb.query(&g, 0, 4, |slot| g.edge_id_at(slot) != bridge);
        assert!(res.is_none());
        let res = bb.query(&g, 0, 2, |slot| g.edge_id_at(slot) != bridge);
        assert_eq!(res.unwrap().dist, 1);
    }

    #[test]
    fn bidirectional_touches_fewer_edges_than_full_bfs_on_grid() {
        let g = fixtures::grid_graph(40, 40);
        let mut bb = BiBfs::new(1600);
        // Adjacent pair in the middle: bidirectional should stay local.
        let s = 20 * 40 + 20;
        let r = bb.query(&g, s, s + 1, |_| true).unwrap();
        assert_eq!(r.dist, 1);
        assert!(
            bb.edges_touched < (2 * g.num_edges() as u64) / 4,
            "touched {} of {}",
            bb.edges_touched,
            2 * g.num_edges()
        );
    }
}

#[cfg(test)]
mod distribution_tests {
    use super::*;
    use crate::bfs::BfsWorkspace;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Enumerates every shortest s-t path by DFS over the BFS DAG.
    fn enumerate_paths(g: &Graph, ws: &BfsWorkspace, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        let mut stack = vec![t];
        fn recurse(
            g: &Graph,
            ws: &BfsWorkspace,
            s: NodeId,
            stack: &mut Vec<NodeId>,
            out: &mut Vec<Vec<NodeId>>,
        ) {
            let v = *stack.last().unwrap();
            if v == s {
                let mut p: Vec<NodeId> = stack.clone();
                p.reverse();
                out.push(p);
                return;
            }
            let d = ws.dist(v);
            for &u in g.neighbors(v) {
                if ws.visited(u) && ws.dist(u) + 1 == d {
                    stack.push(u);
                    recurse(g, ws, s, stack, out);
                    stack.pop();
                }
            }
        }
        recurse(g, ws, s, &mut stack, &mut out);
        out
    }

    #[test]
    fn sampled_paths_are_uniform_against_enumeration() {
        let mut grng = StdRng::seed_from_u64(77);
        let mut rng = StdRng::seed_from_u64(78);
        for round in 0..5 {
            let n = 12 + round;
            let mut b = GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if grng.gen::<f64>() < 0.25 {
                        b.push(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            let mut ws = BfsWorkspace::new(n);
            let mut bb = BiBfs::new(n);
            // Pick the pair with the most shortest paths for a sharp test.
            let (mut best, mut best_pair) = (0.0f64, None);
            for s in g.nodes() {
                ws.run_counting(&g, s, None, |_| true);
                for t in g.nodes() {
                    if t != s && ws.visited(t) && ws.sigma(t) > best && ws.dist(t) >= 2 {
                        best = ws.sigma(t);
                        best_pair = Some((s, t));
                    }
                }
            }
            let Some((s, t)) = best_pair else { continue };
            ws.run_counting(&g, s, None, |_| true);
            let all_paths = enumerate_paths(&g, &ws, s, t);
            assert_eq!(all_paths.len() as f64, ws.sigma(t));
            let res = bb.query(&g, s, t, |_| true).unwrap();
            assert_eq!(res.sigma_st, all_paths.len() as f64);

            let trials = 2000 * all_paths.len();
            let mut counts: std::collections::HashMap<Vec<NodeId>, usize> =
                std::collections::HashMap::new();
            let mut path = Vec::new();
            for _ in 0..trials {
                bb.sample_path_into(&g, res, &mut rng, |_| true, &mut path);
                *counts.entry(path.clone()).or_insert(0) += 1;
            }
            let expect = trials as f64 / all_paths.len() as f64;
            for p in &all_paths {
                let got = *counts.get(p).unwrap_or(&0) as f64;
                assert!(
                    (got - expect).abs() < 5.0 * expect.sqrt() + 0.1 * expect,
                    "round {round}: path {p:?} got {got} expect {expect}"
                );
            }
            // No invalid paths were produced.
            assert_eq!(counts.len(), all_paths.len());
        }
    }
}
