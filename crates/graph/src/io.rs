//! Edge-list I/O (the SNAP/DIMACS interchange format the paper's datasets
//! ship in): one `u v` pair per line, `#`-prefixed comments ignored.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::error::GraphError;

/// Parses an edge list from any reader. Node count is `1 + max id` unless
/// `min_nodes` — or a `# nodes: N` header as written by
/// [`write_edge_list`] — demands more (isolated trailing nodes).
///
/// Every non-comment line must be exactly `u v`: lines with fewer or more
/// tokens (e.g. a weighted `u v w` list, whose weights would otherwise be
/// silently discarded) are rejected with a [`GraphError::Parse`] naming
/// the line. A `# nodes: N` header is honored wherever it appears —
/// before, between or after edge lines — and `# nodes: 0` is a no-op
/// (the edge lines alone determine the node count).
pub fn read_edge_list<R: Read>(reader: R, min_nodes: usize) -> Result<Graph, GraphError> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id: u64 = 0;
    let mut min_nodes = min_nodes;
    let mut line = String::new();
    let mut reader = BufReader::new(reader);
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            if let Some(rest) = trimmed.strip_prefix("# nodes:") {
                let n: u64 = rest.trim().parse().map_err(|_| GraphError::Parse {
                    line: lineno,
                    content: trimmed.to_string(),
                })?;
                if n > u32::MAX as u64 {
                    return Err(GraphError::TooManyNodes(n));
                }
                min_nodes = min_nodes.max(n as usize);
            }
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64, GraphError> {
            tok.and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| GraphError::Parse {
                    line: lineno,
                    content: trimmed.to_string(),
                })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        if it.next().is_some() {
            // Trailing tokens mean this is not the plain `u v` format —
            // most likely a weighted list (`u v w`) whose weights would be
            // silently discarded. Refuse instead of quietly degrading.
            return Err(GraphError::Parse {
                line: lineno,
                content: trimmed.to_string(),
            });
        }
        if u > u32::MAX as u64 || v > u32::MAX as u64 {
            return Err(GraphError::TooManyNodes(u.max(v)));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as u32, v as u32));
    }
    let n = if edges.is_empty() {
        min_nodes
    } else {
        min_nodes.max(max_id as usize + 1)
    };
    GraphBuilder::new(n).edges(edges).build()
}

/// Loads an edge-list file.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, 0)
}

/// Writes the graph as an edge list (one canonical `u v` line per edge).
/// A machine-readable `# nodes: N` header preserves isolated trailing nodes
/// across a [`read_edge_list`] round trip — the edge lines alone only
/// recover `1 + max id`.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# saphyra edge list: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    )?;
    writeln!(w, "# nodes: {}", g.num_nodes())?;
    for (u, v, _) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Saves the graph to a file.
pub fn save_edge_list<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(g, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn round_trip() {
        let g = fixtures::paper_fig2();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], 0).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(g.num_edges(), g2.num_edges());
        for (u, v, _) in g.edges() {
            assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# header\n\n0 1\n # another\n1 2\n";
        let g = read_edge_list(text.as_bytes(), 0).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn min_nodes_pads_isolated_tail() {
        let g = read_edge_list("0 1\n".as_bytes(), 5).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn round_trip_preserves_isolated_trailing_nodes() {
        // 5-node graph whose last two nodes are isolated: the edge lines
        // alone recover only 3 nodes, the `# nodes:` header restores 5.
        let g = crate::builder::GraphBuilder::new(5)
            .edges([(0, 1), (1, 2)])
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], 0).unwrap();
        assert_eq!(g2.num_nodes(), 5);
        assert_eq!(g2.num_edges(), 2);
        assert_eq!(g2.degree(3), 0);
        assert_eq!(g2.degree(4), 0);
    }

    #[test]
    fn nodes_header_is_honored_and_validated() {
        let g = read_edge_list("# nodes: 7\n0 1\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_nodes(), 7);
        // Edges may still exceed the header; max id wins.
        let g = read_edge_list("# nodes: 2\n0 4\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_nodes(), 5);
        // Garbage header is rejected, not silently ignored.
        let err = read_edge_list("# nodes: x\n0 1\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list("# nodes: 99999999999\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, GraphError::TooManyNodes(_)));
    }

    #[test]
    fn rejects_garbage() {
        let err = read_edge_list("0 x\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list("7\n".as_bytes(), 0).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn rejects_lines_with_wrong_token_count() {
        // A weighted SNAP file (`u v w`) must fail loudly instead of
        // silently dropping the weights.
        let err = read_edge_list("0 1\n1 2 0.5\n".as_bytes(), 0).unwrap_err();
        match err {
            GraphError::Parse { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "1 2 0.5");
            }
            other => panic!("wrong error: {other:?}"),
        }
        // Integer third tokens are no better.
        assert!(matches!(
            read_edge_list("0 1 7\n".as_bytes(), 0).unwrap_err(),
            GraphError::Parse { line: 1, .. }
        ));
        // Too few tokens.
        assert!(matches!(
            read_edge_list("0 1\n3\n".as_bytes(), 0).unwrap_err(),
            GraphError::Parse { line: 2, .. }
        ));
    }

    #[test]
    fn nodes_header_is_honored_anywhere_in_the_file() {
        // Header after all edge lines (a concatenated/reordered file).
        let g = read_edge_list("0 1\n1 2\n# nodes: 6\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.degree(5), 0);
        // Header between edge lines.
        let g = read_edge_list("0 1\n# nodes: 6\n1 2\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_nodes(), 6);
        // Several headers: the largest wins (each is a lower bound).
        let g = read_edge_list("# nodes: 4\n0 1\n# nodes: 6\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_nodes(), 6);
    }

    #[test]
    fn nodes_zero_header_is_a_no_op() {
        // `# nodes: 0` on a non-empty edge list: the edges determine n.
        let g = read_edge_list("# nodes: 0\n0 1\n1 2\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        // Trailing position behaves the same.
        let g = read_edge_list("0 4\n# nodes: 0\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_nodes(), 5);
        // And on an empty list it is a genuinely empty graph.
        let g = read_edge_list("# nodes: 0\n".as_bytes(), 0).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn file_round_trip() {
        let g = fixtures::grid_graph(3, 3);
        let dir = std::env::temp_dir().join("saphyra_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.txt");
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        std::fs::remove_file(path).ok();
    }
}
