//! Breadth-first searches with reusable, stamp-cleared workspaces.
//!
//! Samplers call BFS millions of times; clearing `O(n)` state per call would
//! dominate the running time. A [`BfsWorkspace`] therefore tags every write
//! with a generation stamp and "clears" by bumping the stamp — O(1) per
//! search (perf-book: reuse workhorse collections).
//!
//! All searches accept an *edge filter* on CSR slots. SaPHyRa_bc restricts
//! traversal to a single biconnected component by filtering on the slot's
//! bicomp id instead of materializing per-component subgraphs (only
//! cutpoints carry edges of more than one component, so the filter is nearly
//! free).

use crate::csr::{Graph, NodeId};

/// Sentinel for "unreached" distances.
pub const INFINITY: u32 = u32::MAX;

/// Reusable BFS state: distances, shortest-path counts (`σ`), the visit
/// order, and per-level boundaries.
#[derive(Debug)]
pub struct BfsWorkspace {
    dist: Vec<u32>,
    sigma: Vec<f64>,
    stamp: Vec<u32>,
    generation: u32,
    /// Visit order of the last search (valid after any `run_*` call).
    pub order: Vec<NodeId>,
    /// `level_starts[d]` indexes `order` at the first node of distance `d`;
    /// terminated by `order.len()`.
    pub level_starts: Vec<usize>,
}

impl BfsWorkspace {
    /// Allocates a workspace for graphs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsWorkspace {
            dist: vec![0; n],
            sigma: vec![0.0; n],
            stamp: vec![0; n],
            generation: 0,
            order: Vec::new(),
            level_starts: Vec::new(),
        }
    }

    /// Begins a fresh search; invalidates all previous distances in O(1).
    fn reset(&mut self) {
        self.generation = self.generation.checked_add(1).unwrap_or_else(|| {
            // Stamp space exhausted after 2^32 searches: hard-clear once.
            self.stamp.fill(0);
            1
        });
        self.order.clear();
        self.level_starts.clear();
    }

    /// Whether `v` was reached by the last search.
    #[inline]
    pub fn visited(&self, v: NodeId) -> bool {
        self.stamp[v as usize] == self.generation
    }

    /// Distance of `v` from the last source, or [`INFINITY`] if unreached.
    #[inline]
    pub fn dist(&self, v: NodeId) -> u32 {
        if self.visited(v) {
            self.dist[v as usize]
        } else {
            INFINITY
        }
    }

    /// Number of shortest paths from the last source to `v` (0.0 if
    /// unreached). Counts are `f64`: they overflow `u64` on large graphs and
    /// are only ever used in ratios.
    #[inline]
    pub fn sigma(&self, v: NodeId) -> f64 {
        if self.visited(v) {
            self.sigma[v as usize]
        } else {
            0.0
        }
    }

    #[inline]
    fn settle(&mut self, v: NodeId, d: u32, s: f64) {
        self.stamp[v as usize] = self.generation;
        self.dist[v as usize] = d;
        self.sigma[v as usize] = s;
        self.order.push(v);
    }

    /// Full BFS from `source` computing distances, σ-counts, the visit order
    /// and level boundaries. `keep_edge` filters CSR slots; pass `|_| true`
    /// for the whole graph. If `stop_at` is given, the search still finishes
    /// the level on which the target is found (so σ at that level is final)
    /// and then stops.
    pub fn run_counting<F>(
        &mut self,
        g: &Graph,
        source: NodeId,
        stop_at: Option<NodeId>,
        mut keep_edge: F,
    ) where
        F: FnMut(usize) -> bool,
    {
        self.reset();
        self.settle(source, 0, 1.0);
        self.level_starts.push(0);
        let mut level_begin = 0usize;
        let mut d = 0u32;
        loop {
            let level_end = self.order.len();
            if level_begin == level_end {
                break;
            }
            self.level_starts.push(level_end);
            let mut found_target = false;
            for i in level_begin..level_end {
                let v = self.order[i];
                let sv = self.sigma[v as usize];
                for slot in g.slot_range(v) {
                    if !keep_edge(slot) {
                        continue;
                    }
                    let w = g.neighbor_at(slot);
                    if !self.visited(w) {
                        self.settle(w, d + 1, sv);
                        if stop_at == Some(w) {
                            found_target = true;
                        }
                    } else if self.dist[w as usize] == d + 1 {
                        self.sigma[w as usize] += sv;
                    }
                }
            }
            level_begin = level_end;
            d += 1;
            if found_target {
                break;
            }
        }
        // `level_starts` ends with one redundant boundary equal to
        // `order.len()` exactly when the last level was empty; normalize so
        // the terminator is always present exactly once.
        while self
            .level_starts
            .last()
            .is_some_and(|&b| b == self.order.len())
        {
            self.level_starts.pop();
        }
        self.level_starts.push(self.order.len());
    }

    /// Plain distance BFS (no σ), whole graph.
    pub fn run(&mut self, g: &Graph, source: NodeId) {
        self.run_counting(g, source, None, |_| true);
    }

    /// Eccentricity of the source after a completed search: the maximum
    /// distance among reached nodes.
    pub fn eccentricity(&self) -> u32 {
        self.order
            .last()
            .map(|&v| self.dist[v as usize])
            .unwrap_or(0)
    }

    /// The farthest reached node (ties broken by visit order).
    pub fn farthest(&self) -> Option<NodeId> {
        self.order.last().copied()
    }

    /// Number of nodes reached by the last search.
    pub fn reached(&self) -> usize {
        self.order.len()
    }
}

/// Samples one uniform shortest path from the source of the last
/// [`BfsWorkspace::run_counting`] call to `t`, walking backwards through the
/// shortest-path DAG and choosing each predecessor `u` with probability
/// `σ(u) / σ(v)`.
///
/// Returns the node sequence source..=t. Panics if `t` was not reached.
pub fn sample_path_to<R, F>(
    ws: &BfsWorkspace,
    g: &Graph,
    t: NodeId,
    rng: &mut R,
    mut keep_edge: F,
) -> Vec<NodeId>
where
    R: rand::Rng + ?Sized,
    F: FnMut(usize) -> bool,
{
    assert!(ws.visited(t), "target not reached by the last BFS");
    let len = ws.dist(t) as usize;
    let mut path = vec![0 as NodeId; len + 1];
    path[len] = t;
    let mut v = t;
    for d in (0..len).rev() {
        // Choose predecessor ∝ σ(u) among filtered neighbors at distance d.
        let u = rand_weighted_pred(ws, g, v, d as u32, rng, &mut keep_edge);
        assert!(u != INFINITY, "BFS DAG missing predecessor");
        path[d] = u;
        v = u;
    }
    path
}

#[inline]
fn rand_weighted_pred<R, F>(
    ws: &BfsWorkspace,
    g: &Graph,
    v: NodeId,
    d: u32,
    rng: &mut R,
    keep_edge: &mut F,
) -> u32
where
    R: rand::Rng + ?Sized,
    F: FnMut(usize) -> bool,
{
    let sv = ws.sigma(v);
    let mut x = rng.gen::<f64>() * sv;
    let mut last = INFINITY;
    for slot in g.slot_range(v) {
        if !keep_edge(slot) {
            continue;
        }
        let u = g.neighbor_at(slot);
        if ws.visited(u) && ws.dist(u) == d {
            last = u;
            x -= ws.sigma(u);
            if x <= 0.0 {
                return u;
            }
        }
    }
    // Floating-point slack: fall back to the last valid predecessor.
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::fixtures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distances_on_path_graph() {
        let g = fixtures::path_graph(5);
        let mut ws = BfsWorkspace::new(5);
        ws.run(&g, 0);
        for v in 0..5u32 {
            assert_eq!(ws.dist(v), v);
        }
        assert_eq!(ws.eccentricity(), 4);
        assert_eq!(ws.farthest(), Some(4));
        assert_eq!(ws.reached(), 5);
    }

    #[test]
    fn sigma_counts_on_square() {
        // 4-cycle: two shortest paths between opposite corners.
        let g = fixtures::cycle_graph(4);
        let mut ws = BfsWorkspace::new(4);
        ws.run_counting(&g, 0, None, |_| true);
        assert_eq!(ws.sigma(0), 1.0);
        assert_eq!(ws.sigma(1), 1.0);
        assert_eq!(ws.sigma(3), 1.0);
        assert_eq!(ws.sigma(2), 2.0);
    }

    #[test]
    fn level_starts_partition_order() {
        let g = fixtures::grid_graph(4, 3);
        let mut ws = BfsWorkspace::new(12);
        ws.run(&g, 0);
        let ls = &ws.level_starts;
        assert_eq!(*ls.first().unwrap(), 0);
        assert_eq!(*ls.last().unwrap(), ws.order.len());
        for w in ls.windows(2) {
            assert!(w[0] < w[1]);
        }
        // All nodes in level slice d are at distance d.
        for d in 0..ls.len() - 1 {
            for &v in &ws.order[ls[d]..ls[d + 1]] {
                assert_eq!(ws.dist(v), d as u32);
            }
        }
    }

    #[test]
    fn stamped_reset_invalidates_previous_run() {
        let g = fixtures::path_graph(4);
        let mut ws = BfsWorkspace::new(4);
        ws.run(&g, 0);
        assert!(ws.visited(3));
        ws.run_counting(&g, 3, Some(2), |_| true);
        assert_eq!(ws.dist(3), 0);
        assert_eq!(ws.dist(2), 1);
        // 0 untouched in this truncated search.
        assert!(!ws.visited(0));
        assert_eq!(ws.dist(0), INFINITY);
        assert_eq!(ws.sigma(0), 0.0);
    }

    #[test]
    fn early_stop_finishes_target_level() {
        // Diamond: 0-1, 0-2, 1-3, 2-3; stop at 3 must still see sigma(3)=2.
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build()
            .unwrap();
        let mut ws = BfsWorkspace::new(4);
        ws.run_counting(&g, 0, Some(3), |_| true);
        assert_eq!(ws.sigma(3), 2.0);
    }

    #[test]
    fn edge_filter_restricts_search() {
        // Two triangles sharing node 2; filter keeps only first triangle's
        // edges (ids 0,1,2 by lexicographic edge order).
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)])
            .build()
            .unwrap();
        let mut ws = BfsWorkspace::new(5);
        ws.run_counting(&g, 0, None, |slot| g.edge_id_at(slot) <= 2);
        assert!(ws.visited(2));
        assert!(!ws.visited(3));
        assert!(!ws.visited(4));
    }

    #[test]
    fn sampled_paths_are_valid_shortest_paths() {
        let g = fixtures::grid_graph(5, 5);
        let mut ws = BfsWorkspace::new(25);
        ws.run_counting(&g, 0, None, |_| true);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let p = sample_path_to(&ws, &g, 24, &mut rng, |_| true);
            assert_eq!(p.len() as u32 - 1, ws.dist(24));
            assert_eq!(p[0], 0);
            assert_eq!(*p.last().unwrap(), 24);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn sampled_paths_uniform_on_square() {
        // 4-cycle, two paths 0-1-2 and 0-3-2; each should appear ~half.
        let g = fixtures::cycle_graph(4);
        let mut ws = BfsWorkspace::new(4);
        ws.run_counting(&g, 0, None, |_| true);
        let mut rng = StdRng::seed_from_u64(11);
        let mut via1 = 0usize;
        let trials = 4000;
        for _ in 0..trials {
            let p = sample_path_to(&ws, &g, 2, &mut rng, |_| true);
            if p[1] == 1 {
                via1 += 1;
            }
        }
        let frac = via1 as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac={frac}");
    }
}
