//! Binary (de)serialization of the graph substrate: [`Graph`], [`Bicomps`]
//! and [`BlockCutTree`], built on the checked primitives of [`crate::wire`].
//!
//! These encoders back the service's registry snapshots: a large SNAP graph
//! plus its full decomposition loads in O(bytes) instead of re-running the
//! O(m + n) preprocessing. Deserialization *validates structure* (CSR
//! well-formedness, cross-array length consistency) so a corrupted or
//! hand-crafted buffer is rejected with a [`WireError`] rather than
//! producing a graph that violates the invariants the whole engine assumes;
//! end-to-end integrity is additionally guarded by the snapshot checksum
//! one layer up.

use crate::bicomp::Bicomps;
use crate::blockcut::BlockCutTree;
use crate::csr::{Graph, NodeId};
use crate::wire::{self, Reader, WireError};

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

/// Appends the binary encoding of `g`.
///
/// Offsets are written through [`Graph::csr_offsets`]'s sequential decode,
/// so plain- and succinct-backed graphs produce identical bytes (the
/// length-prefixed `u64` layout of `wire::put_vec_usize`).
pub fn write_graph(g: &Graph, out: &mut Vec<u8>) {
    let (neighbors, edge_ids) = g.csr_slots();
    wire::put_usize(out, g.num_nodes());
    wire::put_usize(out, g.num_edges());
    let offsets = g.csr_offsets();
    wire::put_usize(out, offsets.len());
    for off in offsets.iter() {
        wire::put_usize(out, off);
    }
    wire::put_vec_u32(out, neighbors);
    wire::put_vec_u32(out, edge_ids);
}

/// Decodes a graph, re-validating every CSR invariant the builder
/// guarantees: monotone offsets, strictly sorted in-range adjacency, no
/// self-loops, and exactly two twin slots per undirected edge id agreeing
/// on their endpoints.
pub fn read_graph(r: &mut Reader) -> Result<Graph, WireError> {
    let n = r.usize_()?;
    let m = r.usize_()?;
    let offsets = r.vec_usize()?;
    let neighbors = r.vec_u32()?;
    let edge_ids = r.vec_u32()?;
    graph_from_arrays(n, m, offsets, neighbors, edge_ids)
}

/// Builds a graph from raw untrusted CSR arrays with the same full
/// validation as [`read_graph`] — also the byte-decode fallback of the
/// mmap snapshot tier, which stores the arrays outside the wire format.
pub fn graph_from_arrays(
    n: usize,
    m: usize,
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    edge_ids: Vec<u32>,
) -> Result<Graph, WireError> {
    if n > u32::MAX as usize {
        return err(format!("node count {n} exceeds the u32 id space"));
    }
    if offsets.len() != n + 1 {
        return err(format!(
            "offsets length {} != n + 1 = {}",
            offsets.len(),
            n + 1
        ));
    }
    let slots = 2usize
        .checked_mul(m)
        .ok_or_else(|| WireError(format!("edge count {m} overflows")))?;
    if neighbors.len() != slots || edge_ids.len() != slots {
        return err(format!(
            "slot arrays have {} / {} entries, want 2m = {slots}",
            neighbors.len(),
            edge_ids.len()
        ));
    }
    if offsets[0] != 0 || offsets[n] != slots {
        return err("offsets do not span the slot arrays");
    }
    if offsets.windows(2).any(|w| w[0] > w[1]) {
        return err("offsets are not monotone");
    }

    // Per-node adjacency: strictly ascending (simple graph), in range, no
    // self-loops, edge ids in range.
    for v in 0..n {
        let range = offsets[v]..offsets[v + 1];
        let ns = &neighbors[range.clone()];
        if ns.windows(2).any(|w| w[0] >= w[1]) {
            return err(format!("adjacency of node {v} is not strictly sorted"));
        }
        for (&u, &id) in ns.iter().zip(&edge_ids[range]) {
            if u as usize >= n {
                return err(format!("neighbor {u} of node {v} out of range"));
            }
            if u as usize == v {
                return err(format!("self-loop at node {v}"));
            }
            if id as usize >= m {
                return err(format!("edge id {id} out of range for m = {m}"));
            }
        }
    }

    // Twin consistency: every undirected edge id labels exactly two slots,
    // and those slots are the two directions of one edge {u, v}.
    let mut seen: Vec<(u32, u32)> = vec![(u32::MAX, u32::MAX); m];
    let mut counts = vec![0u8; m];
    for v in 0..n {
        for s in offsets[v]..offsets[v + 1] {
            let (u, id) = (neighbors[s], edge_ids[s] as usize);
            let key = (v.min(u as usize) as u32, v.max(u as usize) as u32);
            match counts[id] {
                0 => {
                    seen[id] = key;
                    counts[id] = 1;
                }
                1 if seen[id] == key => counts[id] = 2,
                _ => return err(format!("edge id {id} labels inconsistent slots")),
            }
        }
    }
    if counts.iter().any(|&c| c != 2) {
        return err("an edge id does not label exactly two twin slots");
    }

    Ok(Graph::from_parts(offsets, neighbors, edge_ids, m))
}

// ---------------------------------------------------------------------------
// Bicomps
// ---------------------------------------------------------------------------

/// Appends the binary encoding of a biconnected decomposition.
pub fn write_bicomps(b: &Bicomps, out: &mut Vec<u8>) {
    wire::put_usize(out, b.num_bicomps);
    wire::put_vec_u32(out, &b.edge_bicomp);
    wire::put_vec_bool(out, &b.is_cutpoint);
    wire::put_vec_usize(out, &b.bicomp_node_offsets);
    wire::put_vec_u32(out, &b.bicomp_nodes);
    wire::put_vec_usize(out, &b.membership_offsets);
    wire::put_vec_u32(out, &b.membership_bicomps);
}

/// Checks that `offsets` is a monotone CSR offset array with `groups`
/// groups covering `total` payload entries.
fn check_offsets(
    offsets: &[usize],
    groups: usize,
    total: usize,
    what: &str,
) -> Result<(), WireError> {
    if offsets.len() != groups + 1
        || offsets.first() != Some(&0)
        || offsets.last() != Some(&total)
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return err(format!(
            "{what} offsets are not a valid CSR over {groups} groups"
        ));
    }
    Ok(())
}

/// Decodes a [`Bicomps`] for `g`, validating array lengths and id ranges
/// against the graph.
pub fn read_bicomps(r: &mut Reader, g: &Graph) -> Result<Bicomps, WireError> {
    let (n, m) = (g.num_nodes(), g.num_edges());
    let num_bicomps = r.usize_()?;
    let edge_bicomp = r.vec_u32()?;
    let is_cutpoint = r.vec_bool()?;
    let bicomp_node_offsets = r.vec_usize()?;
    let bicomp_nodes = r.vec_u32()?;
    let membership_offsets = r.vec_usize()?;
    let membership_bicomps = r.vec_u32()?;

    if edge_bicomp.len() != m {
        return err("edge_bicomp length mismatches edge count");
    }
    if is_cutpoint.len() != n {
        return err("is_cutpoint length mismatches node count");
    }
    check_offsets(
        &bicomp_node_offsets,
        num_bicomps,
        bicomp_nodes.len(),
        "bicomp node",
    )?;
    check_offsets(
        &membership_offsets,
        n,
        membership_bicomps.len(),
        "membership",
    )?;
    let comp_ok = |&b: &u32| (b as usize) < num_bicomps;
    if !edge_bicomp.iter().all(comp_ok) || !membership_bicomps.iter().all(comp_ok) {
        return err("component id out of range");
    }
    if !bicomp_nodes.iter().all(|&v| (v as usize) < n) {
        return err("component member out of range");
    }

    Ok(Bicomps {
        num_bicomps,
        edge_bicomp,
        is_cutpoint,
        bicomp_node_offsets,
        bicomp_nodes,
        membership_offsets,
        membership_bicomps,
    })
}

// ---------------------------------------------------------------------------
// BlockCutTree
// ---------------------------------------------------------------------------

/// Appends the binary encoding of a block-cut tree.
pub fn write_blockcut(t: &BlockCutTree, out: &mut Vec<u8>) {
    wire::put_vec_u32(out, &t.cutpoints);
    wire::put_vec_u32(out, &t.cut_index);
    wire::put_vec_usize(out, &t.cut_bicomp_offsets);
    wire::put_vec_u32(out, &t.cut_bicomps);
    wire::put_vec_u32(out, &t.cut_branch);
    wire::put_vec_u32(out, &t.comp_total_of_bicomp);
}

/// Decodes a [`BlockCutTree`] for `g`/`bic`, validating lengths and ranges.
pub fn read_blockcut(r: &mut Reader, g: &Graph, bic: &Bicomps) -> Result<BlockCutTree, WireError> {
    let n = g.num_nodes();
    let cutpoints: Vec<NodeId> = r.vec_u32()?;
    let cut_index = r.vec_u32()?;
    let cut_bicomp_offsets = r.vec_usize()?;
    let cut_bicomps = r.vec_u32()?;
    let cut_branch = r.vec_u32()?;
    let comp_total_of_bicomp = r.vec_u32()?;

    if cut_index.len() != n {
        return err("cut_index length mismatches node count");
    }
    if !cutpoints.iter().all(|&v| (v as usize) < n) {
        return err("cutpoint id out of range");
    }
    check_offsets(
        &cut_bicomp_offsets,
        cutpoints.len(),
        cut_bicomps.len(),
        "cut bicomp",
    )?;
    if cut_branch.len() != cut_bicomps.len() {
        return err("cut_branch length mismatches cut_bicomps");
    }
    if !cut_bicomps.iter().all(|&b| (b as usize) < bic.num_bicomps) {
        return err("cut-incident component id out of range");
    }
    if comp_total_of_bicomp.len() != bic.num_bicomps {
        return err("comp_total_of_bicomp length mismatches component count");
    }

    Ok(BlockCutTree {
        cutpoints,
        cut_index,
        cut_bicomp_offsets,
        cut_bicomps,
        cut_branch,
        comp_total_of_bicomp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn graphs() -> Vec<Graph> {
        vec![
            fixtures::paper_fig2(),
            fixtures::grid_graph(5, 4),
            fixtures::lollipop_graph(4, 3),
            fixtures::disconnected_mix(),
            crate::GraphBuilder::new(3).build().unwrap(), // edgeless
            crate::GraphBuilder::new(0).build().unwrap(), // empty
        ]
    }

    #[test]
    fn graph_round_trip_is_structurally_identical() {
        for g in graphs() {
            let mut buf = Vec::new();
            write_graph(&g, &mut buf);
            let g2 = read_graph(&mut Reader::new(&buf)).unwrap();
            assert_eq!(g.num_nodes(), g2.num_nodes());
            assert_eq!(g.num_edges(), g2.num_edges());
            let o1: Vec<usize> = g.csr_offsets().iter().collect();
            let o2: Vec<usize> = g2.csr_offsets().iter().collect();
            assert_eq!(o1, o2);
            assert_eq!(g.csr_slots(), g2.csr_slots());
        }
    }

    #[test]
    fn succinct_backed_graph_encodes_identically() {
        for g in graphs() {
            let mut buf = Vec::new();
            write_graph(&g, &mut buf);
            let mut compacted = g.clone();
            compacted.compact();
            let mut buf2 = Vec::new();
            write_graph(&compacted, &mut buf2);
            assert_eq!(buf, buf2, "succinct backing changed the encoding");
        }
    }

    #[test]
    fn bicomps_and_blockcut_round_trip() {
        for g in graphs() {
            let bic = Bicomps::compute(&g);
            let tree = BlockCutTree::compute(&bic);
            let mut buf = Vec::new();
            write_bicomps(&bic, &mut buf);
            write_blockcut(&tree, &mut buf);
            let mut r = Reader::new(&buf);
            let bic2 = read_bicomps(&mut r, &g).unwrap();
            let tree2 = read_blockcut(&mut r, &g, &bic2).unwrap();
            assert!(r.is_empty());
            assert_eq!(bic.num_bicomps, bic2.num_bicomps);
            assert_eq!(bic.edge_bicomp, bic2.edge_bicomp);
            assert_eq!(bic.is_cutpoint, bic2.is_cutpoint);
            assert_eq!(bic.bicomp_nodes, bic2.bicomp_nodes);
            assert_eq!(tree.cutpoints, tree2.cutpoints);
            assert_eq!(tree.cut_branch, tree2.cut_branch);
            assert_eq!(tree.comp_total_of_bicomp, tree2.comp_total_of_bicomp);
        }
    }

    #[test]
    fn corrupt_graph_bytes_are_rejected() {
        let g = fixtures::paper_fig2();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf);
        // Truncation fails cleanly.
        assert!(read_graph(&mut Reader::new(&buf[..buf.len() / 2])).is_err());
        // A mangled neighbor breaks sortedness / twin consistency.
        for flip in [buf.len() - 1, buf.len() / 2, 20] {
            let mut bad = buf.clone();
            bad[flip] ^= 0xFF;
            // Either a decode error or (rarely) a still-valid prefix with
            // trailing garbage — never a panic.
            let _ = read_graph(&mut Reader::new(&bad));
        }
        // Specifically: swapping two neighbors violates strict sorting.
        let mut bad = Vec::new();
        wire::put_usize(&mut bad, 3);
        wire::put_usize(&mut bad, 2);
        wire::put_vec_usize(&mut bad, &[0, 1, 3, 4]);
        wire::put_vec_u32(&mut bad, &[1, 2, 0, 1]); // node 1's list {2, 0} unsorted
        wire::put_vec_u32(&mut bad, &[0, 1, 0, 1]);
        assert!(read_graph(&mut Reader::new(&bad)).is_err());
    }

    #[test]
    fn bicomps_with_wrong_lengths_are_rejected() {
        let g = fixtures::paper_fig2();
        let other = fixtures::grid_graph(2, 2);
        let bic = Bicomps::compute(&g);
        let mut buf = Vec::new();
        write_bicomps(&bic, &mut buf);
        // Valid against its own graph, invalid against a different one.
        assert!(read_bicomps(&mut Reader::new(&buf), &g).is_ok());
        assert!(read_bicomps(&mut Reader::new(&buf), &other).is_err());
    }
}
