//! Error type shared by graph construction and I/O.

use std::fmt;

/// Errors produced while building or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge endpoint was `>= n` for a graph declared with `n` nodes.
    EndpointOutOfRange {
        /// The offending endpoint.
        node: u64,
        /// The declared node count.
        n: u64,
    },
    /// The declared node count exceeds the `u32` id space.
    TooManyNodes(u64),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::TooManyNodes(n) => {
                write!(f, "{n} nodes exceed the u32 node-id space")
            }
            GraphError::Parse { line, content } => {
                write!(f, "cannot parse edge-list line {line}: {content:?}")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GraphError::EndpointOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::TooManyNodes(1 << 40);
        assert!(e.to_string().contains("u32"));
        let e = GraphError::Parse {
            line: 3,
            content: "x y".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = GraphError::Io(std::io::Error::other("x"));
        assert!(e.source().is_some());
        let e = GraphError::TooManyNodes(0);
        assert!(e.source().is_none());
    }
}
