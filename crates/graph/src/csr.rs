//! Compressed-sparse-row storage for undirected, unweighted simple graphs.
//!
//! Node ids are `u32` (the paper's largest network has 10⁸ nodes, well within
//! range) which halves memory traffic relative to `usize` on 64-bit targets.
//! Each undirected edge `{u, v}` occupies two CSR slots, `(u → v)` and
//! `(v → u)`; both slots carry the same *undirected edge id* so that
//! edge-partitioning algorithms (biconnected components, §IV-A) can label
//! edges once and look the label up from either direction in O(1).
//!
//! Offsets live behind [`CsrOffsets`]: plain `Vec<usize>` on the build and
//! delta paths, or the Elias–Fano form ([`crate::succinct`]) on the serving
//! path after [`Graph::compact`]. Slot arrays live behind
//! [`crate::succinct::U32s`] so a snapshot-mapped graph serves zero-copy
//! straight from the page cache.

use crate::succinct::{EliasFano, U32s};

/// Node identifier. Always `< Graph::num_nodes()`.
pub type NodeId = u32;

/// CSR offset storage: plain words or the succinct Elias–Fano form.
///
/// Both variants answer `offsets[i]` and the hot-path adjacent pair
/// `(offsets[v], offsets[v + 1])`; the succinct form costs one sampled
/// select per lookup in exchange for ~a tenth of the plain bytes.
#[derive(Clone, Debug)]
pub enum CsrOffsets {
    /// `n + 1` plain offsets (build / delta path).
    Plain(Vec<usize>),
    /// Elias–Fano encoding of the same `n + 1` values (serving path).
    Succinct(EliasFano),
}

impl CsrOffsets {
    /// Number of stored offsets (`n + 1`).
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            CsrOffsets::Plain(v) => v.len(),
            CsrOffsets::Succinct(ef) => ef.len(),
        }
    }

    /// Never true: a graph always stores at least `offsets[0]`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `offsets[i]`.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        match self {
            CsrOffsets::Plain(v) => v[i],
            CsrOffsets::Succinct(ef) => ef.get(i) as usize,
        }
    }

    /// `(offsets[v], offsets[v + 1])` — the slot-range hot path; a single
    /// select in the succinct form.
    #[inline]
    pub fn pair(&self, v: usize) -> (usize, usize) {
        match self {
            CsrOffsets::Plain(o) => (o[v], o[v + 1]),
            CsrOffsets::Succinct(ef) => {
                let (a, b) = ef.pair(v);
                (a as usize, b as usize)
            }
        }
    }

    /// Bytes occupied by this representation.
    pub fn byte_len(&self) -> usize {
        match self {
            CsrOffsets::Plain(v) => v.len() * std::mem::size_of::<usize>(),
            CsrOffsets::Succinct(ef) => ef.byte_len(),
        }
    }

    /// Whether the succinct representation is active.
    #[inline]
    pub fn is_succinct(&self) -> bool {
        matches!(self, CsrOffsets::Succinct(_))
    }

    /// Whether the backing storage is a mapped snapshot window.
    pub fn is_mapped(&self) -> bool {
        match self {
            CsrOffsets::Plain(_) => false,
            CsrOffsets::Succinct(ef) => ef.is_mapped(),
        }
    }

    /// Sequential decode of all offsets (serialization path).
    pub fn iter(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match self {
            CsrOffsets::Plain(v) => Box::new(v.iter().copied()),
            CsrOffsets::Succinct(ef) => Box::new(ef.iter().map(|v| v as usize)),
        }
    }
}

/// Memory footprint of one graph's CSR arrays, for the `/graphs` and
/// `/healthz` operator surfaces.
#[derive(Clone, Copy, Debug)]
pub struct GraphFootprint {
    /// Bytes of the offset structure as stored (plain or succinct).
    pub offsets_bytes: usize,
    /// Bytes the plain `Vec<usize>` offsets would take (`(n + 1) × 8`).
    pub plain_offsets_bytes: usize,
    /// Bytes of the `neighbors` + `edge_ids` slot arrays.
    pub slot_bytes: usize,
    /// Whether offsets are in the succinct form.
    pub succinct: bool,
    /// Whether any array serves zero-copy from a mapped snapshot.
    pub mapped: bool,
}

impl GraphFootprint {
    /// Total CSR bytes (offsets representation + slot arrays).
    pub fn csr_bytes(&self) -> usize {
        self.offsets_bytes + self.slot_bytes
    }

    /// Bytes of the succinct offset structure (0 when plain).
    pub fn succinct_bytes(&self) -> usize {
        if self.succinct {
            self.offsets_bytes
        } else {
            0
        }
    }
}

/// An immutable undirected simple graph in CSR form.
///
/// Construct via [`crate::GraphBuilder`] (deduplicates, drops self-loops) or
/// [`crate::io::read_edge_list`]. Adjacency lists are sorted ascending, so
/// [`Graph::has_edge`] is a binary search.
#[derive(Clone, Debug)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors`/`edge_ids` for `v`.
    offsets: CsrOffsets,
    /// Concatenated sorted adjacency lists; length `2m`.
    neighbors: U32s,
    /// Undirected edge id per slot; both directions of an edge share an id.
    edge_ids: U32s,
    /// Number of undirected edges `m`.
    num_edges: usize,
}

impl Graph {
    /// Builds a graph from already-validated CSR arrays.
    ///
    /// Callers must guarantee CSR well-formedness (monotone offsets, sorted
    /// per-node neighbor slices, twin slots sharing edge ids). Only the
    /// builder and loaders in this crate construct graphs this way.
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<NodeId>,
        edge_ids: Vec<u32>,
        num_edges: usize,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert_eq!(neighbors.len(), edge_ids.len());
        debug_assert_eq!(neighbors.len(), 2 * num_edges);
        Graph {
            offsets: CsrOffsets::Plain(offsets),
            neighbors: U32s::Owned(neighbors),
            edge_ids: U32s::Owned(edge_ids),
            num_edges,
        }
    }

    /// Assembles a graph from externally-stored CSR arrays (the mapped
    /// snapshot load path), re-validating every invariant the accessors
    /// need to stay panic-free: `n + 1` monotone offsets ending at `2m`,
    /// slot arrays of length `2m`, neighbor ids `< n`, and edge ids `< m`.
    ///
    /// Per-node sortedness and twin-slot consistency are *not* re-checked
    /// here — the snapshot CRC already vouches for writer output, and a
    /// violation can only misroute queries, never index out of bounds. The
    /// byte-decode path ([`crate::binio::read_graph`]) keeps the full
    /// check for untrusted inputs.
    pub fn assemble(
        offsets: CsrOffsets,
        neighbors: U32s,
        edge_ids: U32s,
        num_edges: usize,
    ) -> Result<Graph, String> {
        if offsets.is_empty() {
            return Err("csr: offsets must hold at least one value".to_string());
        }
        let n = offsets.len() - 1;
        let slots = num_edges
            .checked_mul(2)
            .ok_or_else(|| "csr: edge count overflow".to_string())?;
        if neighbors.as_slice().len() != slots || edge_ids.as_slice().len() != slots {
            return Err(format!(
                "csr: slot arrays hold {}/{} entries, expected {slots}",
                neighbors.as_slice().len(),
                edge_ids.as_slice().len()
            ));
        }
        let mut prev = 0usize;
        for (i, off) in offsets.iter().enumerate() {
            if i == 0 && off != 0 {
                return Err(format!("csr: offsets[0] is {off}, expected 0"));
            }
            if off < prev {
                return Err(format!(
                    "csr: offsets[{i}] {off} < offsets[{}] {prev}",
                    i - 1
                ));
            }
            if off > slots {
                return Err(format!("csr: offsets[{i}] {off} exceeds {slots} slots"));
            }
            prev = off;
        }
        if prev != slots {
            return Err(format!("csr: final offset {prev} != {slots} slots"));
        }
        if let Some(bad) = neighbors.as_slice().iter().find(|&&v| v as usize >= n) {
            return Err(format!("csr: neighbor id {bad} out of range for {n} nodes"));
        }
        if let Some(bad) = edge_ids
            .as_slice()
            .iter()
            .find(|&&id| id as usize >= num_edges)
        {
            return Err(format!(
                "csr: edge id {bad} out of range for {num_edges} edges"
            ));
        }
        Ok(Graph {
            offsets,
            neighbors,
            edge_ids,
            num_edges,
        })
    }

    /// The offset structure, for the snapshot serializer.
    pub fn csr_offsets(&self) -> &CsrOffsets {
        &self.offsets
    }

    /// The raw slot arrays `(neighbors, edge_ids)`, for serializers.
    pub fn csr_slots(&self) -> (&[NodeId], &[u32]) {
        (self.neighbors.as_slice(), self.edge_ids.as_slice())
    }

    /// Converts plain offsets to the succinct Elias–Fano form in place.
    ///
    /// Idempotent; slot arrays are untouched. Serving paths call this after
    /// decomposition so resident graphs pay succinct bytes; the delta path
    /// re-inflates by rebuilding through [`Graph::from_parts`].
    pub fn compact(&mut self) {
        if let CsrOffsets::Plain(v) = &self.offsets {
            self.offsets = CsrOffsets::Succinct(EliasFano::from_values(v));
        }
    }

    /// Memory footprint of the CSR arrays as currently stored.
    pub fn footprint(&self) -> GraphFootprint {
        GraphFootprint {
            offsets_bytes: self.offsets.byte_len(),
            plain_offsets_bytes: self.offsets.len() * std::mem::size_of::<usize>(),
            slot_bytes: self.neighbors.byte_len() + self.edge_ids.byte_len(),
            succinct: self.offsets.is_succinct(),
            mapped: self.is_mapped(),
        }
    }

    /// Whether any CSR array serves zero-copy from a mapped snapshot.
    pub fn is_mapped(&self) -> bool {
        self.offsets.is_mapped() || self.neighbors.is_mapped() || self.edge_ids.is_mapped()
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let (a, b) = self.offsets.pair(v as usize);
        b - a
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let (a, b) = self.offsets.pair(v as usize);
        &self.neighbors.as_slice()[a..b]
    }

    /// The CSR slot range of `v`; slot `i` pairs `self.neighbor_at(i)` with
    /// `self.edge_id_at(i)`.
    #[inline]
    pub fn slot_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let (a, b) = self.offsets.pair(v as usize);
        a..b
    }

    /// Neighbor stored in CSR slot `slot`.
    #[inline]
    pub fn neighbor_at(&self, slot: usize) -> NodeId {
        self.neighbors.as_slice()[slot]
    }

    /// Undirected edge id stored in CSR slot `slot`.
    #[inline]
    pub fn edge_id_at(&self, slot: usize) -> u32 {
        self.edge_ids.as_slice()[slot]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The undirected edge id of `{u, v}`, if the edge exists.
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let (base, end) = self.offsets.pair(u as usize);
        self.neighbors.as_slice()[base..end]
            .binary_search(&v)
            .ok()
            .map(|i| self.edge_ids.as_slice()[base + i])
    }

    /// Iterates all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterates every undirected edge exactly once as `(u, v, edge_id)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        self.nodes().flat_map(move |u| {
            self.slot_range(u).filter_map(move |s| {
                let v = self.neighbor_at(s);
                (u < v).then(|| (u, v, self.edge_id_at(s)))
            })
        })
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Sum of `deg(v)²` over `v ∈ nodes`, the `K` of Lemma 18 driving the
    /// `Exact_bc` complexity.
    pub fn sum_degree_squared<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> u64 {
        nodes
            .into_iter()
            .map(|v| (self.degree(v) as u64).pow(2))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn basic_accessors() {
        // Triangle plus a pendant: 0-1, 1-2, 2-0, 2-3.
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edge_ids_shared_between_twin_slots() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
            .unwrap();
        for (u, v, id) in g.edges() {
            assert_eq!(g.edge_id(u, v), Some(id));
            assert_eq!(g.edge_id(v, u), Some(id));
        }
        assert_eq!(g.edge_id(0, 3), None);
        // Ids form 0..m.
        let mut ids: Vec<u32> = g.edges().map(|(_, _, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (3, 4), (1, 2), (0, 2)])
            .build()
            .unwrap();
        let es: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
    }

    #[test]
    fn sum_degree_squared_matches_manual() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
            .unwrap();
        // degrees: 2, 2, 3, 1
        assert_eq!(g.sum_degree_squared(g.nodes()), 4 + 4 + 9 + 1);
        assert_eq!(g.sum_degree_squared([2u32]), 9);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn compact_preserves_every_accessor() {
        let mut g = GraphBuilder::new(6)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (4, 5), (0, 3)])
            .build()
            .unwrap();
        let before: Vec<_> = g.edges().collect();
        let degrees: Vec<_> = g.nodes().map(|v| g.degree(v)).collect();
        assert!(!g.csr_offsets().is_succinct());
        g.compact();
        assert!(g.csr_offsets().is_succinct());
        assert_eq!(g.edges().collect::<Vec<_>>(), before);
        assert_eq!(g.nodes().map(|v| g.degree(v)).collect::<Vec<_>>(), degrees);
        assert!(g.has_edge(4, 5));
        assert!(!g.has_edge(1, 3));
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        // Idempotent.
        g.compact();
        assert!(g.csr_offsets().is_succinct());
    }

    #[test]
    fn compact_on_edgeless_and_isolated_nodes() {
        let mut g = GraphBuilder::new(4).edges([(1, 2)]).build().unwrap();
        g.compact();
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(1), &[2]);

        let mut empty = GraphBuilder::new(1).build().unwrap();
        empty.compact();
        assert_eq!(empty.num_nodes(), 1);
        assert_eq!(empty.degree(0), 0);
    }

    #[test]
    fn footprint_reports_the_tier() {
        let mut g = GraphBuilder::new(100)
            .edges((0u32..99).map(|i| (i, i + 1)))
            .build()
            .unwrap();
        let plain = g.footprint();
        assert!(!plain.succinct);
        assert!(!plain.mapped);
        assert_eq!(plain.offsets_bytes, plain.plain_offsets_bytes);
        assert_eq!(plain.succinct_bytes(), 0);
        assert_eq!(plain.slot_bytes, 2 * 99 * 2 * 4);
        g.compact();
        let tiered = g.footprint();
        assert!(tiered.succinct);
        assert!(tiered.offsets_bytes < plain.offsets_bytes);
        assert_eq!(tiered.succinct_bytes(), tiered.offsets_bytes);
        assert_eq!(tiered.slot_bytes, plain.slot_bytes);
    }

    #[test]
    fn assemble_validates_structure() {
        use crate::succinct::U32s;
        let ok = Graph::assemble(
            CsrOffsets::Plain(vec![0, 2, 4]),
            U32s::Owned(vec![1, 1, 0, 0]),
            U32s::Owned(vec![0, 1, 0, 1]),
            2,
        );
        assert!(ok.is_ok());

        // Final offset disagrees with slot count.
        assert!(Graph::assemble(
            CsrOffsets::Plain(vec![0, 2, 3]),
            U32s::Owned(vec![1, 1, 0, 0]),
            U32s::Owned(vec![0, 1, 0, 1]),
            2,
        )
        .is_err());

        // Non-monotone offsets.
        assert!(Graph::assemble(
            CsrOffsets::Plain(vec![0, 3, 2, 4]),
            U32s::Owned(vec![1, 1, 0, 0]),
            U32s::Owned(vec![0, 1, 0, 1]),
            2,
        )
        .is_err());

        // Neighbor id out of range.
        assert!(Graph::assemble(
            CsrOffsets::Plain(vec![0, 2, 4]),
            U32s::Owned(vec![1, 9, 0, 0]),
            U32s::Owned(vec![0, 1, 0, 1]),
            2,
        )
        .is_err());

        // Edge id out of range.
        assert!(Graph::assemble(
            CsrOffsets::Plain(vec![0, 2, 4]),
            U32s::Owned(vec![1, 1, 0, 0]),
            U32s::Owned(vec![0, 7, 0, 1]),
            2,
        )
        .is_err());
    }
}
