//! Compressed-sparse-row storage for undirected, unweighted simple graphs.
//!
//! Node ids are `u32` (the paper's largest network has 10⁸ nodes, well within
//! range) which halves memory traffic relative to `usize` on 64-bit targets.
//! Each undirected edge `{u, v}` occupies two CSR slots, `(u → v)` and
//! `(v → u)`; both slots carry the same *undirected edge id* so that
//! edge-partitioning algorithms (biconnected components, §IV-A) can label
//! edges once and look the label up from either direction in O(1).

/// Node identifier. Always `< Graph::num_nodes()`.
pub type NodeId = u32;

/// An immutable undirected simple graph in CSR form.
///
/// Construct via [`crate::GraphBuilder`] (deduplicates, drops self-loops) or
/// [`crate::io::read_edge_list`]. Adjacency lists are sorted ascending, so
/// [`Graph::has_edge`] is a binary search.
#[derive(Clone, Debug)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors`/`edge_ids` for `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists; length `2m`.
    neighbors: Vec<NodeId>,
    /// Undirected edge id per slot; both directions of an edge share an id.
    edge_ids: Vec<u32>,
    /// Number of undirected edges `m`.
    num_edges: usize,
}

impl Graph {
    /// Builds a graph from already-validated CSR arrays.
    ///
    /// Callers must guarantee CSR well-formedness (monotone offsets, sorted
    /// per-node neighbor slices, twin slots sharing edge ids). Only the
    /// builder and loaders in this crate construct graphs.
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<NodeId>,
        edge_ids: Vec<u32>,
        num_edges: usize,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        debug_assert_eq!(neighbors.len(), edge_ids.len());
        debug_assert_eq!(neighbors.len(), 2 * num_edges);
        Graph {
            offsets,
            neighbors,
            edge_ids,
            num_edges,
        }
    }

    /// The raw CSR arrays `(offsets, neighbors, edge_ids)`, for the binary
    /// serializer in [`crate::binio`].
    pub(crate) fn csr_parts(&self) -> (&[usize], &[NodeId], &[u32]) {
        (&self.offsets, &self.neighbors, &self.edge_ids)
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// The CSR slot range of `v`; slot `i` pairs `self.neighbor_at(i)` with
    /// `self.edge_id_at(i)`.
    #[inline]
    pub fn slot_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v as usize]..self.offsets[v as usize + 1]
    }

    /// Neighbor stored in CSR slot `slot`.
    #[inline]
    pub fn neighbor_at(&self, slot: usize) -> NodeId {
        self.neighbors[slot]
    }

    /// Undirected edge id stored in CSR slot `slot`.
    #[inline]
    pub fn edge_id_at(&self, slot: usize) -> u32 {
        self.edge_ids[slot]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The undirected edge id of `{u, v}`, if the edge exists.
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let base = self.offsets[u as usize];
        self.neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|i| self.edge_ids[base + i])
    }

    /// Iterates all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Iterates every undirected edge exactly once as `(u, v, edge_id)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u32)> + '_ {
        self.nodes().flat_map(move |u| {
            self.slot_range(u).filter_map(move |s| {
                let v = self.neighbor_at(s);
                (u < v).then(|| (u, v, self.edge_id_at(s)))
            })
        })
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Sum of `deg(v)²` over `v ∈ nodes`, the `K` of Lemma 18 driving the
    /// `Exact_bc` complexity.
    pub fn sum_degree_squared<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> u64 {
        nodes
            .into_iter()
            .map(|v| (self.degree(v) as u64).pow(2))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    #[test]
    fn basic_accessors() {
        // Triangle plus a pendant: 0-1, 1-2, 2-0, 2-3.
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edge_ids_shared_between_twin_slots() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
            .unwrap();
        for (u, v, id) in g.edges() {
            assert_eq!(g.edge_id(u, v), Some(id));
            assert_eq!(g.edge_id(v, u), Some(id));
        }
        assert_eq!(g.edge_id(0, 3), None);
        // Ids form 0..m.
        let mut ids: Vec<u32> = g.edges().map(|(_, _, id)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (3, 4), (1, 2), (0, 2)])
            .build()
            .unwrap();
        let es: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
    }

    #[test]
    fn sum_degree_squared_matches_manual() {
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3)])
            .build()
            .unwrap();
        // degrees: 2, 2, 3, 1
        assert_eq!(g.sum_degree_squared(g.nodes()), 4 + 4 + 9 + 1);
        assert_eq!(g.sum_degree_squared([2u32]), 9);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
