//! Block-cut trees and branch weights (paper §IV-A, Fig. 2c).
//!
//! The block-cut tree has a vertex for every biconnected component and every
//! cutpoint, and an edge for each (component, cutpoint ∈ component) pair.
//! SaPHyRa_bc needs, for every such pair `(Cᵢ, v)`, the branch weight
//! `|Tᵢ(v)|`: the number of graph nodes (excluding `v`) reached from `v`
//! through `Cᵢ`. Out-reach sets follow as `rᵢ(v) = n_comp − |Tᵢ(v)|`, and
//! the cutpoint correction `bcₐ(v)` (Eq. 21) is a sum over the same branch
//! weights. One iterative post-order pass computes everything.

use crate::bicomp::Bicomps;
use crate::csr::NodeId;

const NONE: u32 = u32::MAX;

/// Block-cut tree with precomputed branch weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCutTree {
    /// Cutpoint node ids, ascending; `cut_index` inverts this list.
    pub cutpoints: Vec<NodeId>,
    /// Per graph node: its index in `cutpoints`, or `u32::MAX`.
    pub cut_index: Vec<u32>,
    /// CSR over cutpoints: incident biconnected components.
    pub cut_bicomp_offsets: Vec<usize>,
    pub cut_bicomps: Vec<u32>,
    /// Branch weight `|T_b(c)|` aligned with `cut_bicomps`: the number of
    /// nodes (≠ c) reached from cutpoint `c` through component `b`.
    pub cut_branch: Vec<u32>,
    /// Per biconnected component: the number of graph nodes in the connected
    /// component containing it ("n_c" in DESIGN.md §2).
    pub comp_total_of_bicomp: Vec<u32>,
}

impl BlockCutTree {
    /// Builds the tree and branch weights from a decomposition.
    pub fn compute(bic: &Bicomps) -> Self {
        let n = bic.is_cutpoint.len();
        let nb = bic.num_bicomps;

        let cutpoints: Vec<NodeId> = bic.cutpoints();
        let nc = cutpoints.len();
        let mut cut_index = vec![NONE; n];
        for (i, &c) in cutpoints.iter().enumerate() {
            cut_index[c as usize] = i as u32;
        }

        // Cutpoint -> incident components, straight from the memberships.
        let mut cut_bicomp_offsets = vec![0usize; nc + 1];
        for (i, &c) in cutpoints.iter().enumerate() {
            cut_bicomp_offsets[i + 1] = cut_bicomp_offsets[i] + bic.bicomps_of(c).len();
        }
        let mut cut_bicomps = Vec::with_capacity(cut_bicomp_offsets[nc]);
        for &c in &cutpoints {
            cut_bicomps.extend_from_slice(bic.bicomps_of(c));
        }

        // Component -> its cutpoints (indices), for tree traversal.
        let mut bicomp_cut_offsets = vec![0usize; nb + 1];
        for b in 0..nb as u32 {
            let cuts = bic
                .nodes_of(b)
                .iter()
                .filter(|&&v| bic.is_cutpoint[v as usize])
                .count();
            bicomp_cut_offsets[b as usize + 1] = bicomp_cut_offsets[b as usize] + cuts;
        }
        let mut bicomp_cuts = vec![0u32; bicomp_cut_offsets[nb]];
        {
            let mut cursor = bicomp_cut_offsets.clone();
            for b in 0..nb as u32 {
                for &v in bic.nodes_of(b) {
                    if bic.is_cutpoint[v as usize] {
                        bicomp_cuts[cursor[b as usize]] = cut_index[v as usize];
                        cursor[b as usize] += 1;
                    }
                }
            }
        }

        // Vertex weights: a component carries its non-cutpoint node count, a
        // cutpoint carries 1; per tree component these sum to the number of
        // graph nodes in the corresponding connected component.
        let weight_of_bicomp = |b: u32| -> u64 {
            let total = bic.size_of(b);
            let cuts = bicomp_cut_offsets[b as usize + 1] - bicomp_cut_offsets[b as usize];
            (total - cuts) as u64
        };

        // Iterative rooted DFS over the bipartite tree. Tree vertices are
        // encoded as: component b -> b; cutpoint i -> nb + i.
        let encode_cut = |i: u32| nb as u32 + i;
        let total_vertices = nb + nc;
        let mut parent = vec![NONE; total_vertices];
        let mut visited = vec![false; total_vertices];
        let mut subtree = vec![0u64; total_vertices];
        let mut order: Vec<u32> = Vec::with_capacity(total_vertices);
        let mut tree_comp = vec![NONE; total_vertices];
        let mut comp_totals: Vec<u64> = Vec::new();

        for root in 0..nb as u32 {
            if visited[root as usize] {
                continue;
            }
            let comp_id = comp_totals.len() as u32;
            // BFS from the root component to set parents and visit order
            // (a tree: BFS order reversed is a valid post-order base).
            let comp_start = order.len();
            visited[root as usize] = true;
            tree_comp[root as usize] = comp_id;
            order.push(root);
            let mut head = comp_start;
            while head < order.len() {
                let x = order[head];
                head += 1;
                if (x as usize) < nb {
                    let b = x;
                    let cr = bicomp_cut_offsets[b as usize]..bicomp_cut_offsets[b as usize + 1];
                    for &ci in &bicomp_cuts[cr] {
                        let enc = encode_cut(ci);
                        if !visited[enc as usize] {
                            visited[enc as usize] = true;
                            parent[enc as usize] = b;
                            tree_comp[enc as usize] = comp_id;
                            order.push(enc);
                        }
                    }
                } else {
                    let ci = x - nb as u32;
                    let br = cut_bicomp_offsets[ci as usize]..cut_bicomp_offsets[ci as usize + 1];
                    for &b in &cut_bicomps[br] {
                        if !visited[b as usize] {
                            visited[b as usize] = true;
                            parent[b as usize] = x;
                            tree_comp[b as usize] = comp_id;
                            order.push(b);
                        }
                    }
                }
            }
            // Accumulate subtree weights bottom-up over the reversed order.
            for idx in (comp_start..order.len()).rev() {
                let x = order[idx];
                let own = if (x as usize) < nb {
                    weight_of_bicomp(x)
                } else {
                    1
                };
                subtree[x as usize] += own;
                let p = parent[x as usize];
                if p != NONE {
                    subtree[p as usize] += subtree[x as usize];
                }
            }
            comp_totals.push(subtree[root as usize]);
        }

        // Branch weights |T_b(c)| for every (cutpoint, incident component).
        let mut cut_branch = vec![0u32; cut_bicomps.len()];
        for (i, _) in cutpoints.iter().enumerate() {
            let enc = encode_cut(i as u32) as usize;
            let total = comp_totals[tree_comp[enc] as usize];
            for k in cut_bicomp_offsets[i]..cut_bicomp_offsets[i + 1] {
                let b = cut_bicomps[k];
                let w = if parent[b as usize] == enc as u32 {
                    // b hangs below c.
                    subtree[b as usize]
                } else {
                    // b is c's parent: everything not under c.
                    total - subtree[enc]
                };
                cut_branch[k] = u32::try_from(w).expect("branch weight fits u32");
            }
        }

        let comp_total_of_bicomp: Vec<u32> = (0..nb)
            .map(|b| comp_totals[tree_comp[b] as usize] as u32)
            .collect();

        BlockCutTree {
            cutpoints,
            cut_index,
            cut_bicomp_offsets,
            cut_bicomps,
            cut_branch,
            comp_total_of_bicomp,
        }
    }

    /// Incident components of the `i`-th cutpoint with their branch weights.
    pub fn branches(&self, cut: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let r = self.cut_bicomp_offsets[cut as usize]..self.cut_bicomp_offsets[cut as usize + 1];
        r.map(move |k| (self.cut_bicomps[k], self.cut_branch[k]))
    }

    /// Branch weight `|T_b(v)|` for cutpoint node `v` and component `b`;
    /// `None` if `v` is not a cutpoint or not in `b`. O(log) — the
    /// per-cutpoint component lists are sorted (they come from the sorted
    /// memberships).
    pub fn branch_weight(&self, v: NodeId, b: u32) -> Option<u32> {
        let ci = self.cut_index[v as usize];
        if ci == NONE {
            return None;
        }
        let range = self.cut_bicomp_offsets[ci as usize]..self.cut_bicomp_offsets[ci as usize + 1];
        let slice = &self.cut_bicomps[range.clone()];
        slice
            .binary_search(&b)
            .ok()
            .map(|pos| self.cut_branch[range.start + pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, fig2::*};

    fn fig2_tree() -> (crate::Graph, Bicomps, BlockCutTree) {
        let g = fixtures::paper_fig2();
        let bic = Bicomps::compute(&g);
        let t = BlockCutTree::compute(&bic);
        (g, bic, t)
    }

    #[test]
    fn fig2_cutpoints_and_branches() {
        let (_, bic, t) = fig2_tree();
        assert_eq!(t.cutpoints, vec![C, D, I]);
        // Branch weights around d: through C1 {a,b,c,e} -> 4 + triangle cgh
        // minus... through C1 side also reaches c's triangle {g,h}: 6 nodes
        // (a,b,c,e,g,h). Through C3: {f} -> 1. Through C5: {i,j,k} -> 3.
        let c1 = bic.share_bicomp(A, B).unwrap();
        let c3 = bic.share_bicomp(D, F).unwrap();
        let c5 = bic.share_bicomp(D, I).unwrap();
        assert_eq!(t.branch_weight(D, c1), Some(6));
        assert_eq!(t.branch_weight(D, c3), Some(1));
        assert_eq!(t.branch_weight(D, c5), Some(3));
        // Branches of a cutpoint partition the other n-1 nodes.
        let di = t.cut_index[D as usize];
        let total: u32 = t.branches(di).map(|(_, w)| w).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn fig2_branches_of_c_and_i() {
        let (_, bic, t) = fig2_tree();
        let c1 = bic.share_bicomp(A, B).unwrap();
        let c2 = bic.share_bicomp(G, H).unwrap();
        // c: through triangle cgh -> {g,h} = 2; through C1 -> everything else = 8.
        assert_eq!(t.branch_weight(C, c2), Some(2));
        assert_eq!(t.branch_weight(C, c1), Some(8));
        let c4 = bic.share_bicomp(J, K).unwrap();
        let c5 = bic.share_bicomp(D, I).unwrap();
        // i: through ijk -> {j,k} = 2; through C5 -> 8.
        assert_eq!(t.branch_weight(I, c4), Some(2));
        assert_eq!(t.branch_weight(I, c5), Some(8));
        // Non-cutpoints have no branches.
        assert_eq!(t.branch_weight(A, c1), None);
    }

    #[test]
    fn path_graph_branch_weights() {
        let g = fixtures::path_graph(5);
        let bic = Bicomps::compute(&g);
        let t = BlockCutTree::compute(&bic);
        // Node 2 (middle): two blocks {1,2} and {2,3}; branches 2 and 2.
        let b_left = bic.share_bicomp(1, 2).unwrap();
        let b_right = bic.share_bicomp(2, 3).unwrap();
        assert_eq!(t.branch_weight(2, b_left), Some(2));
        assert_eq!(t.branch_weight(2, b_right), Some(2));
        // Node 1: branches 1 (toward 0) and 3 (toward 2,3,4).
        let b0 = bic.share_bicomp(0, 1).unwrap();
        assert_eq!(t.branch_weight(1, b0), Some(1));
        assert_eq!(t.branch_weight(1, b_left), Some(3));
    }

    #[test]
    fn comp_totals_respect_disconnection() {
        let g = fixtures::disconnected_mix();
        let bic = Bicomps::compute(&g);
        let t = BlockCutTree::compute(&bic);
        // Two bicomps in different connected components of sizes 3 and 2.
        let mut totals: Vec<u32> = t.comp_total_of_bicomp.clone();
        totals.sort_unstable();
        assert_eq!(totals, vec![2, 3]);
        assert!(t.cutpoints.is_empty());
    }

    #[test]
    fn star_graph_center_branches() {
        let g = fixtures::star_graph(6);
        let bic = Bicomps::compute(&g);
        let t = BlockCutTree::compute(&bic);
        assert_eq!(t.cutpoints, vec![0]);
        let ci = t.cut_index[0];
        let ws: Vec<u32> = t.branches(ci).map(|(_, w)| w).collect();
        assert_eq!(ws, vec![1; 5]);
    }
}
