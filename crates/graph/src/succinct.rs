//! Succinct CSR offset storage: Elias–Fano monotone sequences with
//! broadword-popcount select, plus the mappable array storage the mmap
//! snapshot tier shares with the plain CSR slot arrays.
//!
//! CSR offsets are a monotone sequence of `n + 1` values in `[0, 2m]` — the
//! textbook Elias–Fano case. Each value is split into `l` low bits, stored
//! packed, and a high part encoded in unary in an upper bitvector: value
//! `i`'s high part `h` sets bit `h + i`. Space is `l + 2..3` bits per value
//! plus ~0.5 bits of select samples, against 64 bits for the `Vec<usize>`
//! offsets it replaces. Lookup of `offsets[i]` is one sampled select (at
//! most [`SELECT_SAMPLE`] popcount words scanned) and the adjacent pair
//! `(offsets[v], offsets[v + 1])` — the CSR hot path — costs one select
//! plus a next-set-bit scan.
//!
//! All arrays live behind [`Words`] / [`U32s`], which are either owned
//! vectors (build path) or windows into a shared [`MmapRegion`] (snapshot
//! serving path) — the same structure works zero-copy off a mapped v3
//! snapshot file.

use std::sync::Arc;

use crate::mmap::MmapRegion;

/// One select sample is kept every this many set bits.
pub const SELECT_SAMPLE: usize = 128;

/// A `u64` array that is either owned or a window into a mapped region.
#[derive(Clone, Debug)]
pub enum Words {
    /// Heap-allocated (build / decode path).
    Owned(Vec<u64>),
    /// `len` words starting `byte_off` bytes into a shared mapping.
    Mapped {
        region: Arc<MmapRegion>,
        byte_off: usize,
        len: usize,
    },
}

impl Words {
    /// Wraps a window of a mapped region as a `u64` array.
    ///
    /// Fails (→ decode fallback) on big-endian hosts, misaligned offsets,
    /// or windows that overrun the mapping — never panics.
    pub fn mapped(region: Arc<MmapRegion>, byte_off: usize, len: usize) -> Result<Words, String> {
        if cfg!(target_endian = "big") {
            return Err("mapped words require a little-endian host".to_string());
        }
        let bytes = len
            .checked_mul(8)
            .and_then(|b| b.checked_add(byte_off))
            .ok_or_else(|| "mapped words: length overflow".to_string())?;
        if bytes > region.len() {
            return Err(format!(
                "mapped words: window {byte_off}+{len}x8 exceeds region of {} bytes",
                region.len()
            ));
        }
        if !(region.as_ptr() as usize + byte_off).is_multiple_of(std::mem::align_of::<u64>()) {
            return Err("mapped words: window is not 8-byte aligned".to_string());
        }
        Ok(Words::Mapped {
            region,
            byte_off,
            len,
        })
    }

    /// The words as a slice; zero-copy for both variants.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        match self {
            Words::Owned(v) => v,
            Words::Mapped {
                region,
                byte_off,
                len,
            } => {
                // SAFETY: the constructor proved the window lies inside the
                // region (`byte_off + len * 8 <= region.len()`), is 8-byte
                // aligned, and the host is little-endian so the byte
                // reinterpretation is value-preserving. The region is
                // read-only and kept alive by the `Arc` for `&self`'s
                // lifetime, so the slice cannot dangle or alias a write.
                unsafe {
                    std::slice::from_raw_parts(region.as_ptr().add(*byte_off) as *const u64, *len)
                }
            }
        }
    }

    /// Bytes occupied by the array (same for owned and mapped).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.as_slice().len() * 8
    }

    /// Whether the storage is a mapped window.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self, Words::Mapped { .. })
    }
}

/// A `u32` array that is either owned or a window into a mapped region.
///
/// Backs the CSR `neighbors` / `edge_ids` slot arrays.
#[derive(Clone, Debug)]
pub enum U32s {
    Owned(Vec<u32>),
    Mapped {
        region: Arc<MmapRegion>,
        byte_off: usize,
        len: usize,
    },
}

impl U32s {
    /// Wraps a window of a mapped region as a `u32` array; same failure
    /// modes (→ decode fallback) as [`Words::mapped`].
    pub fn mapped(region: Arc<MmapRegion>, byte_off: usize, len: usize) -> Result<U32s, String> {
        if cfg!(target_endian = "big") {
            return Err("mapped u32s require a little-endian host".to_string());
        }
        let bytes = len
            .checked_mul(4)
            .and_then(|b| b.checked_add(byte_off))
            .ok_or_else(|| "mapped u32s: length overflow".to_string())?;
        if bytes > region.len() {
            return Err(format!(
                "mapped u32s: window {byte_off}+{len}x4 exceeds region of {} bytes",
                region.len()
            ));
        }
        if !(region.as_ptr() as usize + byte_off).is_multiple_of(std::mem::align_of::<u32>()) {
            return Err("mapped u32s: window is not 4-byte aligned".to_string());
        }
        Ok(U32s::Mapped {
            region,
            byte_off,
            len,
        })
    }

    /// The values as a slice; zero-copy for both variants.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        match self {
            U32s::Owned(v) => v,
            U32s::Mapped {
                region,
                byte_off,
                len,
            } => {
                // SAFETY: mirror of `Words::as_slice` — the constructor
                // proved in-bounds (`byte_off + len * 4 <= region.len()`),
                // 4-byte-aligned, little-endian host; the read-only region
                // is held alive by the `Arc` for the borrow's lifetime.
                unsafe {
                    std::slice::from_raw_parts(region.as_ptr().add(*byte_off) as *const u32, *len)
                }
            }
        }
    }

    /// Bytes occupied by the array.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.as_slice().len() * 4
    }

    /// Whether the storage is a mapped window.
    #[inline]
    pub fn is_mapped(&self) -> bool {
        matches!(self, U32s::Mapped { .. })
    }
}

impl MmapRegion {
    /// Base pointer of the mapping, for alignment checks and window casts.
    #[inline]
    pub fn as_ptr(&self) -> *const u8 {
        self[..].as_ptr()
    }
}

/// An Elias–Fano encoded monotone (non-decreasing) sequence.
#[derive(Clone, Debug)]
pub struct EliasFano {
    /// Number of encoded values.
    len: usize,
    /// Exclusive upper bound on values (`max + 1` as built).
    universe: u64,
    /// Low bits kept verbatim per value.
    low_bits: u32,
    /// Packed low bits, `low_bits` per value.
    low: Words,
    /// Upper unary bitvector: value `i` with high part `h` sets bit `h + i`.
    upper: Words,
    /// `samples[k]` = bit position of set bit number `k * SELECT_SAMPLE`.
    samples: Words,
}

impl EliasFano {
    /// Encodes a non-empty monotone sequence of `usize` values.
    ///
    /// # Panics
    /// Debug-asserts monotonicity; callers (CSR offsets) guarantee it.
    pub fn from_values(values: &[usize]) -> EliasFano {
        assert!(!values.is_empty(), "Elias-Fano of an empty sequence");
        let len = values.len();
        let universe = *values.last().expect("non-empty") as u64 + 1;
        let low_bits = if universe > len as u64 {
            (universe / len as u64).ilog2()
        } else {
            0
        };
        let mut low = vec![0u64; (len * low_bits as usize).div_ceil(64).max(1)];
        let high_last = (universe - 1) >> low_bits;
        let upper_bits = high_last as usize + len;
        let mut upper = vec![0u64; upper_bits.div_ceil(64).max(1)];
        let mut samples = Vec::with_capacity(len.div_ceil(SELECT_SAMPLE));
        let low_mask = if low_bits == 0 {
            0
        } else {
            (1u64 << low_bits) - 1
        };
        let mut prev = 0usize;
        for (i, &v) in values.iter().enumerate() {
            debug_assert!(v >= prev, "offsets must be monotone");
            prev = v;
            if low_bits > 0 {
                let bit = i * low_bits as usize;
                let (wi, shift) = (bit / 64, (bit % 64) as u32);
                low[wi] |= (v as u64 & low_mask) << shift;
                if shift + low_bits > 64 {
                    low[wi + 1] |= (v as u64 & low_mask) >> (64 - shift);
                }
            }
            let pos = ((v as u64) >> low_bits) as usize + i;
            upper[pos / 64] |= 1u64 << (pos % 64);
            if i % SELECT_SAMPLE == 0 {
                samples.push(pos as u64);
            }
        }
        EliasFano {
            len,
            universe,
            low_bits,
            low: Words::Owned(low),
            upper: Words::Owned(upper),
            samples: Words::Owned(samples),
        }
    }

    /// Reassembles an encoding from stored parts (the mmap load path),
    /// verifying every structural invariant the accessors rely on:
    /// array lengths match `len`/`low_bits`, the upper bitvector holds
    /// exactly `len` set bits, and every stored select sample points at the
    /// set bit it claims. One sequential pass; never panics on bad input.
    pub fn from_parts(
        len: usize,
        universe: u64,
        low_bits: u32,
        low: Words,
        upper: Words,
        samples: Words,
    ) -> Result<EliasFano, String> {
        if len == 0 {
            return Err("elias-fano: empty sequence".to_string());
        }
        if low_bits > 63 {
            return Err(format!("elias-fano: low_bits {low_bits} out of range"));
        }
        let want_low = len
            .checked_mul(low_bits as usize)
            .map(|b| b.div_ceil(64).max(1))
            .ok_or_else(|| "elias-fano: low size overflow".to_string())?;
        if low.as_slice().len() != want_low {
            return Err(format!(
                "elias-fano: low words {} != expected {want_low}",
                low.as_slice().len()
            ));
        }
        let want_samples = len.div_ceil(SELECT_SAMPLE);
        if samples.as_slice().len() != want_samples {
            return Err(format!(
                "elias-fano: samples {} != expected {want_samples}",
                samples.as_slice().len()
            ));
        }
        let high_last = universe.saturating_sub(1) >> low_bits;
        let want_upper_min = (high_last as usize)
            .checked_add(len)
            .map(|b| b.div_ceil(64).max(1))
            .ok_or_else(|| "elias-fano: upper size overflow".to_string())?;
        if upper.as_slice().len() != want_upper_min {
            return Err(format!(
                "elias-fano: upper words {} != expected {want_upper_min}",
                upper.as_slice().len()
            ));
        }
        // Single popcount pass: count ones and check each sample's target.
        let sample_slice = samples.as_slice();
        let mut ones = 0usize;
        'scan: for (wi, &w) in upper.as_slice().iter().enumerate() {
            let mut rest = w;
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                if ones >= len {
                    // Too many set bits — flag and stop before the sample
                    // index below could run past the samples array.
                    ones += 1;
                    break 'scan;
                }
                if ones.is_multiple_of(SELECT_SAMPLE) {
                    let want = (wi * 64 + bit) as u64;
                    let got = sample_slice[ones / SELECT_SAMPLE];
                    if got != want {
                        return Err(format!(
                            "elias-fano: sample {} is {got}, expected {want}",
                            ones / SELECT_SAMPLE
                        ));
                    }
                }
                ones += 1;
            }
        }
        if ones != len {
            return Err(format!(
                "elias-fano: upper holds {ones} ones, expected {len}"
            ));
        }
        Ok(EliasFano {
            len,
            universe,
            low_bits,
            low,
            upper,
            samples,
        })
    }

    /// Number of encoded values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Never true: construction rejects empty sequences.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive upper bound the sequence was encoded against.
    #[inline]
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// Low bits kept verbatim per value.
    #[inline]
    pub fn low_bits(&self) -> u32 {
        self.low_bits
    }

    /// The three backing arrays `(low, upper, samples)`, for serialization.
    pub fn parts(&self) -> (&Words, &Words, &Words) {
        (&self.low, &self.upper, &self.samples)
    }

    /// Total bytes of the three backing arrays.
    pub fn byte_len(&self) -> usize {
        self.low.byte_len() + self.upper.byte_len() + self.samples.byte_len()
    }

    /// Whether any backing array is a mapped window.
    pub fn is_mapped(&self) -> bool {
        self.low.is_mapped() || self.upper.is_mapped() || self.samples.is_mapped()
    }

    /// Low bits of value `i`.
    #[inline]
    fn low_value(&self, i: usize) -> u64 {
        let l = self.low_bits;
        if l == 0 {
            return 0;
        }
        let low = self.low.as_slice();
        let bit = i * l as usize;
        let (wi, shift) = (bit / 64, (bit % 64) as u32);
        let mut v = low[wi] >> shift;
        if shift + l > 64 {
            v |= low[wi + 1] << (64 - shift);
        }
        v & ((1u64 << l) - 1)
    }

    /// Bit position of set bit number `i` in the upper bitvector: jump to
    /// the nearest select sample, then popcount-scan forward word by word.
    #[inline]
    fn select(&self, i: usize) -> usize {
        let upper = self.upper.as_slice();
        let pos = self.samples.as_slice()[i / SELECT_SAMPLE] as usize;
        let mut skip = i % SELECT_SAMPLE;
        if skip == 0 {
            return pos;
        }
        let mut wi = pos / 64;
        // Bits strictly after `pos` in its word (the sampled one itself is
        // bit number `i - skip`).
        let mut w = upper[wi] & !(u64::MAX >> (63 - (pos % 64)));
        loop {
            let c = w.count_ones() as usize;
            if skip <= c {
                let mut rest = w;
                for _ in 1..skip {
                    rest &= rest - 1;
                }
                return wi * 64 + rest.trailing_zeros() as usize;
            }
            skip -= c;
            wi += 1;
            w = upper[wi];
        }
    }

    /// Position of the first set bit strictly after `pos`.
    #[inline]
    fn next_one_after(&self, pos: usize) -> usize {
        let upper = self.upper.as_slice();
        let mut wi = pos / 64;
        let b = pos % 64;
        let mut w = if b == 63 {
            0
        } else {
            upper[wi] & (u64::MAX << (b + 1))
        };
        while w == 0 {
            wi += 1;
            w = upper[wi];
        }
        wi * 64 + w.trailing_zeros() as usize
    }

    /// Value `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let pos = self.select(i);
        (((pos - i) as u64) << self.low_bits) | self.low_value(i)
    }

    /// Adjacent values `(get(i), get(i + 1))` with a single select — the
    /// CSR `slot_range` hot path. Requires `i + 1 < len`.
    #[inline]
    pub fn pair(&self, i: usize) -> (u64, u64) {
        debug_assert!(i + 1 < self.len);
        let pos = self.select(i);
        let pos2 = self.next_one_after(pos);
        let a = (((pos - i) as u64) << self.low_bits) | self.low_value(i);
        let b = (((pos2 - i - 1) as u64) << self.low_bits) | self.low_value(i + 1);
        (a, b)
    }

    /// Sequential decode of all values — a linear scan of the upper
    /// bitvector, used by serialization and load-time validation.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let upper = self.upper.as_slice();
        let mut wi = 0usize;
        let mut w = upper.first().copied().unwrap_or(0);
        let mut i = 0usize;
        std::iter::from_fn(move || {
            if i >= self.len {
                return None;
            }
            loop {
                if w != 0 {
                    let pos = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    let v = (((pos - i) as u64) << self.low_bits) | self.low_value(i);
                    i += 1;
                    return Some(v);
                }
                wi += 1;
                w = upper[wi];
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_round_trip(values: &[usize]) {
        let ef = EliasFano::from_values(values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v as u64, "get({i}) of {values:?}");
        }
        for i in 0..values.len().saturating_sub(1) {
            assert_eq!(
                ef.pair(i),
                (values[i] as u64, values[i + 1] as u64),
                "pair({i}) of {values:?}"
            );
        }
        let decoded: Vec<u64> = ef.iter().collect();
        let want: Vec<u64> = values.iter().map(|&v| v as u64).collect();
        assert_eq!(decoded, want);
    }

    #[test]
    fn single_zero_value() {
        check_round_trip(&[0]);
    }

    #[test]
    fn all_equal_values() {
        check_round_trip(&[7; 300]);
    }

    #[test]
    fn dense_and_sparse_sequences() {
        check_round_trip(&[0, 0, 1, 2, 2, 2, 3, 10, 10, 11]);
        check_round_trip(&(0..1000).map(|i| i * 3).collect::<Vec<_>>());
        check_round_trip(&[0, 1, 1, 1_000_000, 1_000_000, 123_456_789]);
    }

    #[test]
    fn crosses_select_sample_boundaries() {
        // > 2 * SELECT_SAMPLE values with irregular gaps.
        let mut values = Vec::new();
        let mut v = 0usize;
        for i in 0..300 {
            v += (i * 7) % 13;
            values.push(v);
        }
        check_round_trip(&values);
    }

    #[test]
    fn low_bits_straddle_word_boundaries() {
        // Universe chosen so low_bits lands on a value that makes the
        // packed low array straddle u64 words (l=5 → straddles at i=12).
        let values: Vec<usize> = (0..200).map(|i| i * 40).collect();
        check_round_trip(&values);
    }

    #[test]
    fn from_parts_round_trips_own_parts() {
        let values: Vec<usize> = (0..500).map(|i| i * 11 / 3).collect();
        let ef = EliasFano::from_values(&values);
        let (low, upper, samples) = ef.parts();
        let re = EliasFano::from_parts(
            ef.len(),
            ef.universe(),
            ef.low_bits(),
            low.clone(),
            upper.clone(),
            samples.clone(),
        )
        .expect("own parts must validate");
        assert_eq!(re.iter().collect::<Vec<_>>(), ef.iter().collect::<Vec<_>>());
    }

    #[test]
    fn from_parts_rejects_corrupt_parts() {
        let values: Vec<usize> = (0..300).map(|i| i * 2).collect();
        let ef = EliasFano::from_values(&values);
        let (low, upper, samples) = ef.parts();

        // Wrong ones count.
        let mut bad_upper = upper.as_slice().to_vec();
        bad_upper[0] ^= 1;
        assert!(EliasFano::from_parts(
            ef.len(),
            ef.universe(),
            ef.low_bits(),
            low.clone(),
            Words::Owned(bad_upper),
            samples.clone(),
        )
        .is_err());

        // Lying sample.
        let mut bad_samples = samples.as_slice().to_vec();
        bad_samples[1] += 1;
        assert!(EliasFano::from_parts(
            ef.len(),
            ef.universe(),
            ef.low_bits(),
            low.clone(),
            upper.clone(),
            Words::Owned(bad_samples),
        )
        .is_err());

        // Truncated low words.
        let short_low = low.as_slice()[..low.as_slice().len() - 1].to_vec();
        assert!(EliasFano::from_parts(
            ef.len(),
            ef.universe(),
            ef.low_bits(),
            Words::Owned(short_low),
            upper.clone(),
            samples.clone(),
        )
        .is_err());
    }

    #[test]
    fn space_is_a_small_fraction_of_plain_offsets() {
        // A CSR-offsets-shaped sequence: 10k values, average gap ~9.
        let values: Vec<usize> = (0..10_000).map(|i| i * 9 + (i % 5)).collect();
        let ef = EliasFano::from_values(&values);
        let plain = values.len() * std::mem::size_of::<usize>();
        assert!(
            ef.byte_len() * 8 <= plain,
            "EF {} bytes vs plain {} bytes",
            ef.byte_len(),
            plain
        );
    }
}
