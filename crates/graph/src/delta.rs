//! Batched edge inserts/deletes with incremental biconnected-component
//! maintenance.
//!
//! The service's `PATCH /graphs/<name>` path lands here: a delta is a set of
//! undirected edges to add and remove. Applying it produces a fresh CSR
//! (edge ids are the lexicographic rank of the canonical edge list, so a
//! delta renumbers ids globally — [`AppliedDelta::edge_map`] carries the
//! old → new correspondence) and a new [`Bicomps`] in which only the
//! connected components whose vertex sets intersect the delta are
//! re-decomposed. Untouched components keep their per-edge labels — spliced
//! through the renumbering — which is what lets every consumer downstream
//! (block-cut tree, out-reach, VC diameter bounds) carry derived state over
//! unchanged, the delta discipline differential dataflow applies to derived
//! relations.
//!
//! The incremental labeling is *exactly* the labeling
//! [`Bicomps::compute`] produces on the patched graph — components are
//! numbered in DFS pop order with roots visited in ascending node order, and
//! both the per-component pop order (structural) and the root order are
//! preserved by splicing — so decompositions stay byte-identical to a
//! from-scratch rebuild (debug builds assert it).

use crate::bicomp::{BicompDfs, Bicomps, UNSET};
use crate::csr::{Graph, NodeId};

/// Sentinel in [`AppliedDelta::edge_map`] / [`AppliedDelta::bicomp_map`]:
/// the edge was deleted, or the component was dirtied and re-decomposed.
pub const UNMAPPED: u32 = u32::MAX;

/// A canonical (sorted, deduplicated, `u < v`) undirected edge list.
pub type EdgeList = Vec<(NodeId, NodeId)>;

/// A batch of undirected edge changes. Endpoint order and duplicates are
/// irrelevant (edges are canonicalized); inserting an existing edge or
/// deleting a missing one is a no-op.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Edges to add.
    pub insert: Vec<(NodeId, NodeId)>,
    /// Edges to remove.
    pub delete: Vec<(NodeId, NodeId)>,
}

/// Why a delta was rejected before touching the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// `(u, u)` edges are dropped by construction and cannot be patched in.
    SelfLoop(NodeId),
    /// An endpoint is `>= num_nodes` (deltas never grow the node set).
    EndpointOutOfRange {
        /// The offending endpoint.
        node: u64,
        /// The graph's node count.
        n: u64,
    },
    /// Both change lists are empty.
    Empty,
    /// The same canonical edge appears in both `insert` and `delete`.
    Conflict(NodeId, NodeId),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::SelfLoop(u) => write!(f, "self-loop ({u}, {u}) in delta"),
            DeltaError::EndpointOutOfRange { node, n } => {
                write!(f, "endpoint {node} out of range for {n} nodes")
            }
            DeltaError::Empty => write!(f, "empty delta: no edges to insert or delete"),
            DeltaError::Conflict(u, v) => {
                write!(f, "edge ({u}, {v}) appears in both insert and delete")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

impl EdgeDelta {
    /// Whether both change lists are empty.
    pub fn is_empty(&self) -> bool {
        self.insert.is_empty() && self.delete.is_empty()
    }

    fn canon(list: &[(NodeId, NodeId)], n: usize) -> Result<Vec<(NodeId, NodeId)>, DeltaError> {
        let mut out = Vec::with_capacity(list.len());
        for &(u, v) in list {
            if let Some(&node) = [u, v].iter().find(|&&x| x as usize >= n) {
                return Err(DeltaError::EndpointOutOfRange {
                    node: node as u64,
                    n: n as u64,
                });
            }
            if u == v {
                return Err(DeltaError::SelfLoop(u));
            }
            out.push(if u < v { (u, v) } else { (v, u) });
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Validates against a graph on `n` nodes and returns the canonical
    /// (sorted, deduplicated, `u < v`) insert and delete lists.
    pub fn normalized(&self, n: usize) -> Result<(EdgeList, EdgeList), DeltaError> {
        if self.is_empty() {
            return Err(DeltaError::Empty);
        }
        let ins = Self::canon(&self.insert, n)?;
        let del = Self::canon(&self.delete, n)?;
        let (mut i, mut j) = (0, 0);
        while i < ins.len() && j < del.len() {
            match ins[i].cmp(&del[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return Err(DeltaError::Conflict(ins[i].0, ins[i].1)),
            }
        }
        Ok((ins, del))
    }
}

/// The result of applying an [`EdgeDelta`]: the patched graph, its
/// decomposition, and the correspondence to the pre-patch state that lets
/// callers splice derived per-edge / per-component data.
#[derive(Debug)]
pub struct AppliedDelta {
    /// The patched graph.
    pub graph: Graph,
    /// Its biconnected components — identical to
    /// `Bicomps::compute(&graph)`, with only dirty components re-derived.
    pub bicomps: Bicomps,
    /// Old edge id → new edge id ([`UNMAPPED`] for deleted edges).
    pub edge_map: Vec<u32>,
    /// Old bicomp id → new bicomp id for components in *untouched*
    /// connected components; [`UNMAPPED`] where the region was dirtied and
    /// re-decomposed (derived data must be recomputed there).
    pub bicomp_map: Vec<u32>,
    /// Per node of the patched graph: whether it lies in a connected
    /// component that intersects the delta. Rankings whose targets avoid
    /// every dirty node are unaffected by the patch.
    pub dirty_nodes: Vec<bool>,
    /// Edges actually added (inserts of existing edges are no-ops).
    pub inserted: usize,
    /// Edges actually removed (deletes of missing edges are no-ops).
    pub deleted: usize,
}

/// Applies `delta` to `g` (whose decomposition is `bic`), rebuilding only
/// the adjacency ranges of endpoints the delta touches and re-deriving
/// articulation structure only for the connected components whose vertex
/// sets intersect it.
pub fn apply(g: &Graph, bic: &Bicomps, delta: &EdgeDelta) -> Result<AppliedDelta, DeltaError> {
    let n = g.num_nodes();
    let (ins, del) = delta.normalized(n)?;

    // Effective change lists: inserting an existing edge or deleting a
    // missing one is a no-op and must not dirty anything.
    let ins: Vec<(NodeId, NodeId)> = ins
        .into_iter()
        .filter(|&(u, v)| !g.has_edge(u, v))
        .collect();
    let del: Vec<(NodeId, NodeId)> = del.into_iter().filter(|&(u, v)| g.has_edge(u, v)).collect();
    let (inserted, deleted) = (ins.len(), del.len());

    if inserted == 0 && deleted == 0 {
        return Ok(AppliedDelta {
            graph: g.clone(),
            bicomps: bic.clone(),
            edge_map: (0..g.num_edges() as u32).collect(),
            bicomp_map: (0..bic.num_bicomps as u32).collect(),
            dirty_nodes: vec![false; n],
            inserted,
            deleted,
        });
    }

    // Merge the old canonical edge list (id order *is* lexicographic order)
    // with the sorted inserts, dropping deletes. Ids renumber globally; the
    // merge order yields both direction maps for free.
    let old_m = g.num_edges();
    let new_m = old_m + inserted - deleted;
    let mut edge_map = vec![UNMAPPED; old_m];
    let mut old_of_new = vec![UNMAPPED; new_m];
    let mut new_edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(new_m);
    {
        let (mut di, mut ii) = (0usize, 0usize);
        for (u, v, eid) in g.edges() {
            while ii < ins.len() && ins[ii] < (u, v) {
                new_edges.push(ins[ii]);
                ii += 1;
            }
            if di < del.len() && del[di] == (u, v) {
                di += 1;
                continue;
            }
            edge_map[eid as usize] = new_edges.len() as u32;
            old_of_new[new_edges.len()] = eid;
            new_edges.push((u, v));
        }
        new_edges.extend_from_slice(&ins[ii..]);
        debug_assert_eq!(di, del.len());
        debug_assert_eq!(new_edges.len(), new_m);
    }

    // Adjacency endpoints the delta touches.
    let mut touched = vec![false; n];
    for &(u, v) in ins.iter().chain(del.iter()) {
        touched[u as usize] = true;
        touched[v as usize] = true;
    }

    // New CSR offsets from degree adjustments.
    let mut offsets = vec![0usize; n + 1];
    for v in 0..n {
        offsets[v + 1] = g.degree(v as NodeId);
    }
    for &(u, v) in &del {
        offsets[u as usize + 1] -= 1;
        offsets[v as usize + 1] -= 1;
    }
    for &(u, v) in &ins {
        offsets[u as usize + 1] += 1;
        offsets[v as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }

    // Directed slots of the inserted edges, grouped by node.
    let mut ins_slots: Vec<(NodeId, NodeId, u32)> = Vec::with_capacity(2 * inserted);
    for (i, &(u, v)) in new_edges.iter().enumerate() {
        if old_of_new[i] == UNMAPPED {
            ins_slots.push((u, v, i as u32));
            ins_slots.push((v, u, i as u32));
        }
    }
    ins_slots.sort_unstable();

    // Fill pass: untouched nodes copy their slice (ids renumbered through
    // the map, neighbor order unchanged); touched nodes merge surviving old
    // slots with inserted slots — both already sorted by neighbor.
    let mut neighbors = vec![0 as NodeId; 2 * new_m];
    let mut edge_ids = vec![0u32; 2 * new_m];
    for v in 0..n as NodeId {
        let mut w = offsets[v as usize];
        if !touched[v as usize] {
            for slot in g.slot_range(v) {
                neighbors[w] = g.neighbor_at(slot);
                edge_ids[w] = edge_map[g.edge_id_at(slot) as usize];
                w += 1;
            }
        } else {
            let lo = ins_slots.partition_point(|&(x, _, _)| x < v);
            let hi = ins_slots.partition_point(|&(x, _, _)| x <= v);
            let mut it = ins_slots[lo..hi].iter().peekable();
            for slot in g.slot_range(v) {
                let mapped = edge_map[g.edge_id_at(slot) as usize];
                if mapped == UNMAPPED {
                    continue;
                }
                let nb = g.neighbor_at(slot);
                while let Some(&&(_, inb, iid)) = it.peek() {
                    if inb < nb {
                        neighbors[w] = inb;
                        edge_ids[w] = iid;
                        w += 1;
                        it.next();
                    } else {
                        break;
                    }
                }
                neighbors[w] = nb;
                edge_ids[w] = mapped;
                w += 1;
            }
            for &(_, inb, iid) in it {
                neighbors[w] = inb;
                edge_ids[w] = iid;
                w += 1;
            }
        }
        debug_assert_eq!(w, offsets[v as usize + 1]);
    }
    let graph = Graph::from_parts(offsets, neighbors, edge_ids, new_m);

    // Dirty region: every node reachable from a touched endpoint in the
    // *patched* graph. A new component either contains a touched node (then
    // every fragment of a split and every side of a merge does too — each
    // boundary edge of the delta has an endpoint in it) or is bit-identical
    // to its old self.
    let mut dirty_nodes = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    for v in 0..n {
        if touched[v] && !dirty_nodes[v] {
            dirty_nodes[v] = true;
            stack.push(v as NodeId);
            while let Some(x) = stack.pop() {
                for &y in graph.neighbors(x) {
                    if !dirty_nodes[y as usize] {
                        dirty_nodes[y as usize] = true;
                        stack.push(y);
                    }
                }
            }
        }
    }

    // Old connected components (roots ascending, matching compute()'s DFS
    // root order) and each one's bicomp id range — contiguous, because the
    // decomposition DFS finishes a connected component before the next root.
    let mut old_comp = vec![u32::MAX; n];
    let mut nc_old = 0u32;
    for v in 0..n {
        if old_comp[v] != u32::MAX {
            continue;
        }
        old_comp[v] = nc_old;
        stack.push(v as NodeId);
        while let Some(x) = stack.pop() {
            for &y in g.neighbors(x) {
                if old_comp[y as usize] == u32::MAX {
                    old_comp[y as usize] = nc_old;
                    stack.push(y);
                }
            }
        }
        nc_old += 1;
    }
    let mut comp_b_lo = vec![u32::MAX; nc_old as usize];
    let mut comp_b_hi = vec![0u32; nc_old as usize];
    let mut comp_b_count = vec![0u32; nc_old as usize];
    for b in 0..bic.num_bicomps as u32 {
        let rep = bic.nodes_of(b)[0];
        let c = old_comp[rep as usize] as usize;
        comp_b_lo[c] = comp_b_lo[c].min(b);
        comp_b_hi[c] = comp_b_hi[c].max(b);
        comp_b_count[c] += 1;
    }
    debug_assert!((0..nc_old as usize)
        .all(|c| comp_b_lo[c] == u32::MAX || comp_b_hi[c] - comp_b_lo[c] + 1 == comp_b_count[c]));

    // Label pass. Dirty components run the real DFS; untouched components
    // reserve the same number of consecutive labels compute() would assign
    // here and splice the old ones in their old (= structural pop) order.
    let mut dfs = BicompDfs::new(n, new_m);
    let mut bicomp_map = vec![UNMAPPED; bic.num_bicomps];
    for root in 0..n as NodeId {
        if dfs.disc[root as usize] != UNSET || graph.degree(root) == 0 {
            continue;
        }
        if dirty_nodes[root as usize] {
            dfs.run_root(&graph, root);
        } else {
            let c = old_comp[root as usize] as usize;
            debug_assert_ne!(comp_b_lo[c], u32::MAX, "edged component has bicomps");
            let (lo, hi) = (comp_b_lo[c], comp_b_hi[c]);
            let base = dfs.num_bicomps as u32;
            for b in lo..=hi {
                bicomp_map[b as usize] = base + (b - lo);
            }
            dfs.num_bicomps += (hi - lo + 1) as usize;
            // Mark the component visited without re-deriving anything.
            dfs.disc[root as usize] = 0;
            stack.push(root);
            while let Some(x) = stack.pop() {
                for &y in graph.neighbors(x) {
                    if dfs.disc[y as usize] == UNSET {
                        dfs.disc[y as usize] = 0;
                        stack.push(y);
                    }
                }
            }
        }
    }
    let num_bicomps = dfs.num_bicomps;
    let mut edge_bicomp = dfs.edge_bicomp;
    for (i, lbl) in edge_bicomp.iter_mut().enumerate() {
        if *lbl == UNSET {
            let old_id = old_of_new[i];
            debug_assert_ne!(old_id, UNMAPPED, "unlabeled edges are survivors");
            *lbl = bicomp_map[bic.edge_bicomp[old_id as usize] as usize];
            debug_assert_ne!(*lbl, UNMAPPED, "survivor lies in an untouched component");
        }
    }

    let bicomps = Bicomps::assemble(&graph, num_bicomps, edge_bicomp);
    debug_assert_eq!(
        bicomps,
        Bicomps::compute(&graph),
        "incremental decomposition diverged from a from-scratch rebuild"
    );

    Ok(AppliedDelta {
        graph,
        bicomps,
        edge_map,
        bicomp_map,
        dirty_nodes,
        inserted,
        deleted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::GraphBuilder;

    fn ins(edges: &[(NodeId, NodeId)]) -> EdgeDelta {
        EdgeDelta {
            insert: edges.to_vec(),
            delete: vec![],
        }
    }

    fn del(edges: &[(NodeId, NodeId)]) -> EdgeDelta {
        EdgeDelta {
            insert: vec![],
            delete: edges.to_vec(),
        }
    }

    /// Applies `delta` and cross-checks the result against from-scratch
    /// construction of the patched edge list.
    fn check(g: &Graph, delta: &EdgeDelta) -> AppliedDelta {
        let bic = Bicomps::compute(g);
        let applied = apply(g, &bic, delta).unwrap();

        // Graph equals a builder rebuild of (old − del + ins).
        let mut b = GraphBuilder::new(g.num_nodes());
        let (ins, del) = delta.normalized(g.num_nodes()).unwrap();
        for (u, v, _) in g.edges() {
            if del.binary_search(&(u, v)).is_err() {
                b.push(u, v);
            }
        }
        for &(u, v) in &ins {
            b.push(u, v);
        }
        let want = b.build().unwrap();
        assert_eq!(applied.graph.num_edges(), want.num_edges());
        for v in g.nodes() {
            assert_eq!(applied.graph.neighbors(v), want.neighbors(v), "node {v}");
            for slot in applied.graph.slot_range(v) {
                assert_eq!(
                    applied.graph.edge_id_at(slot),
                    want.edge_id_at(slot),
                    "slot {slot}"
                );
            }
        }

        // Decomposition equals from-scratch (also debug_asserted inside).
        assert_eq!(applied.bicomps, Bicomps::compute(&applied.graph));

        // edge_map consistency: survivors keep their endpoints.
        for (u, v, eid) in g.edges() {
            let mapped = applied.edge_map[eid as usize];
            if del.binary_search(&(u, v)).is_ok() {
                assert_eq!(mapped, UNMAPPED);
            } else {
                assert_eq!(applied.graph.edge_id(u, v), Some(mapped));
            }
        }

        // bicomp_map consistency: mapped components have identical node
        // sets, and unmapped ones intersect the dirty region.
        for ob in 0..bic.num_bicomps as u32 {
            match applied.bicomp_map[ob as usize] {
                UNMAPPED => assert!(bic
                    .nodes_of(ob)
                    .iter()
                    .any(|&v| applied.dirty_nodes[v as usize])),
                nb => assert_eq!(bic.nodes_of(ob), applied.bicomps.nodes_of(nb)),
            }
        }
        applied
    }

    #[test]
    fn insert_bridge_merges_components() {
        // disconnected_mix: triangle {0,1,2} + edge {3,4} + isolated 5.
        let g = fixtures::disconnected_mix();
        let applied = check(&g, &ins(&[(2, 3)]));
        assert_eq!(applied.inserted, 1);
        assert_eq!(applied.deleted, 0);
        // Both merged components are dirty; node 5 stays clean.
        assert!(applied.dirty_nodes[0] && applied.dirty_nodes[4]);
        assert!(!applied.dirty_nodes[5]);
    }

    #[test]
    fn delete_splits_component() {
        let g = fixtures::two_triangles_bridge();
        let applied = check(&g, &del(&[(2, 3)]));
        assert_eq!(applied.deleted, 1);
        // The whole former component is dirty.
        assert!(applied.dirty_nodes.iter().all(|&d| d));
    }

    #[test]
    fn untouched_component_is_spliced_not_recomputed() {
        // Two far-apart structures: patch one, the other's blocks map over.
        let mut b = GraphBuilder::new(9);
        // Component A: triangle 0-1-2 with a tail 2-3.
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (2, 3)] {
            b.push(u, v);
        }
        // Component B: square 4-5-6-7 with a tail 7-8.
        for &(u, v) in &[(4, 5), (5, 6), (6, 7), (4, 7), (7, 8)] {
            b.push(u, v);
        }
        let g = b.build().unwrap();
        let bic = Bicomps::compute(&g);
        let applied = check(&g, &ins(&[(1, 3)]));
        for v in 4..9 {
            assert!(!applied.dirty_nodes[v]);
        }
        // Every component B block survived through the map.
        for ob in 0..bic.num_bicomps as u32 {
            let in_b = bic.nodes_of(ob)[0] >= 4;
            assert_eq!(applied.bicomp_map[ob as usize] != UNMAPPED, in_b);
        }
    }

    #[test]
    fn noop_changes_nothing() {
        let g = fixtures::paper_fig2();
        let bic = Bicomps::compute(&g);
        // Insert an existing edge + delete a missing one: effective no-op.
        let delta = EdgeDelta {
            insert: vec![(0, 1)],
            delete: vec![(0, 9)],
        };
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 9));
        let applied = apply(&g, &bic, &delta).unwrap();
        assert_eq!(applied.inserted, 0);
        assert_eq!(applied.deleted, 0);
        assert!(applied.dirty_nodes.iter().all(|&d| !d));
        assert_eq!(applied.graph.num_edges(), g.num_edges());
        assert_eq!(applied.bicomps, bic);
    }

    #[test]
    fn validation_errors() {
        let g = fixtures::path_graph(4);
        let bic = Bicomps::compute(&g);
        let err = |d: &EdgeDelta| apply(&g, &bic, d).unwrap_err();
        assert_eq!(err(&EdgeDelta::default()), DeltaError::Empty);
        assert_eq!(err(&ins(&[(1, 1)])), DeltaError::SelfLoop(1));
        assert_eq!(
            err(&del(&[(0, 7)])),
            DeltaError::EndpointOutOfRange { node: 7, n: 4 }
        );
        assert_eq!(
            err(&EdgeDelta {
                insert: vec![(0, 3)],
                delete: vec![(3, 0)],
            }),
            DeltaError::Conflict(0, 3)
        );
    }

    #[test]
    fn duplicate_and_reversed_edges_canonicalize() {
        let g = fixtures::path_graph(5);
        let applied = check(
            &g,
            &ins(&[(4, 0), (0, 4), (4, 0)]), // one canonical edge (0, 4)
        );
        assert_eq!(applied.inserted, 1);
        assert!(applied.graph.has_edge(0, 4));
    }

    #[test]
    fn mixed_batches_on_fixtures_match_rebuild() {
        for g in [
            fixtures::paper_fig2(),
            fixtures::grid_graph(4, 4),
            fixtures::lollipop_graph(5, 4),
            fixtures::disconnected_mix(),
            fixtures::star_graph(7),
        ] {
            let n = g.num_nodes() as NodeId;
            // A few deterministic mixed batches.
            let present: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
            let d1 = EdgeDelta {
                insert: vec![(0, n - 1)],
                delete: vec![present[0]],
            };
            check(&g, &d1);
            let d2 = EdgeDelta {
                insert: vec![(1, n - 2), (0, n / 2)],
                delete: vec![present[present.len() / 2], *present.last().unwrap()],
            };
            check(&g, &d2);
        }
    }

    #[test]
    fn randomized_batches_match_from_scratch() {
        // Deterministic xorshift so the graph crate needs no RNG dep.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..30 {
            let n = 6 + (next() % 14) as usize;
            let mut b = GraphBuilder::new(n);
            for u in 0..n as NodeId {
                for v in (u + 1)..n as NodeId {
                    if next() % 100 < 22 {
                        b.push(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            let present: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
            let mut delta = EdgeDelta::default();
            for _ in 0..1 + next() % 4 {
                let u = (next() % n as u64) as NodeId;
                let v = (next() % n as u64) as NodeId;
                if u != v
                    && delta
                        .delete
                        .iter()
                        .all(|&(a, b)| (a, b) != (u.min(v), u.max(v)))
                {
                    delta.insert.push((u, v));
                }
            }
            for _ in 0..next() % 3 {
                if present.is_empty() {
                    break;
                }
                let e = present[(next() % present.len() as u64) as usize];
                if delta.insert.iter().all(|&(a, b)| (a.min(b), a.max(b)) != e) {
                    delta.delete.push(e);
                }
            }
            if delta.is_empty() {
                continue;
            }
            check(&g, &delta);
            let _ = round;
        }
    }
}
