//! Biconnected components, cutpoints and per-edge component labels
//! (iterative Hopcroft–Tarjan).
//!
//! SaPHyRa_bc's ISP sample space (§IV-A) is built on the observation that
//! every shortest path between two nodes of the same bi-component stays
//! inside that component (a path that left through a cutpoint would have to
//! re-enter through it, revisiting a node). Biconnected components partition
//! *edges*, so we label every undirected edge with its component id; the
//! label is retrievable from either CSR direction in O(1), which gives the
//! samplers and `Exact_bc` their intra-component tests for free.

use crate::csr::{Graph, NodeId};

pub(crate) const UNSET: u32 = u32::MAX;

/// Result of the biconnected-component decomposition.
///
/// Components are edge sets; a node belongs to every component one of its
/// edges belongs to. Nodes in more than one component are exactly the
/// cutpoints (articulation points). Isolated nodes belong to none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bicomps {
    /// Number of biconnected components `ℓ`.
    pub num_bicomps: usize,
    /// Component id per undirected edge id.
    pub edge_bicomp: Vec<u32>,
    /// Whether each node is a cutpoint.
    pub is_cutpoint: Vec<bool>,
    /// CSR over components: `bicomp_nodes[bicomp_node_offsets[b]..
    /// bicomp_node_offsets[b+1]]` lists the (sorted) nodes of component `b`.
    pub bicomp_node_offsets: Vec<usize>,
    /// Concatenated per-component node lists.
    pub bicomp_nodes: Vec<NodeId>,
    /// CSR over nodes: the (sorted) component ids each node belongs to.
    pub membership_offsets: Vec<usize>,
    /// Concatenated per-node component-id lists.
    pub membership_bicomps: Vec<u32>,
}

impl Bicomps {
    /// Decomposes `g` with an iterative DFS (explicit stack — the paper's
    /// networks have path-like regions deep enough to overflow the call
    /// stack).
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_nodes();
        let m = g.num_edges();
        let mut dfs = BicompDfs::new(n, m);
        for root in g.nodes() {
            dfs.run_root(g, root);
        }
        debug_assert!(dfs.edge_bicomp.iter().all(|&b| b != UNSET || m == 0));
        let BicompDfs {
            num_bicomps,
            edge_bicomp,
            ..
        } = dfs;
        Self::assemble(g, num_bicomps, edge_bicomp)
    }

    /// Builds the node lists and memberships from the per-edge labels.
    pub(crate) fn assemble(g: &Graph, num_bicomps: usize, edge_bicomp: Vec<u32>) -> Self {
        let n = g.num_nodes();
        // Unique (bicomp, node) incidence pairs.
        let mut pairs: Vec<(u32, NodeId)> = Vec::with_capacity(2 * g.num_edges());
        for (u, v, eid) in g.edges() {
            let b = edge_bicomp[eid as usize];
            pairs.push((b, u));
            pairs.push((b, v));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut bicomp_node_offsets = vec![0usize; num_bicomps + 1];
        for &(b, _) in &pairs {
            bicomp_node_offsets[b as usize + 1] += 1;
        }
        for i in 0..num_bicomps {
            bicomp_node_offsets[i + 1] += bicomp_node_offsets[i];
        }
        let bicomp_nodes: Vec<NodeId> = pairs.iter().map(|&(_, v)| v).collect();

        // Invert to per-node membership lists.
        let mut membership_offsets = vec![0usize; n + 1];
        for &(_, v) in &pairs {
            membership_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            membership_offsets[i + 1] += membership_offsets[i];
        }
        let mut membership_bicomps = vec![0u32; pairs.len()];
        let mut cursor = membership_offsets.clone();
        // `pairs` is sorted by (b, v), so per-node lists come out sorted by b.
        for &(b, v) in &pairs {
            membership_bicomps[cursor[v as usize]] = b;
            cursor[v as usize] += 1;
        }

        let is_cutpoint: Vec<bool> = (0..n)
            .map(|v| membership_offsets[v + 1] - membership_offsets[v] > 1)
            .collect();

        Bicomps {
            num_bicomps,
            edge_bicomp,
            is_cutpoint,
            bicomp_node_offsets,
            bicomp_nodes,
            membership_offsets,
            membership_bicomps,
        }
    }

    /// Nodes of component `b`, sorted ascending.
    #[inline]
    pub fn nodes_of(&self, b: u32) -> &[NodeId] {
        &self.bicomp_nodes
            [self.bicomp_node_offsets[b as usize]..self.bicomp_node_offsets[b as usize + 1]]
    }

    /// Component ids `v` belongs to (empty for isolated nodes), sorted.
    #[inline]
    pub fn bicomps_of(&self, v: NodeId) -> &[u32] {
        &self.membership_bicomps
            [self.membership_offsets[v as usize]..self.membership_offsets[v as usize + 1]]
    }

    /// Component id of an undirected edge.
    #[inline]
    pub fn bicomp_of_edge(&self, edge_id: u32) -> u32 {
        self.edge_bicomp[edge_id as usize]
    }

    /// Component id of the CSR slot's edge (O(1) intra-component test).
    #[inline]
    pub fn bicomp_of_slot(&self, g: &Graph, slot: usize) -> u32 {
        self.edge_bicomp[g.edge_id_at(slot) as usize]
    }

    /// Cutpoint node ids, ascending.
    pub fn cutpoints(&self) -> Vec<NodeId> {
        (0..self.is_cutpoint.len() as NodeId)
            .filter(|&v| self.is_cutpoint[v as usize])
            .collect()
    }

    /// Number of nodes in component `b`.
    #[inline]
    pub fn size_of(&self, b: u32) -> usize {
        self.bicomp_node_offsets[b as usize + 1] - self.bicomp_node_offsets[b as usize]
    }

    /// Whether `u` and `v` share a biconnected component (both lists are
    /// sorted: linear merge over the usually tiny membership lists).
    pub fn share_bicomp(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let (a, b) = (self.bicomps_of(u), self.bicomps_of(v));
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return Some(a[i]),
            }
        }
        None
    }
}

/// Reusable state of the iterative Hopcroft–Tarjan DFS, exposed per root so
/// the incremental path ([`crate::delta`]) can relabel *only* the connected
/// components a delta touched while reproducing [`Bicomps::compute`]'s exact
/// label assignment (components are numbered in pop order, roots in
/// ascending node order).
pub(crate) struct BicompDfs {
    pub(crate) disc: Vec<u32>,
    low: Vec<u32>,
    /// Per-edge component labels being filled in ([`UNSET`] = unlabeled).
    pub(crate) edge_bicomp: Vec<u32>,
    edge_stack: Vec<u32>,
    stack: Vec<Frame>,
    /// Labels assigned so far; the next component gets this id.
    pub(crate) num_bicomps: usize,
    timer: u32,
}

/// DFS frame: node, its CSR cursor, and the edge id to its parent.
struct Frame {
    v: NodeId,
    cursor: usize,
    parent_edge: u32,
}

impl BicompDfs {
    pub(crate) fn new(n: usize, m: usize) -> Self {
        BicompDfs {
            disc: vec![UNSET; n],
            low: vec![0u32; n],
            edge_bicomp: vec![UNSET; m],
            edge_stack: Vec::new(),
            stack: Vec::new(),
            num_bicomps: 0,
            timer: 0,
        }
    }

    /// Explores the connected component of `root` (no-op when `root` was
    /// already discovered or is isolated), labeling its edges with fresh
    /// consecutive component ids. Iterative DFS — the paper's networks have
    /// path-like regions deep enough to overflow the call stack.
    pub(crate) fn run_root(&mut self, g: &Graph, root: NodeId) {
        if self.disc[root as usize] != UNSET || g.degree(root) == 0 {
            return;
        }
        self.disc[root as usize] = self.timer;
        self.low[root as usize] = self.timer;
        self.timer += 1;
        self.stack.push(Frame {
            v: root,
            cursor: g.slot_range(root).start,
            parent_edge: UNSET,
        });

        while let Some(top) = self.stack.last_mut() {
            let v = top.v;
            if top.cursor < g.slot_range(v).end {
                let slot = top.cursor;
                top.cursor += 1;
                let eid = g.edge_id_at(slot);
                if eid == top.parent_edge {
                    continue;
                }
                let w = g.neighbor_at(slot);
                let dw = self.disc[w as usize];
                if dw == UNSET {
                    // Tree edge: descend.
                    self.edge_stack.push(eid);
                    self.disc[w as usize] = self.timer;
                    self.low[w as usize] = self.timer;
                    self.timer += 1;
                    self.stack.push(Frame {
                        v: w,
                        cursor: g.slot_range(w).start,
                        parent_edge: eid,
                    });
                } else if dw < self.disc[v as usize] {
                    // Back edge (the twin direction has disc[w] > disc[v]
                    // and is skipped there).
                    self.edge_stack.push(eid);
                    self.low[v as usize] = self.low[v as usize].min(dw);
                }
            } else {
                // Retreat from v.
                let finished = self.stack.pop().expect("frame present");
                if let Some(parent) = self.stack.last() {
                    let u = parent.v;
                    self.low[u as usize] = self.low[u as usize].min(self.low[finished.v as usize]);
                    if self.low[finished.v as usize] >= self.disc[u as usize] {
                        // u separates the subtree of v: everything pushed
                        // since (u, v) forms one biconnected component.
                        let id = self.num_bicomps as u32;
                        self.num_bicomps += 1;
                        while let Some(e) = self.edge_stack.pop() {
                            self.edge_bicomp[e as usize] = id;
                            if e == finished.parent_edge {
                                break;
                            }
                        }
                    }
                }
            }
        }
        debug_assert!(self.edge_stack.is_empty(), "leftover edges after root");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{self, fig2::*};

    #[test]
    fn fig2_decomposition_matches_paper() {
        let g = fixtures::paper_fig2();
        let bic = Bicomps::compute(&g);
        assert_eq!(bic.num_bicomps, 5);
        // Cutpoints are exactly c, d, i.
        assert_eq!(bic.cutpoints(), vec![C, D, I]);
        // Node sets of the five components (order of ids is DFS-dependent).
        let mut comps: Vec<Vec<u32>> = (0..5).map(|b| bic.nodes_of(b).to_vec()).collect();
        comps.sort();
        let mut expected = vec![
            vec![A, B, C, D, E],
            vec![C, G, H],
            vec![D, F],
            vec![D, I],
            vec![I, J, K],
        ];
        expected.sort();
        assert_eq!(comps, expected);
    }

    #[test]
    fn edges_partitioned_and_consistent_with_node_sets() {
        let g = fixtures::paper_fig2();
        let bic = Bicomps::compute(&g);
        for (u, v, eid) in g.edges() {
            let b = bic.bicomp_of_edge(eid);
            assert!(bic.nodes_of(b).contains(&u));
            assert!(bic.nodes_of(b).contains(&v));
        }
        // Every component has at least one edge.
        let mut count = vec![0usize; bic.num_bicomps];
        for (_, _, eid) in g.edges() {
            count[bic.bicomp_of_edge(eid) as usize] += 1;
        }
        assert!(count.iter().all(|&c| c > 0));
    }

    #[test]
    fn biconnected_graph_is_single_component() {
        for g in [
            fixtures::cycle_graph(6),
            fixtures::complete_graph(5),
            fixtures::grid_graph(4, 4),
        ] {
            let bic = Bicomps::compute(&g);
            assert_eq!(bic.num_bicomps, 1, "{} nodes", g.num_nodes());
            assert!(bic.cutpoints().is_empty());
            assert_eq!(bic.nodes_of(0).len(), g.num_nodes());
        }
    }

    #[test]
    fn path_graph_every_edge_is_a_block() {
        let g = fixtures::path_graph(6);
        let bic = Bicomps::compute(&g);
        assert_eq!(bic.num_bicomps, 5);
        // Interior nodes are cutpoints.
        assert_eq!(bic.cutpoints(), vec![1, 2, 3, 4]);
        for b in 0..5u32 {
            assert_eq!(bic.size_of(b), 2);
        }
    }

    #[test]
    fn lollipop_blocks() {
        let g = fixtures::lollipop_graph(4, 3);
        let bic = Bicomps::compute(&g);
        // K4 plus three path edges = 4 components.
        assert_eq!(bic.num_bicomps, 4);
        assert_eq!(bic.cutpoints(), vec![3, 4, 5]);
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = fixtures::disconnected_mix();
        let bic = Bicomps::compute(&g);
        assert_eq!(bic.num_bicomps, 2); // triangle + edge
        assert!(bic.bicomps_of(5).is_empty()); // isolated node
        assert!(!bic.is_cutpoint.iter().any(|&c| c));
    }

    #[test]
    fn share_bicomp_queries() {
        let g = fixtures::paper_fig2();
        let bic = Bicomps::compute(&g);
        assert!(bic.share_bicomp(A, E).is_some()); // both in C1
        assert!(bic.share_bicomp(G, H).is_some());
        assert!(bic.share_bicomp(A, G).is_none()); // across cutpoint c
        assert!(bic.share_bicomp(F, I).is_none()); // across cutpoint d
                                                   // A cutpoint shares with members of all its components.
        assert!(bic.share_bicomp(D, F).is_some());
        assert!(bic.share_bicomp(D, I).is_some());
        assert!(bic.share_bicomp(D, A).is_some());
    }

    #[test]
    fn two_triangles_bridge_blocks() {
        let g = fixtures::two_triangles_bridge();
        let bic = Bicomps::compute(&g);
        assert_eq!(bic.num_bicomps, 3);
        assert_eq!(bic.cutpoints(), vec![2, 3]);
        // Bridge {2,3} is its own block.
        let b = bic.share_bicomp(2, 3).unwrap();
        assert_eq!(bic.nodes_of(b), &[2, 3]);
    }
}
