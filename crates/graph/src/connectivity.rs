//! Connected components.
//!
//! The SaPHyRa distributions (γ, η, out-reach) are defined per connected
//! component; the paper implicitly assumes connectivity and we generalize by
//! computing pair weights within each component (DESIGN.md §2).

use crate::bfs::BfsWorkspace;
use crate::csr::{Graph, NodeId};

/// Connected-component labelling of a graph.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per node.
    pub comp_of: Vec<u32>,
    /// Component sizes indexed by component id.
    pub sizes: Vec<u32>,
}

impl Components {
    /// Labels components via repeated BFS.
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut comp_of = vec![u32::MAX; n];
        let mut sizes = Vec::new();
        let mut ws = BfsWorkspace::new(n);
        for s in g.nodes() {
            if comp_of[s as usize] != u32::MAX {
                continue;
            }
            let id = sizes.len() as u32;
            ws.run(g, s);
            for &v in &ws.order {
                comp_of[v as usize] = id;
            }
            sizes.push(ws.order.len() as u32);
        }
        Components { comp_of, sizes }
    }

    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Size of the component containing `v`.
    #[inline]
    pub fn size_of(&self, v: NodeId) -> u32 {
        self.sizes[self.comp_of[v as usize] as usize]
    }

    /// Whether `u` and `v` share a component.
    #[inline]
    pub fn connected(&self, u: NodeId, v: NodeId) -> bool {
        self.comp_of[u as usize] == self.comp_of[v as usize]
    }

    /// Id of the largest component.
    pub fn largest(&self) -> u32 {
        (0..self.sizes.len() as u32)
            .max_by_key(|&c| self.sizes[c as usize])
            .expect("at least one component")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn single_component() {
        let g = fixtures::grid_graph(3, 3);
        let c = Components::compute(&g);
        assert_eq!(c.count(), 1);
        assert_eq!(c.sizes[0], 9);
        assert!(c.connected(0, 8));
    }

    #[test]
    fn disconnected_mix_components() {
        let g = fixtures::disconnected_mix();
        let c = Components::compute(&g);
        assert_eq!(c.count(), 3);
        assert!(c.connected(0, 2));
        assert!(c.connected(3, 4));
        assert!(!c.connected(0, 3));
        assert!(!c.connected(4, 5));
        assert_eq!(c.size_of(5), 1);
        let mut sz = c.sizes.clone();
        sz.sort_unstable();
        assert_eq!(sz, vec![1, 2, 3]);
        assert_eq!(c.sizes[c.largest() as usize], 3);
    }
}
