//! Little-endian binary wire primitives and a CRC-32 checksum, shared by
//! every on-disk format in the workspace (graph snapshots, decomposition
//! sections).
//!
//! The encoding is deliberately trivial — fixed-width little-endian scalars
//! and length-prefixed sequences — so that a snapshot written by one build
//! is readable by any other build of the same format version, independent of
//! platform word size. All multi-byte values are little-endian; `usize`
//! travels as `u64`.
//!
//! Reading is *checked*: every length prefix is validated against the bytes
//! actually remaining, so a truncated or corrupted buffer fails with a
//! [`WireError`] instead of a huge allocation or a panic.

use std::fmt;

/// Decoding error: what was being read and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

// ---------------------------------------------------------------------------
// Writers (infallible: they append to a Vec).
// ---------------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, x: u8) {
    out.push(x);
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

/// Appends a `usize` as a little-endian `u64`.
pub fn put_usize(out: &mut Vec<u8>, x: usize) {
    put_u64(out, x as u64);
}

/// Appends an `f64` by bit pattern (exact round trip, NaN payloads kept).
pub fn put_f64(out: &mut Vec<u8>, x: f64) {
    put_u64(out, x.to_bits());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Appends a length-prefixed `u32` sequence.
pub fn put_vec_u32(out: &mut Vec<u8>, xs: &[u32]) {
    put_usize(out, xs.len());
    for &x in xs {
        put_u32(out, x);
    }
}

/// Appends a length-prefixed `usize` sequence (as `u64`s).
pub fn put_vec_usize(out: &mut Vec<u8>, xs: &[usize]) {
    put_usize(out, xs.len());
    for &x in xs {
        put_usize(out, x);
    }
}

/// Appends a length-prefixed `f64` sequence (bit patterns).
pub fn put_vec_f64(out: &mut Vec<u8>, xs: &[f64]) {
    put_usize(out, xs.len());
    for &x in xs {
        put_f64(out, x);
    }
}

/// Appends a length-prefixed `bool` sequence (one byte each).
pub fn put_vec_bool(out: &mut Vec<u8>, xs: &[bool]) {
    put_usize(out, xs.len());
    for &x in xs {
        put_u8(out, x as u8);
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A checked cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return err(format!(
                "truncated {what}: need {n} bytes, have {}",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n, "raw bytes")
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().unwrap()))
    }

    /// Reads a `usize` written as `u64`, rejecting values beyond this
    /// platform's address space.
    pub fn usize_(&mut self) -> Result<usize, WireError> {
        let x = self.u64()?;
        usize::try_from(x).map_err(|_| WireError(format!("usize value {x} overflows platform")))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length that prefixes a sequence of `elem_bytes`-wide
    /// elements, validating it against the bytes remaining — corrupt
    /// prefixes fail here instead of triggering multi-gigabyte allocations.
    fn seq_len(&mut self, elem_bytes: usize, what: &str) -> Result<usize, WireError> {
        let len = self.usize_()?;
        match len.checked_mul(elem_bytes) {
            Some(total) if total <= self.remaining() => Ok(len),
            _ => err(format!(
                "corrupt {what} length {len}: exceeds {} remaining bytes",
                self.remaining()
            )),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str_(&mut self) -> Result<String, WireError> {
        let len = self.seq_len(1, "string")?;
        let bytes = self.take(len, "string")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError("string is not UTF-8".into()))
    }

    /// Reads a length-prefixed `u32` sequence (bulk byte conversion — the
    /// snapshot fast-load path moves millions of elements).
    pub fn vec_u32(&mut self) -> Result<Vec<u32>, WireError> {
        let len = self.seq_len(4, "u32 sequence")?;
        let bytes = self.take(len * 4, "u32 sequence")?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Reads a length-prefixed `usize` sequence.
    pub fn vec_usize(&mut self) -> Result<Vec<usize>, WireError> {
        let len = self.seq_len(8, "usize sequence")?;
        let bytes = self.take(len * 8, "usize sequence")?;
        bytes
            .chunks_exact(8)
            .map(|c| {
                let x = u64::from_le_bytes(c.try_into().unwrap());
                usize::try_from(x)
                    .map_err(|_| WireError(format!("usize value {x} overflows platform")))
            })
            .collect()
    }

    /// Reads a length-prefixed `f64` sequence (bit patterns).
    pub fn vec_f64(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.seq_len(8, "f64 sequence")?;
        let bytes = self.take(len * 8, "f64 sequence")?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    /// Reads a length-prefixed `bool` sequence, rejecting bytes other than
    /// 0/1.
    pub fn vec_bool(&mut self) -> Result<Vec<bool>, WireError> {
        let len = self.seq_len(1, "bool sequence")?;
        (0..len)
            .map(|_| match self.u8()? {
                0 => Ok(false),
                1 => Ok(true),
                b => err(format!("invalid bool byte {b}")),
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum guarding every
// snapshot section against bit rot and truncation.
// ---------------------------------------------------------------------------

/// 8 slicing tables: `CRC_TABLES[0]` is the classic byte-at-a-time table;
/// table `k` maps a byte to its CRC contribution `k` positions further
/// ahead, letting the hot loop fold 8 input bytes per iteration
/// ("slicing-by-8" — snapshots of the paper's graphs run to tens of MB,
/// and a byte-at-a-time CRC would dominate the snapshot-load win).
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 3);
        put_usize(&mut out, 123_456);
        put_f64(&mut out, -0.0);
        put_f64(&mut out, f64::NAN);
        put_str(&mut out, "héllo");
        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize_().unwrap(), 123_456);
        // -0.0 keeps its sign bit; NaN keeps its payload.
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.str_().unwrap(), "héllo");
        assert!(r.is_empty());
    }

    #[test]
    fn sequence_round_trips() {
        let mut out = Vec::new();
        put_vec_u32(&mut out, &[1, 2, u32::MAX]);
        put_vec_usize(&mut out, &[0, 9, 100]);
        put_vec_f64(&mut out, &[1.5, -2.25]);
        put_vec_bool(&mut out, &[true, false, true]);
        let mut r = Reader::new(&out);
        assert_eq!(r.vec_u32().unwrap(), vec![1, 2, u32::MAX]);
        assert_eq!(r.vec_usize().unwrap(), vec![0, 9, 100]);
        assert_eq!(r.vec_f64().unwrap(), vec![1.5, -2.25]);
        assert_eq!(r.vec_bool().unwrap(), vec![true, false, true]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_and_corruption_fail_cleanly() {
        // Truncated scalar.
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        // Length prefix larger than the buffer: must error, not allocate.
        let mut out = Vec::new();
        put_usize(&mut out, u64::MAX as usize & 0x00FF_FFFF_FFFF);
        let mut r = Reader::new(&out);
        assert!(r.vec_u32().is_err());
        // Non-boolean byte.
        let mut out = Vec::new();
        put_vec_bool(&mut out, &[true]);
        *out.last_mut().unwrap() = 9;
        assert!(Reader::new(&out).vec_bool().is_err());
        // Non-UTF-8 string.
        let mut out = Vec::new();
        put_usize(&mut out, 2);
        out.extend_from_slice(&[0xFF, 0xFE]);
        assert!(Reader::new(&out).str_().is_err());
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }
}
