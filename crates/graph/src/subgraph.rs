//! Induced subgraph extraction.
//!
//! The paper's introduction warns against the common practice this module
//! enables measuring: analyzing "separate subnetworks, cut-off from a large
//! network" — e.g. computing centrality on a city's street grid extracted
//! from the national road network — "risking inaccurate assessment of nodes
//! centrality in the complete network" (§I). The
//! `subnetwork_pitfall` example quantifies exactly that risk, and
//! SaPHyRa_bc's subset ranking is the remedy: rank the city's nodes
//! *within* the full network at subnetwork-like cost.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};

/// An induced subgraph with its node-id mappings.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The extracted graph; local ids `0..keep.len()`.
    pub graph: Graph,
    /// Local id → original id (sorted ascending).
    pub global_of_local: Vec<NodeId>,
}

impl Subgraph {
    /// Extracts the subgraph induced by `keep` (deduplicated, any order).
    pub fn induced(g: &Graph, keep: &[NodeId]) -> Self {
        let mut global_of_local: Vec<NodeId> = keep.to_vec();
        global_of_local.sort_unstable();
        global_of_local.dedup();
        let mut b = GraphBuilder::new(global_of_local.len());
        for (lu, &u) in global_of_local.iter().enumerate() {
            for &v in g.neighbors(u) {
                if v > u {
                    if let Ok(lv) = global_of_local.binary_search(&v) {
                        b.push(lu as NodeId, lv as NodeId);
                    }
                }
            }
        }
        Subgraph {
            graph: b.build().expect("induced subgraph is valid"),
            global_of_local,
        }
    }

    /// Maps an original node id to its local id, if kept.
    pub fn local_of(&self, global: NodeId) -> Option<NodeId> {
        self.global_of_local
            .binary_search(&global)
            .ok()
            .map(|i| i as NodeId)
    }

    /// Maps a local id back to the original id.
    #[inline]
    pub fn global_of(&self, local: NodeId) -> NodeId {
        self.global_of_local[local as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn extracts_interior_block_of_grid() {
        // 5x5 grid; keep the inner 3x3.
        let g = fixtures::grid_graph(5, 5);
        let keep: Vec<u32> = (1..4)
            .flat_map(|y| (1..4).map(move |x| (y * 5 + x) as u32))
            .collect();
        let sub = Subgraph::induced(&g, &keep);
        assert_eq!(sub.graph.num_nodes(), 9);
        // Inner 3x3 grid has 12 edges.
        assert_eq!(sub.graph.num_edges(), 12);
        // Mapping round-trips.
        for &v in &keep {
            let l = sub.local_of(v).unwrap();
            assert_eq!(sub.global_of(l), v);
        }
        assert_eq!(sub.local_of(0), None);
    }

    #[test]
    fn edges_preserved_exactly() {
        let g = fixtures::paper_fig2();
        let keep: Vec<u32> = vec![0, 1, 2, 3, 4]; // C1 = {a,b,c,d,e}
        let sub = Subgraph::induced(&g, &keep);
        assert_eq!(sub.graph.num_edges(), 5); // the 5-cycle
        for (lu, lv, _) in sub.graph.edges() {
            assert!(g.has_edge(sub.global_of(lu), sub.global_of(lv)));
        }
    }

    #[test]
    fn handles_duplicates_and_order() {
        let g = fixtures::cycle_graph(6);
        let sub = Subgraph::induced(&g, &[3, 1, 3, 2, 1]);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.global_of_local, vec![1, 2, 3]);
        assert_eq!(sub.graph.num_edges(), 2); // 1-2, 2-3
    }

    #[test]
    fn empty_keep() {
        let g = fixtures::path_graph(4);
        let sub = Subgraph::induced(&g, &[]);
        assert_eq!(sub.graph.num_nodes(), 0);
        assert_eq!(sub.graph.num_edges(), 0);
    }
}
