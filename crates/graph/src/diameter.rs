//! Eccentricity and diameter estimation.
//!
//! The VC-dimension bounds of Table I need (upper bounds on) the graph
//! diameter `VD(V)`, the maximum bicomponent diameter `BD(V)` and subset
//! diameters `VD(A ∩ Cᵢ)`. Exact diameters are intractable at scale, so the
//! paper (§IV-C) bounds a set's diameter by twice the maximum BFS distance
//! from an arbitrary member: `∀s ∈ A′, VD(A′) ≤ 2·max_{t∈A′} d(s,t)`. We
//! implement that upper bound, the classical double-sweep *lower* bound, and
//! exact all-pairs BFS for tests and small graphs.

use crate::bfs::BfsWorkspace;
use crate::csr::{Graph, NodeId};

/// Exact diameter by all-pairs BFS — O(nm), tests/small graphs only.
/// Returns the maximum eccentricity over all nodes (0 for edgeless graphs);
/// infinite distances across components are ignored.
pub fn exact_diameter(g: &Graph) -> u32 {
    let mut ws = BfsWorkspace::new(g.num_nodes());
    let mut best = 0;
    for v in g.nodes() {
        ws.run(g, v);
        best = best.max(ws.eccentricity());
    }
    best
}

/// Double-sweep diameter *lower* bound: BFS from `seed`, then BFS again from
/// the farthest node found; the second eccentricity lower-bounds the
/// diameter (exact on trees).
pub fn double_sweep_lower(g: &Graph, seed: NodeId, ws: &mut BfsWorkspace) -> u32 {
    ws.run(g, seed);
    let far = match ws.farthest() {
        Some(f) => f,
        None => return 0,
    };
    ws.run(g, far);
    ws.eccentricity()
}

/// Diameter *upper* bound for the component of `seed`: `2 · ecc(seed)`
/// (triangle inequality through the seed). This is the paper's §IV-C bound
/// with `A′` = the whole component.
pub fn diameter_upper(g: &Graph, seed: NodeId, ws: &mut BfsWorkspace) -> u32 {
    ws.run(g, seed);
    2 * ws.eccentricity()
}

/// Upper bound on the diameter of the node subset `subset` (paper §IV-C):
/// one BFS per connected component that intersects the subset (seeded at its
/// first subset member), returning the maximum per-component
/// `2 · max_{t ∈ subset ∩ C} d(s, t)`. Pairs of `subset` in *different*
/// components never co-occur on a shortest-path sample and contribute
/// nothing — but pairs inside every intersected component do, so bounding
/// only `subset[0]`'s component would understate `VD(A ∩ Cᵢ)` and make the
/// reported VC bound unsound.
pub fn subset_diameter_upper(g: &Graph, subset: &[NodeId], ws: &mut BfsWorkspace) -> u32 {
    let mut covered = vec![false; subset.len()];
    let mut best = 0u32;
    for i in 0..subset.len() {
        if covered[i] {
            continue;
        }
        ws.run(g, subset[i]);
        let mut maxd = 0u32;
        for (j, &t) in subset.iter().enumerate() {
            let d = ws.dist(t);
            if d != crate::bfs::INFINITY {
                covered[j] = true;
                maxd = maxd.max(d);
            }
        }
        best = best.max(2 * maxd);
    }
    best
}

/// Exact diameter of the node subset (max pairwise distance within
/// components) — O(|subset| · m), tests/small graphs only.
pub fn exact_subset_diameter(g: &Graph, subset: &[NodeId]) -> u32 {
    let mut ws = BfsWorkspace::new(g.num_nodes());
    let mut best = 0;
    for &s in subset {
        ws.run(g, s);
        for &t in subset {
            let d = ws.dist(t);
            if d != crate::bfs::INFINITY {
                best = best.max(d);
            }
        }
    }
    best
}

/// Eccentricity of `seed` restricted to edges accepted by `keep_edge`
/// (used for per-bicomponent diameters in the `BD(V)` bound).
pub fn eccentricity_filtered<F>(g: &Graph, seed: NodeId, ws: &mut BfsWorkspace, keep_edge: F) -> u32
where
    F: FnMut(usize) -> bool,
{
    ws.run_counting(g, seed, None, keep_edge);
    ws.eccentricity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn exact_diameter_known_graphs() {
        assert_eq!(exact_diameter(&fixtures::path_graph(7)), 6);
        assert_eq!(exact_diameter(&fixtures::cycle_graph(8)), 4);
        assert_eq!(exact_diameter(&fixtures::complete_graph(5)), 1);
        assert_eq!(exact_diameter(&fixtures::grid_graph(4, 3)), 3 + 2);
        assert_eq!(exact_diameter(&fixtures::star_graph(9)), 2);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        let g = fixtures::binary_tree(4);
        let mut ws = BfsWorkspace::new(g.num_nodes());
        let lower = double_sweep_lower(&g, 0, &mut ws);
        assert_eq!(lower, exact_diameter(&g));
    }

    #[test]
    fn bounds_sandwich_exact() {
        for g in [
            fixtures::grid_graph(6, 4),
            fixtures::lollipop_graph(5, 6),
            fixtures::cycle_graph(9),
            fixtures::paper_fig2(),
        ] {
            let exact = exact_diameter(&g);
            let mut ws = BfsWorkspace::new(g.num_nodes());
            let lower = double_sweep_lower(&g, 0, &mut ws);
            let upper = diameter_upper(&g, 0, &mut ws);
            assert!(lower <= exact, "lower {lower} > exact {exact}");
            assert!(upper >= exact, "upper {upper} < exact {exact}");
        }
    }

    #[test]
    fn subset_diameter_bounds() {
        let g = fixtures::path_graph(10);
        let subset = [1u32, 4, 8];
        let exact = exact_subset_diameter(&g, &subset);
        assert_eq!(exact, 7);
        let mut ws = BfsWorkspace::new(10);
        let upper = subset_diameter_upper(&g, &subset, &mut ws);
        assert!(upper >= exact);
        assert_eq!(subset_diameter_upper(&g, &[], &mut ws), 0);
    }

    #[test]
    fn subset_diameter_ignores_cross_component_pairs() {
        let g = fixtures::disconnected_mix();
        // 0,1 in triangle; 3 in the edge component.
        assert_eq!(exact_subset_diameter(&g, &[0, 1, 3]), 1);
        let mut ws = BfsWorkspace::new(6);
        let ub = subset_diameter_upper(&g, &[0, 1, 3], &mut ws);
        assert!(ub >= 1);
    }

    #[test]
    fn subset_diameter_sound_when_first_component_is_small() {
        // Regression: component X = path 0-1-2, component Y = path 3-..-9.
        // The subset's first member lives in X, but its *far-apart* pair
        // (3, 9) lives in Y; a single BFS from subset[0] reported 0 here,
        // understating the exact subset diameter of 6.
        let mut b = crate::builder::GraphBuilder::new(10);
        b.push(0, 1);
        b.push(1, 2);
        for v in 3..9u32 {
            b.push(v, v + 1);
        }
        let g = b.build().unwrap();
        let subset = [0u32, 3, 9];
        let exact = exact_subset_diameter(&g, &subset);
        assert_eq!(exact, 6);
        let mut ws = BfsWorkspace::new(10);
        let ub = subset_diameter_upper(&g, &subset, &mut ws);
        assert!(ub >= exact, "upper {ub} < exact {exact}");
    }

    #[test]
    fn subset_diameter_upper_dominates_exact_on_all_component_splits() {
        // Every component of disconnected_mix intersected, in every order.
        let g = fixtures::disconnected_mix();
        let mut ws = BfsWorkspace::new(6);
        for subset in [
            vec![0u32, 3, 5],
            vec![5, 3, 0],
            vec![3, 4, 0, 1, 2],
            vec![5],
            vec![0, 1, 2, 3, 4, 5],
        ] {
            let exact = exact_subset_diameter(&g, &subset);
            let ub = subset_diameter_upper(&g, &subset, &mut ws);
            assert!(ub >= exact, "subset {subset:?}: upper {ub} < exact {exact}");
        }
    }

    #[test]
    fn filtered_eccentricity_stays_in_component_edges() {
        use crate::fixtures::fig2::*;
        let g = fixtures::paper_fig2();
        let bic = crate::bicomp::Bicomps::compute(&g);
        // Eccentricity of C within its triangle {c,g,h} is 1.
        let b = bic.bicomp_of_edge(g.edge_id(C, G).unwrap());
        let mut ws = BfsWorkspace::new(g.num_nodes());
        let ecc = eccentricity_filtered(&g, C, &mut ws, |slot| {
            bic.edge_bicomp[g.edge_id_at(slot) as usize] == b
        });
        assert_eq!(ecc, 1);
    }
}
