//! Eccentricity and diameter estimation.
//!
//! The VC-dimension bounds of Table I need (upper bounds on) the graph
//! diameter `VD(V)`, the maximum bicomponent diameter `BD(V)` and subset
//! diameters `VD(A ∩ Cᵢ)`. Exact diameters are intractable at scale, so the
//! paper (§IV-C) bounds a set's diameter by twice the maximum BFS distance
//! from an arbitrary member: `∀s ∈ A′, VD(A′) ≤ 2·max_{t∈A′} d(s,t)`. We
//! implement that upper bound, the classical double-sweep *lower* bound, and
//! exact all-pairs BFS for tests and small graphs.

use crate::bfs::BfsWorkspace;
use crate::csr::{Graph, NodeId};

/// Exact diameter by all-pairs BFS — O(nm), tests/small graphs only.
/// Returns the maximum eccentricity over all nodes (0 for edgeless graphs);
/// infinite distances across components are ignored.
pub fn exact_diameter(g: &Graph) -> u32 {
    let mut ws = BfsWorkspace::new(g.num_nodes());
    let mut best = 0;
    for v in g.nodes() {
        ws.run(g, v);
        best = best.max(ws.eccentricity());
    }
    best
}

/// Double-sweep diameter *lower* bound: BFS from `seed`, then BFS again from
/// the farthest node found; the second eccentricity lower-bounds the
/// diameter (exact on trees).
pub fn double_sweep_lower(g: &Graph, seed: NodeId, ws: &mut BfsWorkspace) -> u32 {
    ws.run(g, seed);
    let far = match ws.farthest() {
        Some(f) => f,
        None => return 0,
    };
    ws.run(g, far);
    ws.eccentricity()
}

/// Diameter *upper* bound for the component of `seed`: `2 · ecc(seed)`
/// (triangle inequality through the seed). This is the paper's §IV-C bound
/// with `A′` = the whole component.
pub fn diameter_upper(g: &Graph, seed: NodeId, ws: &mut BfsWorkspace) -> u32 {
    ws.run(g, seed);
    2 * ws.eccentricity()
}

/// Upper bound on the diameter of the node subset `subset` (paper §IV-C):
/// runs one BFS from `subset[0]` and returns `2 · max_{t ∈ subset} d(s, t)`.
/// Pairs of `subset` in different components are ignored (no shortest path
/// exists between them, so they never co-occur on a sample).
pub fn subset_diameter_upper(g: &Graph, subset: &[NodeId], ws: &mut BfsWorkspace) -> u32 {
    let Some(&s) = subset.first() else { return 0 };
    ws.run(g, s);
    let maxd = subset
        .iter()
        .map(|&t| ws.dist(t))
        .filter(|&d| d != crate::bfs::INFINITY)
        .max()
        .unwrap_or(0);
    2 * maxd
}

/// Exact diameter of the node subset (max pairwise distance within
/// components) — O(|subset| · m), tests/small graphs only.
pub fn exact_subset_diameter(g: &Graph, subset: &[NodeId]) -> u32 {
    let mut ws = BfsWorkspace::new(g.num_nodes());
    let mut best = 0;
    for &s in subset {
        ws.run(g, s);
        for &t in subset {
            let d = ws.dist(t);
            if d != crate::bfs::INFINITY {
                best = best.max(d);
            }
        }
    }
    best
}

/// Eccentricity of `seed` restricted to edges accepted by `keep_edge`
/// (used for per-bicomponent diameters in the `BD(V)` bound).
pub fn eccentricity_filtered<F>(g: &Graph, seed: NodeId, ws: &mut BfsWorkspace, keep_edge: F) -> u32
where
    F: FnMut(usize) -> bool,
{
    ws.run_counting(g, seed, None, keep_edge);
    ws.eccentricity()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    #[test]
    fn exact_diameter_known_graphs() {
        assert_eq!(exact_diameter(&fixtures::path_graph(7)), 6);
        assert_eq!(exact_diameter(&fixtures::cycle_graph(8)), 4);
        assert_eq!(exact_diameter(&fixtures::complete_graph(5)), 1);
        assert_eq!(exact_diameter(&fixtures::grid_graph(4, 3)), 3 + 2);
        assert_eq!(exact_diameter(&fixtures::star_graph(9)), 2);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        let g = fixtures::binary_tree(4);
        let mut ws = BfsWorkspace::new(g.num_nodes());
        let lower = double_sweep_lower(&g, 0, &mut ws);
        assert_eq!(lower, exact_diameter(&g));
    }

    #[test]
    fn bounds_sandwich_exact() {
        for g in [
            fixtures::grid_graph(6, 4),
            fixtures::lollipop_graph(5, 6),
            fixtures::cycle_graph(9),
            fixtures::paper_fig2(),
        ] {
            let exact = exact_diameter(&g);
            let mut ws = BfsWorkspace::new(g.num_nodes());
            let lower = double_sweep_lower(&g, 0, &mut ws);
            let upper = diameter_upper(&g, 0, &mut ws);
            assert!(lower <= exact, "lower {lower} > exact {exact}");
            assert!(upper >= exact, "upper {upper} < exact {exact}");
        }
    }

    #[test]
    fn subset_diameter_bounds() {
        let g = fixtures::path_graph(10);
        let subset = [1u32, 4, 8];
        let exact = exact_subset_diameter(&g, &subset);
        assert_eq!(exact, 7);
        let mut ws = BfsWorkspace::new(10);
        let upper = subset_diameter_upper(&g, &subset, &mut ws);
        assert!(upper >= exact);
        assert_eq!(subset_diameter_upper(&g, &[], &mut ws), 0);
    }

    #[test]
    fn subset_diameter_ignores_cross_component_pairs() {
        let g = fixtures::disconnected_mix();
        // 0,1 in triangle; 3 in the edge component.
        assert_eq!(exact_subset_diameter(&g, &[0, 1, 3]), 1);
        let mut ws = BfsWorkspace::new(6);
        let ub = subset_diameter_upper(&g, &[0, 1, 3], &mut ws);
        assert!(ub >= 1);
    }

    #[test]
    fn filtered_eccentricity_stays_in_component_edges() {
        use crate::fixtures::fig2::*;
        let g = fixtures::paper_fig2();
        let bic = crate::bicomp::Bicomps::compute(&g);
        // Eccentricity of C within its triangle {c,g,h} is 1.
        let b = bic.bicomp_of_edge(g.edge_id(C, G).unwrap());
        let mut ws = BfsWorkspace::new(g.num_nodes());
        let ecc = eccentricity_filtered(&g, C, &mut ws, |slot| {
            bic.edge_bicomp[g.edge_id_at(slot) as usize] == b
        });
        assert_eq!(ecc, 1);
    }
}
