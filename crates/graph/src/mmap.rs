//! Read-only file mappings for zero-copy snapshot serving.
//!
//! Mirrors the direct `extern "C"` binding style of the service reactor's
//! epoll layer: no external crate, just the two syscall wrappers the tier
//! needs (`mmap`, `munmap`), bound with fixed Linux ABI constants.
//!
//! A [`MmapRegion`] maps a whole file `PROT_READ` + `MAP_PRIVATE` and
//! exposes it as `&[u8]`. Lifetime hazards are contained by construction:
//!
//! * the mapping is never writable, so aliasing with other readers is fine;
//! * snapshot files are only ever replaced via atomic `rename`, never
//!   truncated in place, so a live mapping keeps the *old inode* readable
//!   for its whole lifetime and cannot fault on a shrunk file;
//! * the region owns the mapping and `munmap`s exactly once on drop, and is
//!   shared between graph storage arrays via `Arc`.

use std::fs::File;
use std::ops::Deref;
use std::os::unix::io::AsRawFd;

#[allow(non_camel_case_types)]
type c_int = i32;
#[allow(non_camel_case_types)]
type size_t = usize;
#[allow(non_camel_case_types)]
type off_t = i64;

/// `PROT_READ`: pages may be read, never written or executed.
const PROT_READ: c_int = 0x1;
/// `MAP_PRIVATE`: copy-on-write visibility; irrelevant for a read-only
/// mapping but keeps any future stray write from reaching the file.
const MAP_PRIVATE: c_int = 0x02;

extern "C" {
    fn mmap(
        addr: *mut u8,
        length: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut u8;
    fn munmap(addr: *mut u8, length: size_t) -> c_int;
}

/// An owned, read-only, whole-file memory mapping.
pub struct MmapRegion {
    ptr: *const u8,
    len: usize,
}

impl MmapRegion {
    /// Maps `file` read-only in its entirety.
    ///
    /// Fails (with the OS error text) rather than panicking on empty files,
    /// files larger than the address space, or `mmap` refusal; callers fall
    /// back to the byte-decode load path.
    pub fn map(file: &File) -> Result<MmapRegion, String> {
        let len = file
            .metadata()
            .map_err(|e| format!("mmap: stat failed: {e}"))?
            .len();
        let len =
            usize::try_from(len).map_err(|_| "mmap: file exceeds address space".to_string())?;
        if len == 0 {
            return Err("mmap: refusing to map an empty file".to_string());
        }
        // SAFETY: all arguments are well-formed for the Linux ABI declared
        // above — a null hint address, a non-zero length no larger than the
        // file, read-only protection flags, and a file descriptor that is
        // live for the duration of the call (`file` is borrowed). The
        // kernel either returns a fresh page-aligned mapping of `len` bytes
        // (owned by the returned region and unmapped exactly once in
        // `Drop`) or `MAP_FAILED`, which is checked below.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr.is_null() || ptr as isize == -1 {
            return Err(format!("mmap failed: {}", std::io::Error::last_os_error()));
        }
        Ok(MmapRegion { ptr, len })
    }

    /// Length of the mapping in bytes (the file length at map time).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false: zero-length files are refused at map time.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for MmapRegion {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        // SAFETY: `ptr` is a live `PROT_READ` mapping of exactly `len`
        // bytes (established in `map`, released only in `Drop`, which
        // cannot run while `self` is borrowed). The file behind it is
        // replaced only by atomic rename — never truncated — so every byte
        // stays readable; and the mapping is never writable from anywhere,
        // so the shared slice cannot alias a mutation.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` describe the exact mapping returned by the
        // successful `mmap` in `map`; it is unmapped here exactly once
        // (the region is neither `Clone` nor `Copy`). A failure return
        // only leaks the mapping, which is safe.
        unsafe {
            munmap(self.ptr as *mut u8, self.len);
        }
    }
}

// SAFETY: the region is an immutable byte buffer: the pages are mapped
// read-only, the raw pointer is never handed out mutably, and `munmap`
// happens once on drop regardless of which thread drops. Sharing or moving
// it across threads is therefore as safe as sharing an `Arc<[u8]>`.
unsafe impl Send for MmapRegion {}
// SAFETY: see `Send` above — all access is read-only through `Deref`.
unsafe impl Sync for MmapRegion {}

impl std::fmt::Debug for MmapRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MmapRegion")
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("saphyra-mmap-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents_read_only() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let region = MmapRegion::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(region.len(), payload.len());
        assert_eq!(&region[..], &payload[..]);
        drop(region);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_is_refused_not_panicked() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let err = MmapRegion::map(&File::open(&path).unwrap()).unwrap_err();
        assert!(err.contains("empty"), "unexpected error: {err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn region_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MmapRegion>();
    }
}
