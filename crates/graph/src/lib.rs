//! # saphyra-graph
//!
//! Graph substrate for the SaPHyRa reproduction (ICDE 2022).
//!
//! This crate provides everything the SaPHyRa framework and its baselines
//! need from a graph engine:
//!
//! * [`Graph`]: a compressed-sparse-row (CSR) representation of undirected,
//!   unweighted simple graphs with per-slot *undirected edge ids* (needed by
//!   the biconnected-component machinery).
//! * [`builder::GraphBuilder`]: deduplicating, self-loop-dropping
//!   construction from edge lists.
//! * [`bfs`]: breadth-first searches with reusable, stamp-cleared workspaces
//!   and optional edge filters (used to restrict traversal to a single
//!   biconnected component without extracting subgraphs).
//! * [`bbbfs`]: the balanced bidirectional BFS of Borassi–Natale (KADABRA),
//!   which computes `σ_st` and samples a uniformly random shortest `s`–`t`
//!   path while exploring only a small fraction of the graph.
//! * [`brandes`]: exact betweenness centrality (serial and
//!   crossbeam-parallel), the ground truth of the paper's evaluation.
//! * [`bicomp`]: iterative Hopcroft–Tarjan biconnected components, cutpoints
//!   and the block-cut tree (paper §IV-A, Fig. 2).
//! * [`diameter`]: eccentricity and diameter estimation (double sweep lower
//!   bounds, `2·ecc` upper bounds) feeding the VC-dimension bounds of
//!   Table I.
//! * [`connectivity`]: connected components.
//! * [`fixtures`]: small named graphs used across the workspace's tests,
//!   including the paper's Fig. 2 example.

pub mod bbbfs;
pub mod bfs;
pub mod bicomp;
pub mod binio;
pub mod blockcut;
pub mod brandes;
pub mod builder;
pub mod connectivity;
pub mod csr;
pub mod delta;
pub mod diameter;
pub mod error;
pub mod fixtures;
pub mod io;
pub mod mmap;
pub mod subgraph;
pub mod succinct;
pub mod wire;

pub use bicomp::Bicomps;
pub use blockcut::BlockCutTree;
pub use builder::GraphBuilder;
pub use connectivity::Components;
pub use csr::{CsrOffsets, Graph, GraphFootprint, NodeId};
pub use delta::{AppliedDelta, DeltaError, EdgeDelta};
pub use error::GraphError;
pub use mmap::MmapRegion;
