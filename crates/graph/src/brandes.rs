//! Exact betweenness centrality (Brandes' algorithm).
//!
//! The paper's ground truth (§V-A) is exact BC computed with a parallel
//! Brandes implementation. `bc(v)` follows Eq. 3: the fraction over *ordered*
//! pairs `s ≠ t` (normalized by `n(n−1)`) of shortest paths with `v` strictly
//! interior. Running the single-source phase from every source enumerates
//! ordered pairs directly.

use crate::bfs::BfsWorkspace;
use crate::csr::{Graph, NodeId};

/// Exact normalized betweenness centrality, serial.
pub fn betweenness_exact(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    let mut ws = BfsWorkspace::new(n);
    let mut delta = vec![0.0f64; n];
    for s in g.nodes() {
        accumulate_source(g, s, &mut ws, &mut delta, &mut bc);
    }
    normalize(&mut bc, n);
    bc
}

/// Exact normalized betweenness centrality using `threads` worker threads
/// (sources are partitioned; each worker owns its accumulator).
pub fn betweenness_exact_parallel(g: &Graph, threads: usize) -> Vec<f64> {
    let n = g.num_nodes();
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n < 2 {
        return betweenness_exact(g);
    }
    let mut partials: Vec<Vec<f64>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            handles.push(scope.spawn(move || {
                let mut bc = vec![0.0f64; n];
                let mut ws = BfsWorkspace::new(n);
                let mut delta = vec![0.0f64; n];
                let mut s = t as NodeId;
                while (s as usize) < n {
                    accumulate_source(g, s, &mut ws, &mut delta, &mut bc);
                    s += threads as NodeId;
                }
                bc
            }));
        }
        for h in handles {
            partials.push(h.join().expect("brandes worker panicked"));
        }
    });

    let mut bc = vec![0.0f64; n];
    for p in partials {
        for (acc, x) in bc.iter_mut().zip(p) {
            *acc += x;
        }
    }
    normalize(&mut bc, n);
    bc
}

/// One single-source dependency accumulation (Brandes 2001).
fn accumulate_source(
    g: &Graph,
    s: NodeId,
    ws: &mut BfsWorkspace,
    delta: &mut [f64],
    bc: &mut [f64],
) {
    ws.run_counting(g, s, None, |_| true);
    // Reverse visit order; `delta` is zeroed for visited nodes afterwards so
    // the buffer can be reused without an O(n) clear.
    for i in (0..ws.order.len()).rev() {
        let v = ws.order[i];
        let coeff = (1.0 + delta[v as usize]) / ws.sigma(v);
        let dv = ws.dist(v);
        if dv > 0 {
            for slot in g.slot_range(v) {
                let w = g.neighbor_at(slot);
                if ws.visited(w) && ws.dist(w) + 1 == dv {
                    delta[w as usize] += ws.sigma(w) * coeff;
                }
            }
            bc[v as usize] += delta[v as usize];
        }
    }
    for &v in &ws.order {
        delta[v as usize] = 0.0;
    }
}

fn normalize(bc: &mut [f64], n: usize) {
    if n >= 2 {
        let scale = 1.0 / (n as f64 * (n as f64 - 1.0));
        for x in bc.iter_mut() {
            *x *= scale;
        }
    }
}

/// Brute-force normalized BC by explicit all-pairs path enumeration —
/// O(n² · paths), used only to validate `betweenness_exact` on tiny graphs.
pub fn betweenness_bruteforce(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bc = vec![0.0f64; n];
    let mut ws = BfsWorkspace::new(n);
    let mut ws_back = BfsWorkspace::new(n);
    for s in g.nodes() {
        ws.run_counting(g, s, None, |_| true);
        for t in g.nodes() {
            if t == s || !ws.visited(t) {
                continue;
            }
            // σ_st(v) = σ_s(v) · σ_t(v) for v with d_s(v) + d_t(v) = d_s(t).
            ws_back.run_counting(g, t, None, |_| true);
            let d = ws.dist(t);
            let sigma_st = ws.sigma(t);
            for v in g.nodes() {
                if v != s
                    && v != t
                    && ws.visited(v)
                    && ws_back.visited(v)
                    && ws.dist(v) + ws_back.dist(v) == d
                {
                    bc[v as usize] += ws.sigma(v) * ws_back.sigma(v) / sigma_st;
                }
            }
        }
    }
    normalize(&mut bc, n);
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-12, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_closed_form() {
        // Path 0-1-2-3-4: bc(v) for inner v at position i is
        // 2·i·(n-1-i)/(n(n-1)) with n=5.
        let g = fixtures::path_graph(5);
        let bc = betweenness_exact(&g);
        let norm = 1.0 / 20.0;
        assert_close(
            &bc,
            &[
                0.0,
                2.0 * 3.0 * norm,
                2.0 * 4.0 * norm,
                2.0 * 3.0 * norm,
                0.0,
            ],
        );
    }

    #[test]
    fn star_center_is_maximal() {
        let g = fixtures::star_graph(6);
        let bc = betweenness_exact(&g);
        // Center lies on all 5·4 = 20 leaf pairs; n(n-1) = 30.
        assert!((bc[0] - 20.0 / 30.0).abs() < 1e-12);
        assert!(bc[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cycle_symmetry() {
        let g = fixtures::cycle_graph(7);
        let bc = betweenness_exact(&g);
        for w in bc.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
        assert!(bc[0] > 0.0);
    }

    #[test]
    fn complete_graph_all_zero() {
        let g = fixtures::complete_graph(6);
        let bc = betweenness_exact(&g);
        assert!(bc.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matches_bruteforce_on_fixtures() {
        for g in [
            fixtures::paper_fig2(),
            fixtures::grid_graph(4, 3),
            fixtures::lollipop_graph(4, 3),
            fixtures::two_triangles_bridge(),
            fixtures::disconnected_mix(),
            fixtures::binary_tree(3),
        ] {
            assert_close(&betweenness_exact(&g), &betweenness_bruteforce(&g));
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let g = fixtures::grid_graph(8, 7);
        let serial = betweenness_exact(&g);
        for threads in [2, 3, 8] {
            assert_close(&serial, &betweenness_exact_parallel(&g, threads));
        }
    }

    #[test]
    fn disconnected_graph_normalization_is_global() {
        let g = fixtures::disconnected_mix();
        let bc = betweenness_exact(&g);
        // All nodes of the triangle and the edge have zero betweenness.
        assert!(bc.iter().all(|&x| x == 0.0));
    }
}
