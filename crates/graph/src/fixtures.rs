//! Small named graphs used by tests, examples and benches across the
//! workspace, including the paper's Fig. 2 example.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};

/// Path `0 - 1 - ... - n-1`.
pub fn path_graph(n: usize) -> Graph {
    GraphBuilder::new(n)
        .edges((1..n as NodeId).map(|v| (v - 1, v)))
        .build()
        .expect("valid path graph")
}

/// Cycle on `n ≥ 3` nodes.
pub fn cycle_graph(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    GraphBuilder::new(n)
        .edges((0..n as NodeId).map(|v| (v, (v + 1) % n as NodeId)))
        .build()
        .expect("valid cycle graph")
}

/// Star: hub 0 connected to `n - 1` leaves.
pub fn star_graph(n: usize) -> Graph {
    assert!(n >= 2, "star needs at least 2 nodes");
    GraphBuilder::new(n)
        .edges((1..n as NodeId).map(|v| (0, v)))
        .build()
        .expect("valid star graph")
}

/// Complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            b.push(u, v);
        }
    }
    b.build().expect("valid complete graph")
}

/// `w × h` grid; node `(x, y)` has id `y * w + x`.
pub fn grid_graph(w: usize, h: usize) -> Graph {
    let mut b = GraphBuilder::new(w * h);
    for y in 0..h {
        for x in 0..w {
            let v = (y * w + x) as NodeId;
            if x + 1 < w {
                b.push(v, v + 1);
            }
            if y + 1 < h {
                b.push(v, v + w as NodeId);
            }
        }
    }
    b.build().expect("valid grid graph")
}

/// Lollipop: clique `K_k` on `0..k` with a path of `l` extra nodes attached
/// to node `k - 1`.
pub fn lollipop_graph(k: usize, l: usize) -> Graph {
    assert!(k >= 2);
    let n = k + l;
    let mut b = GraphBuilder::new(n);
    for u in 0..k as NodeId {
        for v in (u + 1)..k as NodeId {
            b.push(u, v);
        }
    }
    for i in 0..l {
        let u = (k + i) as NodeId;
        b.push(if i == 0 { k as NodeId - 1 } else { u - 1 }, u);
    }
    b.build().expect("valid lollipop graph")
}

/// Complete binary tree with `depth` levels below the root
/// (so `2^(depth+1) - 1` nodes).
pub fn binary_tree(depth: usize) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::new(n);
    for v in 1..n as NodeId {
        b.push((v - 1) / 2, v);
    }
    b.build().expect("valid binary tree")
}

/// Node ids of the paper's Fig. 2 graph, `a = 0` through `k = 10`.
pub mod fig2 {
    /// Letter-named node constants for readable tests.
    pub const A: u32 = 0;
    pub const B: u32 = 1;
    pub const C: u32 = 2;
    pub const D: u32 = 3;
    pub const E: u32 = 4;
    pub const F: u32 = 5;
    pub const G: u32 = 6;
    pub const H: u32 = 7;
    pub const I: u32 = 8;
    pub const J: u32 = 9;
    pub const K: u32 = 10;
}

/// The example graph of the paper's Fig. 2: five bi-components
/// `C1 = {a,b,c,d,e}` (a 5-cycle), `C2 = {c,g,h}` (triangle),
/// `C3 = {d,f}` (bridge), `C4 = {i,j,k}` (triangle), `C5 = {d,i}` (bridge),
/// with cutpoints `c`, `d`, `i`.
pub fn paper_fig2() -> Graph {
    use fig2::*;
    GraphBuilder::new(11)
        .edges([
            // C1: 5-cycle b-a-c-d-e-b
            (B, A),
            (A, C),
            (C, D),
            (D, E),
            (E, B),
            // C2: triangle c-g-h
            (C, G),
            (G, H),
            (H, C),
            // C3: bridge d-f
            (D, F),
            // C4: triangle i-j-k
            (I, J),
            (J, K),
            (K, I),
            // C5: bridge d-i
            (D, I),
        ])
        .build()
        .expect("valid fig2 graph")
}

/// Two triangles `{0,1,2}` and `{3,4,5}` joined by the bridge `2 - 3`.
pub fn two_triangles_bridge() -> Graph {
    GraphBuilder::new(6)
        .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
        .build()
        .expect("valid bridged triangles")
}

/// Disjoint union of a triangle `{0,1,2}`, an edge `{3,4}` and the isolated
/// node `5` — exercises multi-component handling.
pub fn disconnected_mix() -> Graph {
    GraphBuilder::new(6)
        .edges([(0, 1), (1, 2), (2, 0), (3, 4)])
        .build()
        .expect("valid disconnected graph")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_as_documented() {
        assert_eq!(path_graph(5).num_edges(), 4);
        assert_eq!(cycle_graph(6).num_edges(), 6);
        assert_eq!(star_graph(7).num_edges(), 6);
        assert_eq!(complete_graph(5).num_edges(), 10);
        assert_eq!(grid_graph(4, 3).num_edges(), 3 * 3 + 4 * 2);
        assert_eq!(lollipop_graph(4, 3).num_nodes(), 7);
        assert_eq!(lollipop_graph(4, 3).num_edges(), 6 + 3);
        assert_eq!(binary_tree(3).num_nodes(), 15);
        assert_eq!(binary_tree(3).num_edges(), 14);
        let f = paper_fig2();
        assert_eq!(f.num_nodes(), 11);
        assert_eq!(f.num_edges(), 13);
        assert_eq!(two_triangles_bridge().num_edges(), 7);
        assert_eq!(disconnected_mix().num_nodes(), 6);
    }

    #[test]
    fn grid_degrees() {
        let g = grid_graph(3, 3);
        assert_eq!(g.degree(4), 4); // center
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // edge midpoint
    }

    #[test]
    fn fig2_adjacency_spot_checks() {
        use fig2::*;
        let g = paper_fig2();
        assert!(g.has_edge(C, D));
        assert!(g.has_edge(D, I));
        assert!(g.has_edge(D, F));
        assert!(!g.has_edge(A, K));
        assert_eq!(g.degree(D), 4); // c, e, f, i
    }
}
