//! Bit-identity of the batched (multi-subscriber) estimators against solo
//! runs — the core half of the cross-request batching contract.
//!
//! The property: batching is *observationally invisible*. For every
//! measure, every subscriber of a batched run gets exactly the bits —
//! estimates, sample counts, achieved ε, telemetry — it would have gotten
//! running alone with the same seed, regardless of who else is in the
//! batch and of the thread count.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use saphyra::bc::{build_a_index, BcApproxProblem, BcIndex, Outreach, SaphyraBcConfig};
use saphyra::closeness::{rank_harmonic, rank_harmonic_multi};
use saphyra::framework::{estimate_risks, estimate_risks_multi, AdaptiveConfig};
use saphyra::kpath::{rank_kpath, rank_kpath_multi};
use saphyra_graph::{fixtures, Bicomps, BlockCutTree};

fn in_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

/// Disjoint target sets covering distinct regions of a 6x6 grid.
fn grid_sets() -> Vec<Vec<u32>> {
    vec![vec![0, 1, 6, 7], vec![14, 15, 20, 21], vec![28, 29, 34, 35]]
}

/// The raw multi driver vs. solo `estimate_risks`, on the real `Gen_bc`
/// problem (personalized rejection: fused scheduling, no draw sharing).
/// Subscribers carry *different* accuracy targets, so they detach at
/// different rounds — the stream must keep serving the stricter ones.
#[test]
fn bc_multi_outcomes_match_solo_runs() {
    let g = fixtures::grid_graph(6, 6);
    let bic = Bicomps::compute(&g);
    let tree = BlockCutTree::compute(&bic);
    let outreach = Outreach::compute(&bic, &tree);
    let sets = grid_sets();
    let a_indexes: Vec<Vec<u32>> = sets
        .iter()
        .map(|t| build_a_index(g.num_nodes(), t))
        .collect();
    let probs: Vec<BcApproxProblem> = sets
        .iter()
        .zip(&a_indexes)
        .map(|(t, ai)| BcApproxProblem::new(&g, &bic, &outreach, t, ai, 3))
        .collect();
    let prob_refs: Vec<&BcApproxProblem> = probs.iter().collect();
    let cfgs = [
        AdaptiveConfig::new(0.10, 0.1),
        AdaptiveConfig::new(0.05, 0.1),
        AdaptiveConfig::new(0.03, 0.1),
    ];
    let master = StdRng::seed_from_u64(2022).next_u64();

    for threads in [1, 2, 4] {
        let batched = in_pool(threads, || estimate_risks_multi(&prob_refs, &cfgs, master));
        for (i, out) in batched.iter().enumerate() {
            // Solo run with an rng yielding the same master seed.
            let solo = in_pool(threads, || {
                let mut rng = StdRng::seed_from_u64(2022);
                estimate_risks(prob_refs[i], &cfgs[i], &mut rng)
            });
            assert_eq!(out.estimates, solo.estimates, "sub {i}, {threads} threads");
            assert_eq!(out.samples_used, solo.samples_used, "sub {i}");
            assert_eq!(out.rounds_run, solo.rounds_run, "sub {i}");
            assert_eq!(out.achieved_eps, solo.achieved_eps, "sub {i}");
            assert_eq!(out.converged_early, solo.converged_early, "sub {i}");
        }
    }
}

/// End-to-end BC ranking: `rank_subset_multi` vs. per-set `rank_subset`,
/// including the telemetry (samples, rejections, ε_inner).
#[test]
fn bc_rank_subset_multi_matches_solo() {
    let g = fixtures::grid_graph(6, 6);
    let index = BcIndex::new(&g);
    let sets = grid_sets();
    let cfg = SaphyraBcConfig::new(0.05, 0.1);
    let batched = {
        let mut rng = StdRng::seed_from_u64(11);
        index.dec.rank_subset_multi(&g, &sets, &cfg, &mut rng)
    };
    assert_eq!(batched.len(), sets.len());
    for (i, set) in sets.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(11);
        let solo = index.rank_subset(set, &cfg, &mut rng);
        assert_eq!(batched[i].bc, solo.bc, "set {i}");
        assert_eq!(batched[i].bca_part, solo.bca_part, "set {i}");
        assert_eq!(batched[i].exact_path_part, solo.exact_path_part);
        assert_eq!(batched[i].approx_part, solo.approx_part);
        assert_eq!(batched[i].stats.samples, solo.stats.samples);
        assert_eq!(batched[i].stats.eps_inner, solo.stats.eps_inner);
        assert_eq!(batched[i].stats.lambda_hat, solo.stats.lambda_hat);
    }
}

/// A batch member with no PISP mass (an isolated target) takes the
/// pure-bcₐ early path without perturbing the other members.
#[test]
fn bc_multi_handles_no_pisp_members() {
    let g = fixtures::disconnected_mix();
    let index = BcIndex::new(&g);
    let sets: Vec<Vec<u32>> = vec![vec![5], vec![0, 1, 3]];
    let cfg = SaphyraBcConfig::new(0.1, 0.1);
    let mut rng = StdRng::seed_from_u64(3);
    let batched = index.dec.rank_subset_multi(&g, &sets, &cfg, &mut rng);
    for (i, set) in sets.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(3);
        let solo = index.rank_subset(set, &cfg, &mut rng);
        assert_eq!(batched[i].bc, solo.bc, "set {i}");
        assert_eq!(batched[i].stats.samples, solo.stats.samples, "set {i}");
    }
    assert_eq!(batched[0].bc, vec![0.0]);
    assert_eq!(batched[0].stats.samples, 0);
}

/// Harmonic batching (weighted losses, fused pass): per-set results are
/// bit-identical to solo runs, and a degenerate `A = V` member degrades to
/// the exact path exactly as it does solo.
#[test]
fn harmonic_multi_matches_solo_including_degenerate() {
    let g = fixtures::grid_graph(5, 5);
    let mut sets = grid_sets();
    sets.truncate(2);
    sets.push(g.nodes().collect()); // A = V: no approximate subspace
    let batched = {
        let mut rng = StdRng::seed_from_u64(17);
        rank_harmonic_multi(&g, &sets, 0.05, 0.1, &mut rng)
    };
    for (i, set) in sets.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(17);
        let solo = rank_harmonic(&g, set, 0.05, 0.1, &mut rng);
        assert_eq!(batched[i].hc, solo.hc, "set {i}");
        assert_eq!(
            batched[i].inner.outcome.samples_used,
            solo.inner.outcome.samples_used
        );
        assert_eq!(
            batched[i].inner.outcome.achieved_eps,
            solo.inner.outcome.achieved_eps
        );
    }
    assert_eq!(batched[2].inner.outcome.samples_used, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// ISSUE satellite: a multi-subscriber batched k-path run — *shared*
    /// draws, one walk stream scoring every subscriber — produces
    /// bit-identical `(est, eps)` to independent solo runs per target set,
    /// across {1, 2, 4} threads.
    #[test]
    fn kpath_shared_batch_matches_solo(seed in 0u64..500, eps_i in 4u32..10) {
        let g = fixtures::grid_graph(6, 6);
        let sets = grid_sets();
        let eps = eps_i as f64 / 100.0;
        for threads in [1usize, 2, 4] {
            let batched = in_pool(threads, || {
                let mut rng = StdRng::seed_from_u64(seed);
                rank_kpath_multi(&g, &sets, 6, eps, 0.1, &mut rng)
            });
            for (i, set) in sets.iter().enumerate() {
                let solo = in_pool(threads, || {
                    let mut rng = StdRng::seed_from_u64(seed);
                    rank_kpath(&g, set, 6, eps, 0.1, &mut rng)
                });
                prop_assert_eq!(&batched[i].kpc, &solo.kpc, "set {} threads {}", i, threads);
                prop_assert_eq!(
                    batched[i].inner.outcome.samples_used,
                    solo.inner.outcome.samples_used
                );
                prop_assert_eq!(
                    batched[i].inner.outcome.achieved_eps,
                    solo.inner.outcome.achieved_eps
                );
            }
        }
    }
}
