//! Cross-thread-count determinism of the parallel sampling engine, and
//! distributional agreement between the batch path and the legacy
//! single-sample path.
//!
//! The contract under test: a fixed master seed fully determines every
//! estimate — `RAYON_NUM_THREADS`, pool sizes, and scheduling have zero
//! influence on the bits.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{build_a_index, BcApproxProblem, BcIndex, Outreach, SaphyraBcConfig};
use saphyra::framework::{estimate_risks, AdaptiveConfig, HrProblem};
use saphyra::kpath::KPathApproxProblem;
use saphyra_graph::{fixtures, Bicomps, BlockCutTree};

fn in_pool<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(f)
}

/// ISSUE acceptance: `estimate_risks` with the same seed yields identical
/// `AdaptiveOutcome.estimates` at 1 thread vs 8 threads, on the real
/// `Gen_bc` problem.
#[test]
fn estimate_risks_identical_at_1_and_8_threads() {
    let g = fixtures::grid_graph(8, 7);
    let bic = Bicomps::compute(&g);
    let tree = BlockCutTree::compute(&bic);
    let outreach = Outreach::compute(&bic, &tree);
    let targets: Vec<u32> = vec![9, 17, 25, 33, 41];
    let a_index = build_a_index(g.num_nodes(), &targets);
    let prob = BcApproxProblem::new(&g, &bic, &outreach, &targets, &a_index, 3);
    let cfg = AdaptiveConfig::new(0.05, 0.1);

    let run = |threads: usize| {
        in_pool(threads, || {
            let mut rng = StdRng::seed_from_u64(2022);
            estimate_risks(&prob, &cfg, &mut rng)
        })
    };
    let one = run(1);
    let eight = run(8);
    assert_eq!(one.estimates, eight.estimates);
    assert_eq!(one.samples_used, eight.samples_used);
    assert_eq!(one.rounds_run, eight.rounds_run);
    assert_eq!(one.achieved_eps, eight.achieved_eps);
    assert_eq!(one.converged_early, eight.converged_early);
}

/// The full SaPHyRa_bc pipeline — index build, Exact_bc, rejection
/// sampling, Bernstein stopping — is thread-count-invariant end to end.
#[test]
fn rank_subset_identical_across_thread_counts() {
    let g = fixtures::lollipop_graph(8, 8);
    let index = BcIndex::new(&g);
    let targets: Vec<u32> = (0..16).collect();
    let cfg = SaphyraBcConfig::new(0.05, 0.1);
    let run = |threads: usize| {
        in_pool(threads, || {
            let mut rng = StdRng::seed_from_u64(7);
            index.rank_subset(&targets, &cfg, &mut rng)
        })
    };
    let reference = run(1);
    for threads in [2, 4, 8] {
        let est = run(threads);
        assert_eq!(est.bc, reference.bc, "{threads} threads");
        assert_eq!(est.stats.samples, reference.stats.samples);
        assert_eq!(est.stats.rejected, reference.stats.rejected);
        assert_eq!(est.ranking(), reference.ranking());
    }
}

/// Pearson χ² statistic over per-hypothesis (hit, miss) tables.
fn chi_square_hits(counts_a: &[u64], counts_b: &[u64], trials: u64) -> f64 {
    let mut chi2 = 0.0;
    for (&a, &b) in counts_a.iter().zip(counts_b) {
        // 2x2 homogeneity table per hypothesis: (hit, miss) x (batch, legacy).
        let table = [
            [a as f64, (trials - a) as f64],
            [b as f64, (trials - b) as f64],
        ];
        let total = 2.0 * trials as f64;
        for j in 0..2 {
            let col: f64 = table[0][j] + table[1][j];
            if col == 0.0 {
                continue;
            }
            for row in &table {
                let expect = row.iter().sum::<f64>() * col / total;
                if expect > 0.0 {
                    chi2 += (row[j] - expect).powi(2) / expect;
                }
            }
        }
    }
    chi2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ISSUE satellite: the batch sampler and the legacy single-sample
    /// path draw from the same distribution — χ² homogeneity on hit
    /// counts over a fixed small graph stays below the critical value.
    #[test]
    fn batch_and_legacy_paths_agree_in_distribution(seed in 0u64..1000) {
        let g = fixtures::grid_graph(5, 4);
        let bic = Bicomps::compute(&g);
        let tree = BlockCutTree::compute(&bic);
        let outreach = Outreach::compute(&bic, &tree);
        let targets: Vec<u32> = vec![6, 7, 12, 13];
        let a_index = build_a_index(g.num_nodes(), &targets);
        let mut prob = BcApproxProblem::new(&g, &bic, &outreach, &targets, &a_index, 3);
        let trials = 20_000u64;

        let mut batch = vec![0u64; targets.len()];
        {
            let mut sampler = prob.sampler();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut hits = Vec::new();
            for _ in 0..trials {
                hits.clear();
                sampler.sample_hits_into(&mut rng, &mut hits);
                for &h in &hits { batch[h as usize] += 1; }
            }
        }
        let mut legacy = vec![0u64; targets.len()];
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        let mut hits = Vec::new();
        for _ in 0..trials {
            hits.clear();
            prob.sample_hits(&mut rng, &mut hits);
            for &h in &hits { legacy[h as usize] += 1; }
        }
        // 4 hypotheses x 1 dof each; χ²(4 dof) critical value at
        // p = 0.001 is 18.47. A systematic distribution mismatch blows
        // far past this for 20k trials.
        let chi2 = chi_square_hits(&batch, &legacy, trials);
        prop_assert!(chi2 < 18.47, "chi2 {} (batch {:?} legacy {:?})", chi2, batch, legacy);
    }

    /// Determinism is a property, not a special case: any seed and any
    /// target accuracy produce thread-count-invariant k-path estimates.
    #[test]
    fn kpath_estimates_thread_invariant(seed in 0u64..500, eps_i in 3u32..10) {
        let g = fixtures::grid_graph(6, 5);
        let targets: Vec<u32> = vec![7, 8, 14, 21, 22];
        let prob = KPathApproxProblem::new(&g, &targets, 5);
        let cfg = AdaptiveConfig::new(eps_i as f64 / 100.0, 0.1);
        let one = in_pool(1, || {
            let mut rng = StdRng::seed_from_u64(seed);
            estimate_risks(&prob, &cfg, &mut rng)
        });
        let many = in_pool(7, || {
            let mut rng = StdRng::seed_from_u64(seed);
            estimate_risks(&prob, &cfg, &mut rng)
        });
        prop_assert_eq!(one.estimates, many.estimates);
        prop_assert_eq!(one.samples_used, many.samples_used);
    }
}
