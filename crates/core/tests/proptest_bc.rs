//! Property-based invariants of the SaPHyRa_bc machinery on random graphs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{
    bca_values, build_a_index, exact2hop::exact_bc_bruteforce, exact_bc, gamma, BcDecomposition,
    Outreach, Pisp, SaphyraBcConfig,
};
use saphyra_graph::{Bicomps, BlockCutTree, EdgeDelta, Graph, GraphBuilder};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..=14).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..=max_edges)
            .prop_map(move |edges| GraphBuilder::new(n).edges(edges).build().unwrap())
    })
}

fn decompose(g: &Graph) -> (Bicomps, BlockCutTree, Outreach) {
    let bic = Bicomps::compute(g);
    let tree = BlockCutTree::compute(&bic);
    let or = Outreach::compute(&bic, &tree);
    (bic, tree, or)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn outreach_sums_to_component_size(g in arb_graph()) {
        // Eq. 18: Σ_{v∈Cᵢ} rᵢ(v) = n_c.
        let (bic, tree, or) = decompose(&g);
        for b in 0..bic.num_bicomps as u32 {
            let total: u64 = or.r_slice(&bic, b).iter().map(|&x| x as u64).sum();
            prop_assert_eq!(total, tree.comp_total_of_bicomp[b as usize] as u64);
        }
    }

    #[test]
    fn gamma_at_least_pair_mass(g in arb_graph()) {
        // γ ≥ fraction of connected ordered pairs... specifically each
        // connected pair contributes at least one ISP piece, so
        // γ·n(n−1) ≥ #connected pairs.
        let (bic, _, or) = decompose(&g);
        let n = g.num_nodes();
        let comps = saphyra_graph::connectivity::Components::compute(&g);
        let mut connected_pairs = 0u64;
        for c in 0..comps.count() {
            let s = comps.sizes[c] as u64;
            connected_pairs += s * (s - 1);
        }
        let gm = gamma(&g, &or);
        prop_assert!(gm * (n as f64) * (n as f64 - 1.0) + 1e-6 >= connected_pairs as f64,
            "gamma {gm} pairs {connected_pairs}");
        let _ = bic;
    }

    #[test]
    fn bca_nonzero_exactly_for_cutpoints(g in arb_graph()) {
        let (bic, tree, _) = decompose(&g);
        let bca = bca_values(&g, &bic, &tree);
        for v in g.nodes() {
            if bic.is_cutpoint[v as usize] {
                prop_assert!(bca[v as usize] > 0.0, "cutpoint {v} has zero bca");
            } else {
                prop_assert_eq!(bca[v as usize], 0.0);
            }
        }
    }

    #[test]
    fn bca_bounded_by_betweenness(g in arb_graph()) {
        // Break-point mass is part of bc, never more than it.
        let (bic, tree, _) = decompose(&g);
        let bca = bca_values(&g, &bic, &tree);
        let bc = saphyra_graph::brandes::betweenness_exact(&g);
        for v in g.nodes() {
            prop_assert!(bca[v as usize] <= bc[v as usize] + 1e-12,
                "node {v}: bca {} > bc {}", bca[v as usize], bc[v as usize]);
        }
    }

    #[test]
    fn exact2hop_matches_bruteforce(g in arb_graph(), mask in proptest::collection::vec(any::<bool>(), 14)) {
        let (bic, _, or) = decompose(&g);
        let targets: Vec<u32> = g.nodes().filter(|&v| mask[v as usize % mask.len()]).collect();
        prop_assume!(!targets.is_empty());
        let a_index = build_a_index(g.num_nodes(), &targets);
        let fast = exact_bc(&g, &bic, &or, &targets, &a_index);
        let slow = exact_bc_bruteforce(&g, &bic, &or, &targets, &a_index);
        prop_assert!((fast.lambda_raw - slow.lambda_raw).abs() < 1e-9);
        for (a, b) in fast.exact_raw.iter().zip(&slow.exact_raw) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn pisp_pair_probabilities_normalize(g in arb_graph(), pick in 0usize..14) {
        let (bic, _, or) = decompose(&g);
        let target = (pick % g.num_nodes()) as u32;
        let pisp = Pisp::new(&bic, &or, &[target]);
        prop_assume!(!pisp.is_empty());
        let probs = saphyra::bc::isp::enumerate_pair_probs(&g, &bic, &or, &pisp);
        let total: f64 = probs.iter().map(|&(_, _, _, q)| q).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&pisp.eta));
    }

    #[test]
    fn lambda_hat_is_a_probability(g in arb_graph()) {
        // The exact-subspace mass normalized by γη must be in [0, 1].
        let (bic, _, or) = decompose(&g);
        let targets: Vec<u32> = g.nodes().collect();
        let a_index = build_a_index(g.num_nodes(), &targets);
        let pisp = Pisp::new(&bic, &or, &targets);
        prop_assume!(!pisp.is_empty());
        let n = g.num_nodes() as f64;
        let gamma_eta = pisp.total_weight() / (n * (n - 1.0));
        let out = exact_bc(&g, &bic, &or, &targets, &a_index);
        let lambda_hat = out.lambda_raw / gamma_eta;
        prop_assert!((0.0..=1.0 + 1e-9).contains(&lambda_hat), "λ̂ = {lambda_hat}");
    }
}

/// Canonicalizes raw proptest edge lists into a valid delta against `g`:
/// drops self-loops, orients `u < v`, dedups, and resolves insert/delete
/// conflicts in favor of the insert (mirroring nothing — conflicts are a
/// 400 at the API edge, so test inputs must simply avoid them).
fn clean_delta(g: &Graph, insert: Vec<(u32, u32)>, delete: Vec<(u32, u32)>) -> EdgeDelta {
    let n = g.num_nodes() as u32;
    let canon = |list: Vec<(u32, u32)>| -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = list
            .into_iter()
            .filter(|&(u, v)| u != v && u < n && v < n)
            .map(|(u, v)| (u.min(v), u.max(v)))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    };
    let insert = canon(insert);
    let mut delete = canon(delete);
    delete.retain(|e| !insert.contains(e));
    EdgeDelta { insert, delete }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn apply_delta_matches_from_scratch(
        g in arb_graph(),
        raw_ins in proptest::collection::vec((0u32..14, 0u32..14), 0..6),
        raw_del in proptest::collection::vec((0u32..14, 0u32..14), 0..6),
    ) {
        let delta = clean_delta(&g, raw_ins, raw_del);
        prop_assume!(!delta.is_empty());
        let dec = BcDecomposition::compute(&g);
        let out = dec.apply_delta(&g, &delta).unwrap();
        let scratch = BcDecomposition::compute(&out.graph);
        prop_assert!(out.dec.structurally_eq(&scratch),
            "incremental decomposition diverged from rebuild");
    }

    #[test]
    fn untouched_component_rankings_survive_patch(
        a in 3usize..=7,
        b in 3usize..=7,
        edges_a in proptest::collection::vec((0u32..7, 0u32..7), 1..12),
        edges_b in proptest::collection::vec((0u32..7, 0u32..7), 1..12),
        raw_ins in proptest::collection::vec((0u32..7, 0u32..7), 0..4),
        raw_del in proptest::collection::vec((0u32..7, 0u32..7), 0..4),
    ) {
        // Two node blocks with no edges between them: A = [0, a), B = [a, a+b).
        // The delta is confined to A, so every B target must rank
        // bit-identically before and after the patch (the service relies on
        // this to keep clean cache entries alive across PATCH).
        let n = a + b;
        let mut edges: Vec<(u32, u32)> = edges_a
            .into_iter()
            .map(|(u, v)| (u % a as u32, v % a as u32))
            .collect();
        edges.extend(
            edges_b
                .into_iter()
                .map(|(u, v)| (a as u32 + u % b as u32, a as u32 + v % b as u32)),
        );
        let g = GraphBuilder::new(n).edges(edges).build().unwrap();
        let mut delta = clean_delta(
            &g,
            raw_ins.into_iter().map(|(u, v)| (u % a as u32, v % a as u32)).collect(),
            raw_del.into_iter().map(|(u, v)| (u % a as u32, v % a as u32)).collect(),
        );
        if delta.is_empty() {
            delta.insert = vec![(0, 1)];
        }

        let dec = BcDecomposition::compute(&g);
        let out = dec.apply_delta(&g, &delta).unwrap();
        let targets: Vec<u32> = (a as u32..n as u32).collect();
        for &t in &targets {
            prop_assert!(!out.dirty_nodes[t as usize],
                "target {t} in the isolated block was marked dirty");
        }

        let cfg = SaphyraBcConfig::new(0.2, 0.1);
        let before = dec.rank_subset(&g, &targets, &cfg, &mut StdRng::seed_from_u64(7));
        let after = out.dec.rank_subset(&out.graph, &targets, &cfg, &mut StdRng::seed_from_u64(7));
        for (x, y) in before.bc.iter().zip(&after.bc) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "bc bits changed for clean target");
        }
        prop_assert_eq!(before.stats.samples, after.stats.samples);
        prop_assert_eq!(before.stats.nmax, after.stats.nmax);
        prop_assert_eq!(before.stats.vc.vc_subset, after.stats.vc.vc_subset);
        prop_assert_eq!(before.stats.lambda_hat.to_bits(), after.stats.lambda_hat.to_bits());
    }
}
