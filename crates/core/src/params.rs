//! Request-parameter validation shared by every user-facing entry point
//! (CLI flags, service request bodies).
//!
//! The estimators themselves `assert!` on malformed accuracy parameters —
//! `SaphyraBcConfig::new` panics on `eps ∉ (0,1)`, the sample schedules
//! divide by `eps²` and `ln(1/δ)` — so front ends must reject garbage with
//! a clear message *before* any work starts. Centralizing the checks here
//! keeps the CLI and the HTTP service byte-for-byte consistent about what
//! they accept.

use saphyra_graph::NodeId;

/// Checks an additive error target: finite and strictly inside `(0, 1)`.
pub fn check_eps(eps: f64) -> Result<(), String> {
    if !eps.is_finite() || eps <= 0.0 || eps >= 1.0 {
        return Err(format!("eps must be a finite value in (0, 1), got {eps}"));
    }
    Ok(())
}

/// Checks a failure probability: finite and strictly inside `(0, 1)`.
pub fn check_delta(delta: f64) -> Result<(), String> {
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
        return Err(format!(
            "delta must be a finite value in (0, 1), got {delta}"
        ));
    }
    Ok(())
}

/// Checks a k-path hop count: the approximate subspace needs `k ≥ 2`.
pub fn check_khops(khops: usize) -> Result<(), String> {
    if khops < 2 {
        return Err(format!("khops must be >= 2, got {khops}"));
    }
    Ok(())
}

/// Checks an explicit worker/thread count (0 would spin up nothing and
/// deadlock a pool; "auto" must be expressed by omitting the flag).
pub fn check_threads(threads: usize) -> Result<(), String> {
    if threads == 0 {
        return Err("threads must be >= 1 (omit the flag for auto)".to_string());
    }
    Ok(())
}

/// Checks a target list: non-empty, ids in `0..n`, no duplicates (the
/// rankers index per-target accumulators by id and assert on repeats).
pub fn check_targets(targets: &[NodeId], num_nodes: usize) -> Result<(), String> {
    if targets.is_empty() {
        return Err("target set must not be empty".to_string());
    }
    let mut seen = vec![false; num_nodes];
    for &v in targets {
        if (v as usize) >= num_nodes {
            return Err(format!("target {v} out of range (n = {num_nodes})"));
        }
        if seen[v as usize] {
            return Err(format!("duplicate target {v}"));
        }
        seen[v as usize] = true;
    }
    Ok(())
}

/// Checks an edge delta for `PATCH /graphs/<name>`: at least one change,
/// no self-loops, endpoints in `0..n` (deltas never grow the node set).
/// Mirrors the graph layer's own validation
/// ([`saphyra_graph::EdgeDelta::normalized`]) so front ends reject garbage
/// with a 400 before acquiring any publication lock.
pub fn check_edge_delta(
    insert: &[(NodeId, NodeId)],
    delete: &[(NodeId, NodeId)],
    num_nodes: usize,
) -> Result<(), String> {
    if insert.is_empty() && delete.is_empty() {
        return Err("empty delta: no edges to insert or delete".to_string());
    }
    for (kind, list) in [("insert", insert), ("delete", delete)] {
        for &(u, v) in list {
            if u == v {
                return Err(format!("{kind} edge ({u}, {v}) is a self-loop"));
            }
            if let Some(&x) = [u, v].iter().find(|&&x| x as usize >= num_nodes) {
                return Err(format!(
                    "{kind} endpoint {x} out of range (n = {num_nodes})"
                ));
            }
        }
    }
    Ok(())
}

/// Checks a shard address list for a router (`--shards`): non-empty, no
/// duplicates, and never the router's own listen address (a router fanning
/// work out to itself would deadlock its own accept loop).
///
/// Addresses are compared textually after trimming — `host:port`
/// canonicalization (DNS, `0.0.0.0` vs `127.0.0.1`) is out of scope here;
/// the check catches the configuration mistakes that are unambiguous from
/// the strings alone.
pub fn check_shard_addrs(addrs: &[String], self_addr: &str) -> Result<(), String> {
    if addrs.is_empty() {
        return Err("shard list must not be empty (pass --shards host:port,...)".to_string());
    }
    let self_addr = self_addr.trim();
    for (i, a) in addrs.iter().enumerate() {
        let a = a.trim();
        if a.is_empty() {
            return Err("shard address must not be empty".to_string());
        }
        if !a.contains(':') {
            return Err(format!("shard address '{a}' must be host:port"));
        }
        if !self_addr.is_empty() && a == self_addr {
            return Err(format!("shard address '{a}' is the router's own address"));
        }
        if addrs[..i].iter().any(|b| b.trim() == a) {
            return Err(format!("duplicate shard address '{a}'"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_delta_domains() {
        for good in [1e-9, 0.01, 0.5, 0.999] {
            assert!(check_eps(good).is_ok());
            assert!(check_delta(good).is_ok());
        }
        for bad in [0.0, 1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            assert!(check_eps(bad).is_err(), "eps {bad} accepted");
            assert!(check_delta(bad).is_err(), "delta {bad} accepted");
        }
    }

    #[test]
    fn khops_and_threads() {
        assert!(check_khops(1).is_err());
        assert!(check_khops(2).is_ok());
        assert!(check_threads(0).is_err());
        assert!(check_threads(1).is_ok());
    }

    #[test]
    fn target_lists() {
        assert!(check_targets(&[], 5).is_err());
        assert!(check_targets(&[0, 4], 5).is_ok());
        assert!(check_targets(&[5], 5).is_err());
        assert!(check_targets(&[1, 1], 5).is_err());
    }

    #[test]
    fn edge_deltas() {
        assert!(check_edge_delta(&[], &[], 5).is_err(), "empty delta");
        assert!(check_edge_delta(&[(0, 1)], &[], 5).is_ok());
        assert!(check_edge_delta(&[], &[(4, 0)], 5).is_ok());
        assert!(check_edge_delta(&[(2, 2)], &[], 5).is_err(), "self-loop");
        assert!(check_edge_delta(&[], &[(3, 3)], 5).is_err(), "self-loop");
        assert!(check_edge_delta(&[(0, 5)], &[], 5).is_err(), "out of range");
        assert!(check_edge_delta(&[], &[(9, 0)], 5).is_err(), "out of range");
    }

    fn addrs(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shard_addr_lists() {
        let me = "127.0.0.1:7000";
        assert!(check_shard_addrs(&addrs(&[]), me).is_err(), "empty list");
        assert!(check_shard_addrs(&addrs(&["127.0.0.1:7001", "127.0.0.1:7002"]), me).is_ok());
        // Duplicates, including whitespace-insensitive ones.
        assert!(check_shard_addrs(&addrs(&["h:1", "h:1"]), me).is_err());
        assert!(check_shard_addrs(&addrs(&["h:1", " h:1 "]), me).is_err());
        // Self-address.
        assert!(check_shard_addrs(&addrs(&["127.0.0.1:7000"]), me).is_err());
        // Malformed entries.
        assert!(check_shard_addrs(&addrs(&[""]), me).is_err());
        assert!(check_shard_addrs(&addrs(&["noport"]), me).is_err());
        // Unknown self address skips only the self check.
        assert!(check_shard_addrs(&addrs(&["h:1"]), "").is_ok());
    }
}
