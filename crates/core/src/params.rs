//! Request-parameter validation shared by every user-facing entry point
//! (CLI flags, service request bodies).
//!
//! The estimators themselves `assert!` on malformed accuracy parameters —
//! `SaphyraBcConfig::new` panics on `eps ∉ (0,1)`, the sample schedules
//! divide by `eps²` and `ln(1/δ)` — so front ends must reject garbage with
//! a clear message *before* any work starts. Centralizing the checks here
//! keeps the CLI and the HTTP service byte-for-byte consistent about what
//! they accept.

use saphyra_graph::NodeId;

/// Checks an additive error target: finite and strictly inside `(0, 1)`.
pub fn check_eps(eps: f64) -> Result<(), String> {
    if !eps.is_finite() || eps <= 0.0 || eps >= 1.0 {
        return Err(format!("eps must be a finite value in (0, 1), got {eps}"));
    }
    Ok(())
}

/// Checks a failure probability: finite and strictly inside `(0, 1)`.
pub fn check_delta(delta: f64) -> Result<(), String> {
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
        return Err(format!(
            "delta must be a finite value in (0, 1), got {delta}"
        ));
    }
    Ok(())
}

/// Checks a k-path hop count: the approximate subspace needs `k ≥ 2`.
pub fn check_khops(khops: usize) -> Result<(), String> {
    if khops < 2 {
        return Err(format!("khops must be >= 2, got {khops}"));
    }
    Ok(())
}

/// Checks an explicit worker/thread count (0 would spin up nothing and
/// deadlock a pool; "auto" must be expressed by omitting the flag).
pub fn check_threads(threads: usize) -> Result<(), String> {
    if threads == 0 {
        return Err("threads must be >= 1 (omit the flag for auto)".to_string());
    }
    Ok(())
}

/// Checks a target list: non-empty, ids in `0..n`, no duplicates (the
/// rankers index per-target accumulators by id and assert on repeats).
pub fn check_targets(targets: &[NodeId], num_nodes: usize) -> Result<(), String> {
    if targets.is_empty() {
        return Err("target set must not be empty".to_string());
    }
    let mut seen = vec![false; num_nodes];
    for &v in targets {
        if (v as usize) >= num_nodes {
            return Err(format!("target {v} out of range (n = {num_nodes})"));
        }
        if seen[v as usize] {
            return Err(format!("duplicate target {v}"));
        }
        seen[v as usize] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_delta_domains() {
        for good in [1e-9, 0.01, 0.5, 0.999] {
            assert!(check_eps(good).is_ok());
            assert!(check_delta(good).is_ok());
        }
        for bad in [0.0, 1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            assert!(check_eps(bad).is_err(), "eps {bad} accepted");
            assert!(check_delta(bad).is_err(), "delta {bad} accepted");
        }
    }

    #[test]
    fn khops_and_threads() {
        assert!(check_khops(1).is_err());
        assert!(check_khops(2).is_ok());
        assert!(check_threads(0).is_err());
        assert!(check_threads(1).is_ok());
    }

    #[test]
    fn target_lists() {
        assert!(check_targets(&[], 5).is_err());
        assert!(check_targets(&[0, 4], 5).is_ok());
        assert!(check_targets(&[5], 5).is_err());
        assert!(check_targets(&[1, 1], 5).is_err());
    }
}
