//! k-path centrality through the SaPHyRa framework — the paper's second
//! worked example of the ranking-subset → hypothesis-ranking mapping
//! (§II-A).
//!
//! A sample is a random walk: pick a start node `u` uniformly, a length
//! `l` uniformly from `1..=k`, and walk `l` uniform-neighbor steps (a walk
//! from an isolated node is empty). The hypothesis `h_v` fires when `v`
//! appears among the nodes *after* the start, and the expected risk is the
//! walk-visit probability — a k-path centrality.
//!
//! The partition demonstrates the framework beyond betweenness:
//!
//! * **exact subspace** — all samples with `l = 1`, whose mass is exactly
//!   `λ̂ = 1/k` and whose per-target risk has the closed form
//!   `ℓ̂_v = (1/(nk)) Σ_{u ∈ N(v)} 1/deg(u)`;
//! * **approximate subspace** — walks with `l ≥ 2`, sampled directly by
//!   drawing `l` uniformly from `2..=k`.

use rand::Rng;
use rand::RngCore;
use saphyra_graph::{Graph, NodeId};

use crate::framework::{
    saphyra_estimate, saphyra_estimate_batch_shared, saphyra_estimate_batch_with, BatchSubscriber,
    ExactPart, ExecError, HrProblem, HrSampler, SaphyraEstimate, SharedDraw,
};

const NONE: u32 = u32::MAX;

/// Closed-form exact part: `λ̂ = 1/k`,
/// `ℓ̂_v = (1/(nk)) Σ_{u ∈ N(v)} 1/deg(u)`.
pub fn kpath_exact_part(g: &Graph, targets: &[NodeId], k: usize) -> ExactPart {
    assert!(k >= 1);
    let n = g.num_nodes() as f64;
    let exact_risks: Vec<f64> = targets
        .iter()
        .map(|&v| {
            g.neighbors(v)
                .iter()
                .map(|&u| 1.0 / g.degree(u) as f64)
                .sum::<f64>()
                / (n * k as f64)
        })
        .collect();
    ExactPart {
        lambda_hat: 1.0 / k as f64,
        exact_risks,
    }
}

/// The approximate-subspace walk sampler (`l ≥ 2`).
pub struct KPathApproxProblem<'a> {
    g: &'a Graph,
    a_index: Vec<u32>,
    k: usize,
    num_targets: usize,
    walk: Vec<NodeId>,
}

impl<'a> KPathApproxProblem<'a> {
    /// Builds the sampler for walks of up to `k ≥ 2` hops.
    pub fn new(g: &'a Graph, targets: &[NodeId], k: usize) -> Self {
        assert!(k >= 2, "the approximate subspace needs k >= 2");
        let mut a_index = vec![NONE; g.num_nodes()];
        for (i, &v) in targets.iter().enumerate() {
            assert!(a_index[v as usize] == NONE, "duplicate target {v}");
            a_index[v as usize] = i as u32;
        }
        KPathApproxProblem {
            g,
            a_index,
            k,
            num_targets: targets.len(),
            walk: Vec::with_capacity(k + 1),
        }
    }

    /// Performs one `l ≥ 2` walk into the internal buffer and returns it.
    pub fn sample_walk<R: Rng + ?Sized>(&mut self, rng: &mut R) -> &[NodeId] {
        walk_into(self.g, self.k, &mut self.walk, rng);
        &self.walk
    }
}

/// One `l ≥ 2` uniform-neighbor walk into `walk` (cleared first).
///
/// This is the *draw half* of the k-path sample: it consumes RNG but never
/// reads the target set, which is what lets the batched engine share one
/// walk stream across subscribers with different targets ([`SharedDraw`]).
fn walk_into<R: Rng + ?Sized>(g: &Graph, k: usize, walk: &mut Vec<NodeId>, rng: &mut R) {
    let n = g.num_nodes();
    let l = rng.gen_range(2..=k);
    walk.clear();
    let mut cur = rng.gen_range(0..n as NodeId);
    walk.push(cur);
    for _ in 0..l {
        let d = g.degree(cur);
        if d == 0 {
            break;
        }
        cur = g.neighbors(cur)[rng.gen_range(0..d)];
        walk.push(cur);
    }
}

/// The *score half*: 0-1 losses — each target visited after the start
/// counts once per sample. Consumes no RNG.
fn score_walk(a_index: &[u32], walk: &[NodeId], hits: &mut Vec<u32>) {
    for &v in &walk[1..] {
        let ai = a_index[v as usize];
        if ai != NONE {
            hits.push(ai);
        }
    }
    hits.sort_unstable();
    hits.dedup();
}

/// Per-worker drawing head of the k-path problem: borrows the shared
/// index, owns the walk buffer.
pub struct KPathSampler<'p> {
    g: &'p Graph,
    a_index: &'p [u32],
    k: usize,
    walk: Vec<NodeId>,
}

impl HrSampler for KPathSampler<'_> {
    fn sample_hits_into(&mut self, rng: &mut dyn RngCore, hits: &mut Vec<u32>) {
        // Draw + score through the same halves the SharedDraw impl uses,
        // so the split contract holds structurally.
        walk_into(self.g, self.k, &mut self.walk, rng);
        score_walk(self.a_index, &self.walk, hits);
    }
}

impl HrProblem for KPathApproxProblem<'_> {
    fn num_hypotheses(&self) -> usize {
        self.num_targets
    }

    fn sampler(&self) -> Box<dyn HrSampler + '_> {
        Box::new(KPathSampler {
            g: self.g,
            a_index: &self.a_index,
            k: self.k,
            walk: Vec::with_capacity(self.k + 1),
        })
    }

    fn vc_dimension(&self) -> usize {
        // π_max ≤ min(k, |A|): a walk visits at most k nodes after the
        // start (Lemma 5).
        let pi_max = self.k.min(self.num_targets) as u32;
        crate::bc::vcbound::log2_floor_plus1(pi_max)
    }
}

impl SharedDraw for KPathApproxProblem<'_> {
    fn draw_artifact(&self, rng: &mut dyn RngCore, buf: &mut Vec<u32>) {
        walk_into(self.g, self.k, buf, rng);
    }

    fn score_artifact(&self, artifact: &[u32], hits: &mut Vec<u32>) {
        score_walk(&self.a_index, artifact, hits);
    }
}

/// k-path centrality estimates for a target subset.
#[derive(Debug, Clone)]
pub struct KPathEstimate {
    /// Targets in caller order.
    pub targets: Vec<NodeId>,
    /// Estimated k-path centrality (combined risks).
    pub kpc: Vec<f64>,
    /// The underlying framework output.
    pub inner: SaphyraEstimate,
}

/// Ranks `targets` by k-path centrality with the SaPHyRa partition.
pub fn rank_kpath(
    g: &Graph,
    targets: &[NodeId],
    k: usize,
    eps: f64,
    delta: f64,
    rng: &mut dyn RngCore,
) -> KPathEstimate {
    assert!(k >= 2, "k-path ranking needs k >= 2");
    let exact = kpath_exact_part(g, targets, k);
    let prob = KPathApproxProblem::new(g, targets, k);
    let inner = saphyra_estimate(&prob, &exact, eps, delta, rng);
    KPathEstimate {
        targets: targets.to_vec(),
        kpc: inner.combined.clone(),
        inner,
    }
}

/// Ranks several target sets at once against **one shared walk stream**.
///
/// k-path is the measure where cross-request batching is strongest: the
/// random walk ([`SharedDraw::draw_artifact`]) never looks at the target
/// set, so every subscriber scores the *same* walks. Each `(est, eps)`
/// pair is bit-identical to [`rank_kpath`] run alone with the same `rng`
/// seed — a subscriber whose ε target is met detaches while the stream
/// keeps serving stricter ones.
pub fn rank_kpath_multi(
    g: &Graph,
    sets: &[Vec<NodeId>],
    k: usize,
    eps: f64,
    delta: f64,
    rng: &mut dyn RngCore,
) -> Vec<KPathEstimate> {
    assert!(k >= 2, "k-path ranking needs k >= 2");
    let exacts: Vec<ExactPart> = sets.iter().map(|t| kpath_exact_part(g, t, k)).collect();
    let probs: Vec<KPathApproxProblem> = sets
        .iter()
        .map(|t| KPathApproxProblem::new(g, t, k))
        .collect();
    let subs: Vec<BatchSubscriber<KPathApproxProblem>> = probs
        .iter()
        .zip(&exacts)
        .map(|(problem, exact)| BatchSubscriber {
            problem,
            exact,
            eps,
            delta,
        })
        .collect();
    let inners = saphyra_estimate_batch_shared(&subs, true, rng);
    sets.iter()
        .zip(inners)
        .map(|(targets, inner)| KPathEstimate {
            targets: targets.clone(),
            kpc: inner.combined.clone(),
            inner,
        })
        .collect()
}

/// [`rank_kpath_multi`] against a caller-supplied estimation engine (e.g.
/// a sharded [`crate::framework::BlockExec`]).
///
/// The engine receives the `λ > 0` subscribers with their original set
/// indices (k-path has no measure-level prefilter — `λ̂ = 1/k < 1` always —
/// so they are simply `0..sets.len()`). The engine runs the *per-problem*
/// hit path rather than the shared-draw path; the two are bit-identical
/// for [`SharedDraw`] problems (drawing is target-independent and scoring
/// consumes no RNG, so per-demand hit counts — and therefore every tracker
/// decision — coincide), which is also covered by a test in
/// `tests/other_measures.rs`.
pub fn rank_kpath_multi_with(
    g: &Graph,
    sets: &[Vec<NodeId>],
    k: usize,
    eps: f64,
    delta: f64,
    rng: &mut dyn RngCore,
    engine: impl FnOnce(
        &[usize],
        &[&dyn HrProblem],
        &[crate::framework::AdaptiveConfig],
        u64,
    ) -> Result<Vec<crate::framework::AdaptiveOutcome>, ExecError>,
) -> Result<Vec<KPathEstimate>, ExecError> {
    assert!(k >= 2, "k-path ranking needs k >= 2");
    let exacts: Vec<ExactPart> = sets.iter().map(|t| kpath_exact_part(g, t, k)).collect();
    let probs: Vec<KPathApproxProblem> = sets
        .iter()
        .map(|t| KPathApproxProblem::new(g, t, k))
        .collect();
    let subs: Vec<BatchSubscriber<KPathApproxProblem>> = probs
        .iter()
        .zip(&exacts)
        .map(|(problem, exact)| BatchSubscriber {
            problem,
            exact,
            eps,
            delta,
        })
        .collect();
    let inners = saphyra_estimate_batch_with(&subs, true, rng, |inner, problems, cfgs, master| {
        let dyns: Vec<&dyn HrProblem> = problems.iter().map(|&p| p as _).collect();
        engine(inner, &dyns, cfgs, master)
    })?;
    Ok(sets
        .iter()
        .zip(inners)
        .map(|(targets, inner)| KPathEstimate {
            targets: targets.clone(),
            kpc: inner.combined.clone(),
            inner,
        })
        .collect())
}

/// Direct Monte-Carlo estimator over the *full* walk space (`l ∈ 1..=k`),
/// the unpartitioned baseline used in tests and the partitioning ablation.
pub fn kpath_direct_monte_carlo(
    g: &Graph,
    targets: &[NodeId],
    k: usize,
    samples: usize,
    rng: &mut dyn RngCore,
) -> Vec<f64> {
    assert!(k >= 1);
    let mut a_index = vec![NONE; g.num_nodes()];
    for (i, &v) in targets.iter().enumerate() {
        a_index[v as usize] = i as u32;
    }
    let mut hits = vec![0u64; targets.len()];
    let n = g.num_nodes();
    let mut seen: Vec<u32> = Vec::new();
    for _ in 0..samples {
        let l = rng.gen_range(1..=k);
        let mut cur = rng.gen_range(0..n as NodeId);
        seen.clear();
        for _ in 0..l {
            let d = g.degree(cur);
            if d == 0 {
                break;
            }
            cur = g.neighbors(cur)[rng.gen_range(0..d)];
            let ai = a_index[cur as usize];
            if ai != NONE {
                seen.push(ai);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        for &ai in &seen {
            hits[ai as usize] += 1;
        }
    }
    hits.iter().map(|&h| h as f64 / samples as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::fixtures;

    #[test]
    fn exact_part_closed_form_on_star() {
        // Star center: Σ_{u∈leaves} 1/deg(u) = (n−1)/1; ℓ̂ = (n−1)/(nk).
        let g = fixtures::star_graph(5);
        let e = kpath_exact_part(&g, &[0, 1], 4);
        assert!((e.lambda_hat - 0.25).abs() < 1e-12);
        assert!((e.exact_risks[0] - 4.0 / (5.0 * 4.0)).abs() < 1e-12);
        // Leaf 1: only neighbor is the center with degree 4.
        assert!((e.exact_risks[1] - (1.0 / 4.0) / 20.0).abs() < 1e-12);
    }

    #[test]
    fn partitioned_matches_direct_estimation() {
        let g = fixtures::grid_graph(6, 5);
        let targets: Vec<u32> = vec![7, 8, 14, 21, 22];
        let k = 5;
        let mut rng = StdRng::seed_from_u64(3);
        let est = rank_kpath(&g, &targets, k, 0.02, 0.1, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(4);
        let direct = kpath_direct_monte_carlo(&g, &targets, k, 400_000, &mut rng2);
        for (i, (&a, &b)) in est.kpc.iter().zip(&direct).enumerate() {
            assert!(
                (a - b).abs() < 0.02,
                "target {i}: partitioned {a} direct {b}"
            );
        }
    }

    #[test]
    fn walks_respect_length_bounds() {
        let g = fixtures::cycle_graph(10);
        let mut p = KPathApproxProblem::new(&g, &[0, 5], 6);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let w = p.sample_walk(&mut rng).to_vec();
            assert!(w.len() >= 3 && w.len() <= 7, "len {}", w.len());
            for pair in w.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn hits_are_deduplicated() {
        // Path of 2 nodes: walks bounce between them; a node can be visited
        // many times but must be reported once.
        let g = fixtures::path_graph(2);
        let mut p = KPathApproxProblem::new(&g, &[0, 1], 6);
        let mut rng = StdRng::seed_from_u64(6);
        let mut hits = Vec::new();
        for _ in 0..200 {
            hits.clear();
            p.sample_hits(&mut rng, &mut hits);
            let mut sorted = hits.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), hits.len());
        }
    }

    #[test]
    fn high_degree_nodes_rank_higher() {
        // Lollipop: clique nodes see far more walk traffic than tail tip.
        let g = fixtures::lollipop_graph(6, 6);
        let targets: Vec<u32> = vec![0, 11]; // clique member vs path tip
        let mut rng = StdRng::seed_from_u64(7);
        let est = rank_kpath(&g, &targets, 4, 0.05, 0.1, &mut rng);
        assert!(est.kpc[0] > est.kpc[1]);
        assert_eq!(est.inner.ranking()[0], 0);
    }

    #[test]
    fn vc_dimension_bound() {
        let g = fixtures::grid_graph(4, 4);
        let p = KPathApproxProblem::new(&g, &[1, 2, 3], 8);
        // π_max ≤ min(8, 3) = 3 → VC ≤ ⌊log₂3⌋+1 = 2.
        assert_eq!(p.vc_dimension(), 2);
    }

    #[test]
    fn isolated_nodes_contribute_empty_walks() {
        let g = fixtures::disconnected_mix();
        let targets: Vec<u32> = vec![0, 5];
        let mut rng = StdRng::seed_from_u64(8);
        let est = rank_kpath(&g, &targets, 3, 0.1, 0.1, &mut rng);
        // Node 5 is isolated: never visited.
        assert_eq!(est.kpc[1], 0.0);
        assert!(est.kpc[0] > 0.0);
    }
}
