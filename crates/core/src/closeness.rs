//! Harmonic (closeness-family) centrality through the SaPHyRa framework —
//! the extension the paper's conclusion proposes ("extending the framework
//! to other centrality measures such as closeness centrality").
//!
//! We rank by *harmonic centrality mass* `hc(v) = E_{u∼V}[1/d(u, v)]`
//! (with `1/d(v,v) := 0` and `1/∞ := 0`), the disconnection-robust member
//! of the closeness family. A sample is a uniform source `u`; one BFS gives
//! the fractional losses `1/d(u, v) ∈ [0, 1]` for every target — the
//! Eppstein–Wang sampling scheme recast as a [`WeightedHrProblem`].
//!
//! The SaPHyRa partition: the exact subspace is `X̂ = A` itself — `|A|`
//! BFS runs evaluate every target-to-target distance in closed form,
//! `λ̂ = |A|/n`, and the approximate distribution is uniform over `V ∖ A`.
//! Ranking errors between targets that are close to *each other* (the hard
//! tie-breaks in a ranking) are thereby resolved exactly.

use rand::Rng;
use rand::RngCore;
use saphyra_graph::bfs::{BfsWorkspace, INFINITY};
use saphyra_graph::{Graph, NodeId};

use crate::framework::{
    saphyra_estimate_weighted, saphyra_estimate_weighted_batch_with, BatchSubscriber, ExactPart,
    SaphyraEstimate, WeightedHrProblem, WeightedHrSampler,
};

const NONE: u32 = u32::MAX;

/// Exact harmonic mass `hc(v)` for every node — `n` BFS runs, the
/// ground-truth oracle for tests and small graphs.
pub fn harmonic_exact(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut out = vec![0.0f64; n];
    if n == 0 {
        return out;
    }
    let mut ws = BfsWorkspace::new(n);
    for u in g.nodes() {
        ws.run(g, u);
        // Distances are symmetric: credit v for source u.
        for &v in &ws.order {
            let d = ws.dist(v);
            if d > 0 {
                out[v as usize] += 1.0 / d as f64;
            }
        }
    }
    for x in out.iter_mut() {
        *x /= n as f64;
    }
    out
}

/// Exact part of the partition: sources in `A`, `λ̂ = |A|/n`.
pub fn harmonic_exact_part(g: &Graph, targets: &[NodeId]) -> ExactPart {
    let n = g.num_nodes();
    let mut exact_risks = vec![0.0f64; targets.len()];
    let mut ws = BfsWorkspace::new(n);
    let mut a_pos = vec![NONE; n];
    for (i, &v) in targets.iter().enumerate() {
        assert!(a_pos[v as usize] == NONE, "duplicate target {v}");
        a_pos[v as usize] = i as u32;
    }
    for &u in targets {
        ws.run(g, u);
        for &v in &ws.order {
            let i = a_pos[v as usize];
            let d = ws.dist(v);
            if i != NONE && d > 0 {
                exact_risks[i as usize] += 1.0 / d as f64;
            }
        }
    }
    for x in exact_risks.iter_mut() {
        *x /= n as f64;
    }
    ExactPart {
        lambda_hat: targets.len() as f64 / n as f64,
        exact_risks,
    }
}

/// The approximate-subspace sampling problem: uniform sources from
/// `V ∖ A`. Shared read-only half; BFS scratch lives in
/// [`HarmonicSampler`].
pub struct HarmonicApproxProblem<'a> {
    g: &'a Graph,
    a_pos: Vec<u32>,
    complement: Vec<NodeId>,
    k: usize,
}

impl<'a> HarmonicApproxProblem<'a> {
    /// Builds the sampler; panics if `A = V` (no approximate subspace).
    pub fn new(g: &'a Graph, targets: &[NodeId]) -> Self {
        let n = g.num_nodes();
        let mut a_pos = vec![NONE; n];
        for (i, &v) in targets.iter().enumerate() {
            assert!(a_pos[v as usize] == NONE, "duplicate target {v}");
            a_pos[v as usize] = i as u32;
        }
        let complement: Vec<NodeId> = g.nodes().filter(|&v| a_pos[v as usize] == NONE).collect();
        assert!(
            !complement.is_empty(),
            "A = V leaves no approximate subspace; use harmonic_exact"
        );
        HarmonicApproxProblem {
            g,
            a_pos,
            complement,
            k: targets.len(),
        }
    }
}

/// Per-worker drawing head: one BFS workspace per worker.
pub struct HarmonicSampler<'p> {
    problem: &'p HarmonicApproxProblem<'p>,
    ws: BfsWorkspace,
}

impl WeightedHrSampler for HarmonicSampler<'_> {
    fn sample_losses_into(&mut self, rng: &mut dyn RngCore, out: &mut Vec<(u32, f64)>) {
        let p = self.problem;
        let u = p.complement[rng.gen_range(0..p.complement.len())];
        self.ws.run(p.g, u);
        for (v, &pos) in p.a_pos.iter().enumerate() {
            if pos == NONE {
                continue;
            }
            let d = self.ws.dist(v as NodeId);
            if d != INFINITY && d > 0 {
                out.push((pos, 1.0 / d as f64));
            }
        }
    }
}

impl WeightedHrProblem for HarmonicApproxProblem<'_> {
    fn num_hypotheses(&self) -> usize {
        self.k
    }

    fn sampler(&self) -> Box<dyn WeightedHrSampler + '_> {
        Box::new(HarmonicSampler {
            problem: self,
            ws: BfsWorkspace::new(self.g.num_nodes()),
        })
    }
}

/// Harmonic-centrality estimates for a target subset.
#[derive(Debug, Clone)]
pub struct HarmonicEstimate {
    /// Targets in caller order.
    pub targets: Vec<NodeId>,
    /// Estimated harmonic mass `hc(v)`.
    pub hc: Vec<f64>,
    /// Framework output (`lambda`, telemetry, parts).
    pub inner: SaphyraEstimate,
}

/// Degenerate `A = V` estimate: the exact part already covers everything.
fn exact_only_harmonic(targets: &[NodeId], exact: ExactPart) -> HarmonicEstimate {
    HarmonicEstimate {
        targets: targets.to_vec(),
        hc: exact.exact_risks.clone(),
        inner: SaphyraEstimate {
            combined: exact.exact_risks.clone(),
            exact_part: exact.exact_risks,
            approx_part: vec![0.0; targets.len()],
            lambda: 0.0,
            outcome: crate::framework::AdaptiveOutcome::empty(),
        },
    }
}

/// Ranks `targets` by harmonic centrality with an (ε, δ) guarantee.
pub fn rank_harmonic(
    g: &Graph,
    targets: &[NodeId],
    eps: f64,
    delta: f64,
    rng: &mut dyn RngCore,
) -> HarmonicEstimate {
    assert!(!targets.is_empty());
    let exact = harmonic_exact_part(g, targets);
    if targets.len() == g.num_nodes() {
        return exact_only_harmonic(targets, exact);
    }
    let prob = HarmonicApproxProblem::new(g, targets);
    let inner = saphyra_estimate_weighted(&prob, &exact, eps, delta, rng);
    HarmonicEstimate {
        targets: targets.to_vec(),
        hc: inner.combined.clone(),
        inner,
    }
}

/// Ranks several target sets at once through one fused sampling stream.
///
/// Harmonic sources are drawn uniformly from `V ∖ A`, which differs per
/// target set, so draws cannot be shared across subscribers — but the
/// doubling schedules are: every round runs a single parallel pass over
/// all demanded blocks, and subscribers whose ε target is met detach
/// while the pass keeps serving stricter ones. Each `(est, eps)` pair is
/// bit-identical to [`rank_harmonic`] run alone with the same `rng` seed.
pub fn rank_harmonic_multi(
    g: &Graph,
    sets: &[Vec<NodeId>],
    eps: f64,
    delta: f64,
    rng: &mut dyn RngCore,
) -> Vec<HarmonicEstimate> {
    rank_harmonic_multi_with(g, sets, eps, delta, rng, |_, problems, cfgs, master| {
        Ok(crate::framework::estimate_weighted_risks_multi(
            problems, cfgs, master,
        ))
    })
    .expect("local execution is infallible")
}

/// [`rank_harmonic_multi`] against a caller-supplied estimation engine
/// (e.g. a sharded [`crate::framework::BlockExec`] over
/// [`crate::framework::LossAcc`] partials).
///
/// The engine receives the subscribers that actually sample — sets
/// surviving both the `A = V` prefilter and the `λ > 0` check — with their
/// **original set indices**. Engines honoring the executor contract
/// (units from [`crate::framework::loss_unit_ranges`], merged in unit
/// order) yield estimates bit-identical to [`rank_harmonic_multi`].
pub fn rank_harmonic_multi_with(
    g: &Graph,
    sets: &[Vec<NodeId>],
    eps: f64,
    delta: f64,
    rng: &mut dyn RngCore,
    engine: impl FnOnce(
        &[usize],
        &[&dyn WeightedHrProblem],
        &[crate::framework::AdaptiveConfig],
        u64,
    )
        -> Result<Vec<crate::framework::AdaptiveOutcome>, crate::framework::ExecError>,
) -> Result<Vec<HarmonicEstimate>, crate::framework::ExecError> {
    let n = g.num_nodes();
    let exacts: Vec<ExactPart> = sets
        .iter()
        .map(|t| {
            assert!(!t.is_empty());
            harmonic_exact_part(g, t)
        })
        .collect();
    // Degenerate A = V sets never reach the sampling engine (there is no
    // approximate subspace to build a problem over).
    let sampled: Vec<usize> = (0..sets.len()).filter(|&i| sets[i].len() != n).collect();
    let probs: Vec<HarmonicApproxProblem> = sampled
        .iter()
        .map(|&i| HarmonicApproxProblem::new(g, &sets[i]))
        .collect();
    let subs: Vec<BatchSubscriber<HarmonicApproxProblem>> = probs
        .iter()
        .zip(&sampled)
        .map(|(problem, &i)| BatchSubscriber {
            problem,
            exact: &exacts[i],
            eps,
            delta,
        })
        .collect();
    let inners = saphyra_estimate_weighted_batch_with(&subs, true, rng, {
        let sampled = &sampled;
        move |inner, problems, cfgs, master| {
            // `inner` indexes `subs`; translate to original set indices.
            let orig: Vec<usize> = inner.iter().map(|&j| sampled[j]).collect();
            let dyns: Vec<&dyn WeightedHrProblem> = problems.iter().map(|&p| p as _).collect();
            engine(&orig, &dyns, cfgs, master)
        }
    })?;
    let mut inners = inners.into_iter();
    let mut slots: Vec<Option<SaphyraEstimate>> = (0..sets.len()).map(|_| None).collect();
    for &i in &sampled {
        slots[i] = inners.next();
    }
    Ok(sets
        .iter()
        .zip(exacts)
        .zip(slots)
        .map(|((targets, exact), inner)| match inner {
            Some(inner) => HarmonicEstimate {
                targets: targets.clone(),
                hc: inner.combined.clone(),
                inner,
            },
            None => exact_only_harmonic(targets, exact),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::fixtures;

    #[test]
    fn exact_values_on_star() {
        // Star center: 1/1 to each leaf -> (n−1)/n; leaf: 1 + (n−2)/2 over n.
        let g = fixtures::star_graph(5);
        let hc = harmonic_exact(&g);
        assert!((hc[0] - 4.0 / 5.0).abs() < 1e-12);
        assert!((hc[1] - (1.0 + 3.0 * 0.5) / 5.0).abs() < 1e-12);
    }

    #[test]
    fn exact_handles_disconnection() {
        let g = fixtures::disconnected_mix();
        let hc = harmonic_exact(&g);
        // Isolated node: zero; triangle nodes: 2 neighbors at distance 1.
        assert_eq!(hc[5], 0.0);
        assert!((hc[0] - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn estimates_meet_epsilon() {
        let g = fixtures::grid_graph(7, 6);
        let truth = harmonic_exact(&g);
        let targets: Vec<u32> = vec![0, 10, 20, 30, 41];
        let mut rng = StdRng::seed_from_u64(3);
        let est = rank_harmonic(&g, &targets, 0.05, 0.1, &mut rng);
        for (i, &v) in targets.iter().enumerate() {
            let err = (est.hc[i] - truth[v as usize]).abs();
            assert!(err < 0.05, "node {v}: err {err}");
        }
    }

    #[test]
    fn lambda_hat_is_subset_fraction() {
        let g = fixtures::grid_graph(5, 5);
        let targets: Vec<u32> = vec![1, 2, 3, 4, 5];
        let part = harmonic_exact_part(&g, &targets);
        assert!((part.lambda_hat - 5.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn exact_part_matches_restricted_sum() {
        // ℓ̂_v must equal (1/n)·Σ_{u∈A} 1/d(u,v).
        let g = fixtures::paper_fig2();
        let targets: Vec<u32> = vec![0, 3, 8];
        let part = harmonic_exact_part(&g, &targets);
        let n = g.num_nodes() as f64;
        let mut ws = BfsWorkspace::new(g.num_nodes());
        for (i, &v) in targets.iter().enumerate() {
            let mut acc = 0.0;
            ws.run(&g, v);
            for &u in &targets {
                let d = ws.dist(u);
                if d > 0 && d != INFINITY {
                    acc += 1.0 / d as f64;
                }
            }
            assert!((part.exact_risks[i] - acc / n).abs() < 1e-12, "target {i}");
        }
    }

    #[test]
    fn ranking_recovers_ordering() {
        // Lollipop: clique nodes are globally closer than tail tip.
        let g = fixtures::lollipop_graph(6, 6);
        let truth = harmonic_exact(&g);
        let targets: Vec<u32> = vec![0, 6, 11];
        let mut rng = StdRng::seed_from_u64(5);
        let est = rank_harmonic(&g, &targets, 0.02, 0.1, &mut rng);
        let order = est.inner.ranking();
        let truth_order = {
            let mut idx: Vec<usize> = (0..3).collect();
            idx.sort_by(|&a, &b| {
                truth[targets[b] as usize]
                    .partial_cmp(&truth[targets[a] as usize])
                    .unwrap()
            });
            idx
        };
        assert_eq!(order, truth_order);
    }

    #[test]
    fn full_target_set_degenerates_to_exact() {
        let g = fixtures::cycle_graph(8);
        let all: Vec<u32> = g.nodes().collect();
        let mut rng = StdRng::seed_from_u64(7);
        let est = rank_harmonic(&g, &all, 0.05, 0.1, &mut rng);
        let truth = harmonic_exact(&g);
        for (i, &v) in all.iter().enumerate() {
            assert!((est.hc[i] - truth[v as usize]).abs() < 1e-12);
        }
        assert_eq!(est.inner.outcome.samples_used, 0);
    }

    #[test]
    fn samples_scale_with_epsilon() {
        let g = fixtures::grid_graph(8, 8);
        let targets: Vec<u32> = vec![9, 18, 27, 36];
        let mut a = StdRng::seed_from_u64(1);
        let loose = rank_harmonic(&g, &targets, 0.1, 0.1, &mut a);
        let mut b = StdRng::seed_from_u64(1);
        let tight = rank_harmonic(&g, &targets, 0.02, 0.1, &mut b);
        assert!(tight.inner.outcome.samples_used >= loose.inner.outcome.samples_used);
    }
}
