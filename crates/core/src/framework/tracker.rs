//! The per-subscriber half of the adaptive engine: a demand/absorb state
//! machine carrying one (est, ε) estimate through Algorithm 1's schedule.
//!
//! [`super::adaptive::estimate_risks`] used to own the whole loop — pilot
//! pass, δᵢ allocation, doubling rounds, Bernstein checks, forced `N_max`
//! finish. Splitting the loop from the drawing lets one *block producer*
//! serve many independent trackers: a tracker announces the next block it
//! needs as a [`Demand`] (a `(stream, first_chunk, count)` coordinate into
//! the counter-based RNG streams of [`saphyra_stats::stream`]), absorbs the
//! resulting accumulators, and advances its own stopping rule. A tracker
//! whose ε target is met detaches (demands nothing) while stricter
//! subscribers keep the stream going. The demand sequence of a lone tracker
//! is exactly the block sequence the old monolithic loop drew, so the
//! refactor is bit-identical by construction.
//!
//! The accumulator kind is generic ([`BlockAcc`]): `u64` hit counts for 0-1
//! losses (Bernoulli variance shortcut) and [`LossAcc`] moment pairs for
//! fractional losses.

use saphyra_stats::{
    allocate_deltas, bernoulli_sample_variance, doubling_rounds, empirical_bernstein_epsilon,
};

use super::adaptive::{AdaptiveConfig, AdaptiveOutcome};
use super::batch::{chunks_used, LossAcc, STREAM_MAIN, STREAM_PILOT};

/// One block of samples a tracker wants drawn: `count` samples starting at
/// chunk `first_chunk` of logical stream `stream`. Pure coordinates into
/// the counter-based RNG space — *who* draws the block cannot change its
/// contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Demand {
    /// Logical stream id ([`STREAM_PILOT`] or [`STREAM_MAIN`]).
    pub stream: u64,
    /// First chunk of the block.
    pub first_chunk: u64,
    /// Samples to draw.
    pub count: usize,
}

/// A per-hypothesis block accumulator the tracker can reason about:
/// mergeable, with a sample variance and a mean.
pub trait BlockAcc: Clone + Send {
    /// The additive identity.
    fn zero() -> Self;
    /// Adds another block's contribution.
    fn add(&mut self, other: &Self);
    /// Unbiased sample variance over `n` observations.
    fn variance(&self, n: usize) -> f64;
    /// Mean loss over `n` observations.
    fn mean(&self, n: usize) -> f64;
}

impl BlockAcc for u64 {
    fn zero() -> Self {
        0
    }
    fn add(&mut self, other: &Self) {
        *self += *other;
    }
    fn variance(&self, n: usize) -> f64 {
        bernoulli_sample_variance(*self, n as u64)
    }
    fn mean(&self, n: usize) -> f64 {
        *self as f64 / n as f64
    }
}

impl BlockAcc for LossAcc {
    fn zero() -> Self {
        LossAcc::default()
    }
    fn add(&mut self, other: &Self) {
        self.sum += other.sum;
        self.sumsq += other.sumsq;
    }
    fn variance(&self, n: usize) -> f64 {
        self.sample_variance(n)
    }
    fn mean(&self, n: usize) -> f64 {
        self.sum / n as f64
    }
}

/// Pilot budget `N₀ = c/ε′² ln(1/δ)` (Algorithm 1 line 6), floored at
/// `min_pilot`.
pub(crate) fn pilot_budget(cfg: &AdaptiveConfig) -> usize {
    let ln_inv_delta = (1.0 / cfg.delta).ln();
    ((cfg.c_vc / (cfg.eps_prime * cfg.eps_prime) * ln_inv_delta).ceil() as usize).max(cfg.min_pilot)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Non-adaptive ablation: one `N_max` block, no checks.
    Fixed,
    /// Pilot variance pass (line 9).
    Pilot,
    /// Doubling rounds with Bernstein checks (lines 10-18).
    Main,
    /// Bernstein budget exhausted: one final block straight to `N_max`.
    Forced,
    /// Detached — the estimate is settled.
    Done,
}

/// One subscriber's estimation state: the demand/absorb form of
/// Algorithm 1's loop. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct Tracker<T: BlockAcc> {
    cfg: AdaptiveConfig,
    k: usize,
    n0: usize,
    nmax: usize,
    rounds: usize,
    phase: Phase,
    totals: Vec<T>,
    deltas: Vec<f64>,
    n: usize,
    next_chunk: u64,
    target: usize,
    rounds_run: usize,
    converged_early: bool,
    achieved_eps: f64,
}

impl<T: BlockAcc> Tracker<T> {
    /// A tracker for `k` hypotheses under `cfg`, with precomputed budgets
    /// (`nmax` already floored at `n0`; the `N_max` formula differs between
    /// the 0-1 VC bound and the weighted Hoeffding bound, so the caller
    /// supplies it).
    pub fn new(k: usize, cfg: &AdaptiveConfig, n0: usize, nmax: usize) -> Self {
        debug_assert!(nmax >= n0);
        let phase = if k == 0 {
            Phase::Done
        } else if !cfg.adaptive {
            Phase::Fixed
        } else {
            Phase::Pilot
        };
        Tracker {
            cfg: *cfg,
            k,
            n0,
            nmax,
            rounds: doubling_rounds(n0, nmax),
            phase,
            totals: vec![T::zero(); k],
            deltas: Vec::new(),
            n: 0,
            next_chunk: 0,
            target: 0,
            rounds_run: 0,
            converged_early: false,
            achieved_eps: 0.0,
        }
    }

    /// The next block this subscriber needs, or `None` once detached.
    pub fn demand(&self) -> Option<Demand> {
        match self.phase {
            Phase::Fixed => Some(Demand {
                stream: STREAM_MAIN,
                first_chunk: 0,
                count: self.nmax,
            }),
            Phase::Pilot => Some(Demand {
                stream: STREAM_PILOT,
                first_chunk: 0,
                count: self.n0,
            }),
            Phase::Main => Some(Demand {
                stream: STREAM_MAIN,
                first_chunk: self.next_chunk,
                count: self.target - self.n,
            }),
            Phase::Forced => Some(Demand {
                stream: STREAM_MAIN,
                first_chunk: self.next_chunk,
                count: self.nmax - self.n,
            }),
            Phase::Done => None,
        }
    }

    /// Whether the subscriber has detached from the stream.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Feeds back the accumulators of the block last demanded and advances
    /// the stopping rule.
    pub fn absorb(&mut self, block: &[T]) {
        debug_assert_eq!(block.len(), self.k);
        match self.phase {
            Phase::Fixed => {
                self.totals = block.to_vec();
                self.n = self.nmax;
                self.achieved_eps = self.cfg.eps_prime;
                self.phase = Phase::Done;
            }
            Phase::Pilot => {
                // The pilot block informs the δᵢ allocation (Eq. 13) and is
                // then discarded — main-phase estimates stay independent.
                let pilot_vars: Vec<f64> = block.iter().map(|a| a.variance(self.n0)).collect();
                self.deltas = allocate_deltas(
                    &pilot_vars,
                    self.nmax,
                    self.cfg.eps_prime,
                    self.cfg.delta / self.rounds as f64,
                );
                self.target = self.n0.min(self.nmax);
                self.phase = Phase::Main;
            }
            Phase::Main => {
                let block_len = self.target - self.n;
                self.next_chunk += chunks_used(block_len);
                for (t, b) in self.totals.iter_mut().zip(block) {
                    t.add(b);
                }
                self.n = self.target;
                self.rounds_run += 1;
                let mut max_eps = 0.0f64;
                for (t, &d) in self.totals.iter().zip(&self.deltas) {
                    let e =
                        empirical_bernstein_epsilon(self.n.max(2), d.min(0.5), t.variance(self.n));
                    if e > max_eps {
                        max_eps = e;
                    }
                }
                self.achieved_eps = max_eps;
                if max_eps <= self.cfg.eps_prime {
                    self.converged_early = true;
                    self.phase = Phase::Done;
                } else if self.target >= self.nmax {
                    // Forced stop: Lemma 4 guarantees ε′ at N_max.
                    self.phase = Phase::Done;
                } else if self.rounds_run >= self.rounds {
                    // Bernstein budget exhausted: run straight to N_max.
                    self.phase = Phase::Forced;
                } else {
                    self.target = (2 * self.target).min(self.nmax);
                }
            }
            Phase::Forced => {
                for (t, b) in self.totals.iter_mut().zip(block) {
                    t.add(b);
                }
                self.n = self.nmax;
                self.phase = Phase::Done;
            }
            Phase::Done => unreachable!("absorb on a detached tracker"),
        }
    }

    /// Finalizes the outcome. Call once the tracker is done (a tracker that
    /// never sampled — `k = 0` — yields the empty outcome, like the
    /// monolithic loop's early return).
    pub fn finish(self) -> AdaptiveOutcome {
        debug_assert!(self.is_done());
        if self.k == 0 {
            return AdaptiveOutcome::empty();
        }
        AdaptiveOutcome {
            estimates: self.totals.iter().map(|t| t.mean(self.n)).collect(),
            samples_used: self.n,
            pilot_samples: if self.cfg.adaptive { self.n0 } else { 0 },
            rounds_run: self.rounds_run,
            n0: self.n0,
            nmax: self.nmax,
            converged_early: self.converged_early,
            achieved_eps: self.achieved_eps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_phase_is_one_block() {
        let cfg = AdaptiveConfig::new(0.1, 0.1).with_fixed_budget();
        let mut t = Tracker::<u64>::new(2, &cfg, 100, 500);
        let d = t.demand().unwrap();
        assert_eq!(
            d,
            Demand {
                stream: STREAM_MAIN,
                first_chunk: 0,
                count: 500
            }
        );
        t.absorb(&[50, 10]);
        assert!(t.is_done());
        let out = t.finish();
        assert_eq!(out.samples_used, 500);
        assert_eq!(out.pilot_samples, 0);
        assert!(!out.converged_early);
        assert_eq!(out.estimates, vec![0.1, 0.02]);
    }

    #[test]
    fn pilot_then_main_demands_advance_the_cursor() {
        let cfg = AdaptiveConfig::new(0.05, 0.1);
        let n0 = pilot_budget(&cfg);
        let mut t = Tracker::<u64>::new(1, &cfg, n0, 8 * n0);
        let d = t.demand().unwrap();
        assert_eq!(d.stream, STREAM_PILOT);
        assert_eq!(d.count, n0);
        // High pilot variance: deltas allocated, main phase starts at n0.
        t.absorb(&[(n0 / 2) as u64]);
        let d = t.demand().unwrap();
        assert_eq!(d.stream, STREAM_MAIN);
        assert_eq!(d.first_chunk, 0);
        assert_eq!(d.count, n0);
        // A noisy block keeps it going: the next demand starts past the
        // chunks just drawn and doubles the total.
        t.absorb(&[(n0 / 2) as u64]);
        if let Some(d2) = t.demand() {
            assert_eq!(d2.first_chunk, chunks_used(n0));
            assert_eq!(d2.count, n0); // target doubled: block = 2n0 - n0
        }
    }

    #[test]
    fn zero_hypotheses_detaches_immediately() {
        let cfg = AdaptiveConfig::new(0.1, 0.1);
        let t = Tracker::<u64>::new(0, &cfg, 16, 16);
        assert!(t.is_done());
        assert!(t.demand().is_none());
        assert_eq!(t.finish().samples_used, 0);
    }

    #[test]
    fn zero_variance_converges_at_first_check() {
        let cfg = AdaptiveConfig::new(0.05, 0.1);
        let n0 = pilot_budget(&cfg);
        let mut t = Tracker::<u64>::new(3, &cfg, n0, 10 * n0);
        t.absorb(&[0, 0, 0]); // pilot: zero variance
        t.absorb(&[0, 0, 0]); // first main block: Bernstein check passes
        assert!(t.is_done());
        let out = t.finish();
        assert!(out.converged_early);
        assert_eq!(out.samples_used, n0);
        assert_eq!(out.rounds_run, 1);
    }
}
