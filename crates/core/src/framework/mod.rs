//! The generic SaPHyRa framework (paper §III): hypothesis-ranking problems,
//! the sample-space-partitioning estimator (Algorithm 1), and the
//! variance-reduction analysis (Claim 8).

mod adaptive;
mod batch;
mod multi;
mod problem;
mod tracker;
mod variance;
mod weighted;

pub use adaptive::{estimate_risks, AdaptiveConfig, AdaptiveOutcome};
pub use batch::LossAcc;
pub use multi::{
    demand_chunks, estimate_risks_multi, estimate_risks_multi_exec, estimate_risks_shared,
    estimate_weighted_risks_multi, estimate_weighted_risks_multi_exec, exec_hit_unit,
    exec_loss_unit, loss_unit_ranges, BlockExec, ExecError, LocalExec, LocalLossExec,
    LocalSharedExec,
};
pub use problem::{ExactPart, HrProblem, HrSampler, SharedDraw};
pub use tracker::{BlockAcc, Demand, Tracker};
pub use variance::{partitioned_variance_ratio, variance_reduction_factor};
pub use weighted::{
    estimate_weighted_risks, saphyra_estimate_weighted, WeightedHrProblem, WeightedHrSampler,
};

/// The combined output of the SaPHyRa framework on one problem instance.
#[derive(Debug, Clone)]
pub struct SaphyraEstimate {
    /// Combined risks `ℓᵢ = ℓ̂ᵢ + λ·ℓ̃ᵢ` (Eq. 8) — the quantities to rank by.
    pub combined: Vec<f64>,
    /// Exact-subspace risks `ℓ̂ᵢ` (Eq. 9).
    pub exact_part: Vec<f64>,
    /// Approximate-subspace estimates `ℓ̃ᵢ` (mean loss under `D̃`).
    pub approx_part: Vec<f64>,
    /// `λ = 1 − λ̂`, the probability mass of the approximate subspace.
    pub lambda: f64,
    /// Sampling telemetry (empty outcome when `λ ≈ 0` and sampling was
    /// skipped entirely).
    pub outcome: AdaptiveOutcome,
}

impl SaphyraEstimate {
    /// Hypothesis indices sorted best-first (highest combined risk first,
    /// ties by index — the paper's id tie-break).
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.combined.len()).collect();
        idx.sort_by(|&a, &b| {
            self.combined[b]
                .partial_cmp(&self.combined[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx
    }
}

/// Runs the full SaPHyRa pipeline (Algorithm 1) for a problem whose exact
/// part has already been evaluated.
///
/// `eps` is the target accuracy *on the combined risk*; internally the
/// approximate subspace is estimated to `ε′ = ε/λ` (line 5 of Algorithm 1).
/// When `λ` is (numerically) zero the exact part already covers the whole
/// space and no samples are drawn.
pub fn saphyra_estimate<P: HrProblem + ?Sized>(
    problem: &P,
    exact: &ExactPart,
    eps: f64,
    delta: f64,
    rng: &mut dyn rand::RngCore,
) -> SaphyraEstimate {
    saphyra_estimate_cfg(problem, exact, eps, delta, true, rng)
}

/// [`saphyra_estimate`] with explicit control over adaptive stopping
/// (`adaptive = false` draws the fixed `N_max` budget — the ablation of
/// DESIGN.md §5).
pub fn saphyra_estimate_cfg<P: HrProblem + ?Sized>(
    problem: &P,
    exact: &ExactPart,
    eps: f64,
    delta: f64,
    adaptive: bool,
    rng: &mut dyn rand::RngCore,
) -> SaphyraEstimate {
    let k = exact.exact_risks.len();
    assert_eq!(k, problem.num_hypotheses(), "exact part size mismatch");
    let lambda = (1.0 - exact.lambda_hat).clamp(0.0, 1.0);
    if lambda <= f64::EPSILON {
        return exact_only_estimate(exact, lambda);
    }
    let mut cfg = AdaptiveConfig::new(eps / lambda, delta);
    cfg.adaptive = adaptive;
    let outcome = estimate_risks(problem, &cfg, rng);
    combine_estimate(exact, lambda, outcome)
}

/// Eq. 8: `ℓᵢ = ℓ̂ᵢ + λ·ℓ̃ᵢ`, assembled from the exact part and one
/// sampling outcome.
fn combine_estimate(exact: &ExactPart, lambda: f64, outcome: AdaptiveOutcome) -> SaphyraEstimate {
    let combined: Vec<f64> = exact
        .exact_risks
        .iter()
        .zip(&outcome.estimates)
        .map(|(&e, &a)| e + lambda * a)
        .collect();
    SaphyraEstimate {
        combined,
        exact_part: exact.exact_risks.clone(),
        approx_part: outcome.estimates.clone(),
        lambda,
        outcome,
    }
}

/// Degenerate `λ ≈ 0` estimate: the exact part covers the whole space.
fn exact_only_estimate(exact: &ExactPart, lambda: f64) -> SaphyraEstimate {
    SaphyraEstimate {
        combined: exact.exact_risks.clone(),
        exact_part: exact.exact_risks.clone(),
        approx_part: vec![0.0; exact.exact_risks.len()],
        lambda,
        outcome: AdaptiveOutcome::empty(),
    }
}

/// One subscriber of a batched SaPHyRa run: a problem, its already-computed
/// exact part, and its accuracy target on the *combined* risk.
pub struct BatchSubscriber<'a, P: ?Sized> {
    /// The approximate-subspace problem.
    pub problem: &'a P,
    /// Output of the `Exact(·)` oracle for this subscriber.
    pub exact: &'a ExactPart,
    /// Target accuracy ε on the combined risk.
    pub eps: f64,
    /// Failure probability δ.
    pub delta: f64,
}

/// Shared plumbing of the batched pipelines: compute each subscriber's
/// `λ`, route the `λ > 0` ones through `engine` (with per-subscriber
/// `ε′ = ε/λ` configs and one shared master seed), and assemble Eq. 8 per
/// subscriber. Degenerate subscribers (`λ ≈ 0`) never sample.
///
/// The engine also receives `sampled` — the *original* subscriber index of
/// each problem it was handed — so remote executors can tell their
/// backends which subscriber each demand belongs to. An engine failure
/// (e.g. an unreachable shard) aborts the whole batch.
fn saphyra_batch_with<P: ?Sized>(
    subs: &[BatchSubscriber<'_, P>],
    adaptive: bool,
    rng: &mut dyn rand::RngCore,
    engine: impl FnOnce(
        &[usize],
        &[&P],
        &[AdaptiveConfig],
        u64,
    ) -> Result<Vec<AdaptiveOutcome>, ExecError>,
) -> Result<Vec<SaphyraEstimate>, ExecError> {
    let master = rng.next_u64();
    let lambdas: Vec<f64> = subs
        .iter()
        .map(|s| (1.0 - s.exact.lambda_hat).clamp(0.0, 1.0))
        .collect();
    let sampled: Vec<usize> = (0..subs.len())
        .filter(|&i| lambdas[i] > f64::EPSILON)
        .collect();
    let problems: Vec<&P> = sampled.iter().map(|&i| subs[i].problem).collect();
    let cfgs: Vec<AdaptiveConfig> = sampled
        .iter()
        .map(|&i| {
            let mut cfg = AdaptiveConfig::new(subs[i].eps / lambdas[i], subs[i].delta);
            cfg.adaptive = adaptive;
            cfg
        })
        .collect();
    let outcomes = engine(&sampled, &problems, &cfgs, master)?;
    let mut outcomes: Vec<Option<AdaptiveOutcome>> = outcomes.into_iter().map(Some).collect();
    let mut by_sub: Vec<Option<AdaptiveOutcome>> = (0..subs.len()).map(|_| None).collect();
    for (slot, &i) in sampled.iter().enumerate() {
        by_sub[i] = outcomes[slot].take();
    }
    Ok(subs
        .iter()
        .zip(lambdas)
        .zip(by_sub)
        .map(|((s, lambda), outcome)| match outcome {
            Some(o) => combine_estimate(s.exact, lambda, o),
            None => exact_only_estimate(s.exact, lambda),
        })
        .collect())
}

fn check_batch_sizes<P: ?Sized>(
    subs: &[BatchSubscriber<'_, P>],
    num_hypotheses: impl Fn(&P) -> usize,
) {
    for s in subs {
        assert_eq!(
            s.exact.exact_risks.len(),
            num_hypotheses(s.problem),
            "exact part size mismatch"
        );
    }
}

/// [`saphyra_estimate_batch`] against a caller-supplied estimation engine.
///
/// The engine is handed the `λ > 0` subscribers' problems and configs
/// *plus* their original subscriber indices, and typically wraps
/// [`estimate_risks_multi_exec`] around a remote [`BlockExec`]. Engines
/// honoring the executor contract produce results bit-identical to
/// [`saphyra_estimate_batch`]; engine errors abort the batch.
pub fn saphyra_estimate_batch_with<P: HrProblem + ?Sized>(
    subs: &[BatchSubscriber<'_, P>],
    adaptive: bool,
    rng: &mut dyn rand::RngCore,
    engine: impl FnOnce(
        &[usize],
        &[&P],
        &[AdaptiveConfig],
        u64,
    ) -> Result<Vec<AdaptiveOutcome>, ExecError>,
) -> Result<Vec<SaphyraEstimate>, ExecError> {
    check_batch_sizes(subs, |p| p.num_hypotheses());
    saphyra_batch_with(subs, adaptive, rng, engine)
}

/// [`saphyra_estimate_weighted_batch`] against a caller-supplied engine —
/// the fractional-loss analogue of [`saphyra_estimate_batch_with`].
pub fn saphyra_estimate_weighted_batch_with<P: WeightedHrProblem + ?Sized>(
    subs: &[BatchSubscriber<'_, P>],
    adaptive: bool,
    rng: &mut dyn rand::RngCore,
    engine: impl FnOnce(
        &[usize],
        &[&P],
        &[AdaptiveConfig],
        u64,
    ) -> Result<Vec<AdaptiveOutcome>, ExecError>,
) -> Result<Vec<SaphyraEstimate>, ExecError> {
    check_batch_sizes(subs, |p| p.num_hypotheses());
    saphyra_batch_with(subs, adaptive, rng, engine)
}

/// Batched [`saphyra_estimate`]: every subscriber's result — estimates,
/// telemetry, and achieved ε — is bit-identical to a solo run against an
/// `rng` yielding the same master seed, no matter who else is batched.
/// Draws are fused into one pass per round but not shared across
/// subscribers (each problem samples through its own `Gen(·)`).
pub fn saphyra_estimate_batch<P: HrProblem + ?Sized>(
    subs: &[BatchSubscriber<'_, P>],
    adaptive: bool,
    rng: &mut dyn rand::RngCore,
) -> Vec<SaphyraEstimate> {
    saphyra_estimate_batch_with(subs, adaptive, rng, |_, problems, cfgs, master| {
        Ok(estimate_risks_multi(problems, cfgs, master))
    })
    .expect("local execution is infallible")
}

/// Batched [`saphyra_estimate`] with **shared draws** for [`SharedDraw`]
/// problems over one common sample space: each demanded sample block is
/// drawn once and scored by every subscriber that needs it. Same
/// bit-identity guarantee as [`saphyra_estimate_batch`].
pub fn saphyra_estimate_batch_shared<P: SharedDraw + ?Sized>(
    subs: &[BatchSubscriber<'_, P>],
    adaptive: bool,
    rng: &mut dyn rand::RngCore,
) -> Vec<SaphyraEstimate> {
    check_batch_sizes(subs, |p| p.num_hypotheses());
    saphyra_batch_with(subs, adaptive, rng, |_, problems, cfgs, master| {
        Ok(estimate_risks_shared(problems, cfgs, master))
    })
    .expect("local execution is infallible")
}

/// Batched [`saphyra_estimate_weighted`] (fractional losses, fused pass).
pub fn saphyra_estimate_weighted_batch<P: WeightedHrProblem + ?Sized>(
    subs: &[BatchSubscriber<'_, P>],
    adaptive: bool,
    rng: &mut dyn rand::RngCore,
) -> Vec<SaphyraEstimate> {
    saphyra_estimate_weighted_batch_with(subs, adaptive, rng, |_, problems, cfgs, master| {
        Ok(estimate_weighted_risks_multi(problems, cfgs, master))
    })
    .expect("local execution is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    struct Mock {
        probs: Vec<f64>,
    }

    struct MockSampler<'a> {
        probs: &'a [f64],
    }

    impl HrSampler for MockSampler<'_> {
        fn sample_hits_into(&mut self, rng: &mut dyn rand::RngCore, hits: &mut Vec<u32>) {
            for (i, &p) in self.probs.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    hits.push(i as u32);
                }
            }
        }
    }

    impl HrProblem for Mock {
        fn num_hypotheses(&self) -> usize {
            self.probs.len()
        }
        fn sampler(&self) -> Box<dyn HrSampler + '_> {
            Box::new(MockSampler { probs: &self.probs })
        }
        fn vc_dimension(&self) -> usize {
            2
        }
    }

    #[test]
    fn combination_rule_eq8() {
        // D̃ hit probabilities R̃; with λ = 0.5 the combined risk must be
        // ℓ̂ + λ·ℓ̃ and approximate the true risk ℓ̂ + λ·R̃.
        let p = Mock {
            probs: vec![0.4, 0.1],
        };
        let exact = ExactPart {
            lambda_hat: 0.5,
            exact_risks: vec![0.05, 0.2],
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let est = saphyra_estimate(&p, &exact, 0.02, 0.05, &mut rng);
        assert_eq!(est.lambda, 0.5);
        for i in 0..2 {
            let expect_combined = exact.exact_risks[i] + 0.5 * est.approx_part[i];
            assert!((est.combined[i] - expect_combined).abs() < 1e-12);
            let truth = exact.exact_risks[i] + 0.5 * p.probs[i];
            assert!((est.combined[i] - truth).abs() < 0.02, "hyp {i}");
        }
    }

    #[test]
    fn ranking_orders_by_combined_risk() {
        let p = Mock {
            probs: vec![0.0, 0.0, 0.0],
        };
        let exact = ExactPart {
            lambda_hat: 0.9,
            exact_risks: vec![0.1, 0.3, 0.2],
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let est = saphyra_estimate(&p, &exact, 0.05, 0.1, &mut rng);
        assert_eq!(est.ranking(), vec![1, 2, 0]);
    }

    #[test]
    fn empty_approximate_subspace_short_circuits() {
        let p = Mock { probs: vec![0.7] };
        let exact = ExactPart {
            lambda_hat: 1.0,
            exact_risks: vec![0.42],
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let est = saphyra_estimate(&p, &exact, 0.01, 0.01, &mut rng);
        assert_eq!(est.outcome.samples_used, 0);
        assert_eq!(est.combined, vec![0.42]);
    }

    #[test]
    fn tie_break_is_by_index() {
        let est = SaphyraEstimate {
            combined: vec![0.5, 0.5, 0.7],
            exact_part: vec![],
            approx_part: vec![],
            lambda: 0.0,
            outcome: AdaptiveOutcome::empty(),
        };
        assert_eq!(est.ranking(), vec![2, 0, 1]);
    }
}
