//! Algorithm 1's sampling engine: pilot variance pass, per-hypothesis error
//! allocation, doubling schedule with empirical-Bernstein stopping, and the
//! VC-bounded worst-case budget.
//!
//! Sampling is executed by the parallel batch engine
//! ([`super::batch`]): every phase — the pilot pass, the fixed-budget
//! ablation, and each doubling round — draws its block of samples as
//! counter-seeded chunks fanned out over rayon workers, each worker owning
//! an [`super::problem::HrSampler`] with private scratch. The caller's
//! `rng` contributes exactly one `u64` master seed, after which every
//! drawn value is a pure function of `(master, stream, chunk)`: the
//! returned estimates are **bit-identical for every thread count**.

use rand::RngCore;
use saphyra_stats::{vc_sample_bound, C_VC};

use super::batch::sample_hit_counts;
use super::problem::HrProblem;
use super::tracker::{pilot_budget, Tracker};

/// Tuning knobs of the adaptive estimator.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Per-hypothesis deviation target ε′ on the approximate distribution.
    pub eps_prime: f64,
    /// Total failure probability δ.
    pub delta: f64,
    /// The constant of Lemma 4 (defaults to [`C_VC`]).
    pub c_vc: f64,
    /// Lower bound on the pilot size (variance estimates need a few
    /// observations even when ε′ is large).
    pub min_pilot: usize,
    /// When false, skip the pilot pass and all Bernstein checks and draw
    /// exactly `N_max` samples (the fixed-size VC-bound estimator — the
    /// "adaptive stopping" ablation of DESIGN.md §5).
    pub adaptive: bool,
}

impl AdaptiveConfig {
    /// Standard configuration for the given accuracy target.
    pub fn new(eps_prime: f64, delta: f64) -> Self {
        assert!(eps_prime > 0.0, "eps must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        AdaptiveConfig {
            eps_prime,
            delta,
            c_vc: C_VC,
            min_pilot: 16,
            adaptive: true,
        }
    }

    /// Disables adaptive stopping (fixed `N_max` budget).
    pub fn with_fixed_budget(mut self) -> Self {
        self.adaptive = false;
        self
    }
}

/// Telemetry and estimates produced by [`estimate_risks`].
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// `ℓ̃ᵢ`: mean loss of each hypothesis over the drawn samples.
    pub estimates: Vec<f64>,
    /// Samples drawn in the main phase.
    pub samples_used: usize,
    /// Samples drawn in the (independent) pilot phase.
    pub pilot_samples: usize,
    /// Doubling rounds executed (Bernstein checks performed).
    pub rounds_run: usize,
    /// Initial budget `N₀ = c/ε′² ln(1/δ)` (line 6).
    pub n0: usize,
    /// Worst-case budget `N_max = c/ε′² (VC + ln(1/δ))` (line 7).
    pub nmax: usize,
    /// Whether the Bernstein check stopped sampling before `N_max`.
    pub converged_early: bool,
    /// The largest per-hypothesis Bernstein deviation at the stop point
    /// (`≤ ε′` when `converged_early`; otherwise the VC bound guarantees ε′
    /// at `N_max` regardless).
    pub achieved_eps: f64,
}

impl AdaptiveOutcome {
    /// Outcome of a skipped sampling phase (empty approximate subspace).
    pub fn empty() -> Self {
        AdaptiveOutcome {
            estimates: Vec::new(),
            samples_used: 0,
            pilot_samples: 0,
            rounds_run: 0,
            n0: 0,
            nmax: 0,
            converged_early: true,
            achieved_eps: 0.0,
        }
    }
}

/// Runs the adaptive estimation loop of Algorithm 1 (lines 6-20) on the
/// approximate subspace of `problem`.
///
/// The paper's loop performs at most `R = ⌈log₂(N_max/N₀)⌉` Bernstein checks
/// at sizes `N₀, 2N₀, …`; each check spends `Σᵢ 2δᵢ = δ/R` of the failure
/// budget (Eq. 13). If no check passes, sampling runs to `N_max`, where
/// Lemma 4's VC bound guarantees the (ε′, δ)-estimate unconditionally.
///
/// The caller's `rng` is consumed for a single master seed; all sample
/// blocks are then drawn in parallel through [`HrProblem::sampler`] heads
/// with deterministic per-chunk RNG streams.
///
/// The schedule itself — pilot, δᵢ allocation, doubling rounds, Bernstein
/// checks, forced `N_max` finish — lives in [`Tracker`]; this function is
/// the degenerate one-subscriber stream: demand a block, draw it, absorb
/// it. The multi-subscriber drivers in [`super::multi`] run the very same
/// trackers against one shared pass.
pub fn estimate_risks<P: HrProblem + ?Sized>(
    problem: &P,
    cfg: &AdaptiveConfig,
    rng: &mut dyn RngCore,
) -> AdaptiveOutcome {
    let k = problem.num_hypotheses();
    if k == 0 {
        return AdaptiveOutcome::empty();
    }
    let master = rng.next_u64();
    let n0 = pilot_budget(cfg);
    let nmax = vc_sample_bound(cfg.eps_prime, cfg.delta, problem.vc_dimension().max(1)).max(n0);
    let mut tracker = Tracker::<u64>::new(k, cfg, n0, nmax);
    while let Some(d) = tracker.demand() {
        let block = sample_hit_counts(problem, k, master, d.stream, d.first_chunk, d.count);
        tracker.absorb(&block);
    }
    tracker.finish()
}

#[cfg(test)]
mod tests {
    use super::super::problem::HrSampler;
    use super::*;
    use rand::Rng;

    /// Synthetic problem: k independent Bernoulli hypotheses with known
    /// hit probabilities.
    struct MockProblem {
        probs: Vec<f64>,
        vc: usize,
    }

    struct MockSampler<'a> {
        probs: &'a [f64],
    }

    impl HrSampler for MockSampler<'_> {
        fn sample_hits_into(&mut self, rng: &mut dyn RngCore, hits: &mut Vec<u32>) {
            for (i, &p) in self.probs.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    hits.push(i as u32);
                }
            }
        }
    }

    impl HrProblem for MockProblem {
        fn num_hypotheses(&self) -> usize {
            self.probs.len()
        }
        fn sampler(&self) -> Box<dyn HrSampler + '_> {
            Box::new(MockSampler { probs: &self.probs })
        }
        fn vc_dimension(&self) -> usize {
            self.vc
        }
    }

    fn rng(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn estimates_are_accurate() {
        let p = MockProblem {
            probs: vec![0.5, 0.1, 0.02, 0.0],
            vc: 2,
        };
        let out = estimate_risks(&p, &AdaptiveConfig::new(0.05, 0.05), &mut rng(1));
        for (est, truth) in out.estimates.iter().zip(&p.probs) {
            assert!((est - truth).abs() < 0.05, "est {est} truth {truth}");
        }
        assert!(out.samples_used >= out.n0);
        assert!(out.samples_used <= out.nmax);
    }

    #[test]
    fn zero_variance_stops_at_pilot_budget() {
        // All-zero hypotheses: variance 0, the first Bernstein check passes.
        let p = MockProblem {
            probs: vec![0.0; 8],
            vc: 3,
        };
        let out = estimate_risks(&p, &AdaptiveConfig::new(0.05, 0.05), &mut rng(2));
        assert!(out.converged_early);
        assert_eq!(out.samples_used, out.n0);
        assert_eq!(out.rounds_run, 1);
        assert!(out.estimates.iter().all(|&e| e == 0.0));
    }

    #[test]
    fn low_variance_needs_fewer_samples_than_high_variance() {
        let cfg = AdaptiveConfig::new(0.02, 0.05);
        let low = MockProblem {
            probs: vec![0.005; 4],
            vc: 4,
        };
        let high = MockProblem {
            probs: vec![0.5; 4],
            vc: 4,
        };
        let out_low = estimate_risks(&low, &cfg, &mut rng(3));
        let out_high = estimate_risks(&high, &cfg, &mut rng(4));
        assert!(
            out_low.samples_used < out_high.samples_used,
            "low {} high {}",
            out_low.samples_used,
            out_high.samples_used
        );
    }

    #[test]
    fn low_variance_converges_in_first_round() {
        // Rare hypotheses at a small ε: at realistic accuracy targets the
        // Bernstein linear term is negligible and the pilot budget already
        // satisfies the check (n0 ≈ 3.7k here, variance ~1e-3).
        let p = MockProblem {
            probs: vec![0.001, 0.002],
            vc: 2,
        };
        let out = estimate_risks(&p, &AdaptiveConfig::new(0.02, 0.05), &mut rng(5));
        assert!(out.converged_early, "achieved {}", out.achieved_eps);
        assert_eq!(out.samples_used, out.n0);
        assert_eq!(out.rounds_run, 1);
    }

    #[test]
    fn respects_nmax_cap() {
        // Very tight eps with tiny delta: hits the VC cap.
        let p = MockProblem {
            probs: vec![0.5],
            vc: 1,
        };
        let cfg = AdaptiveConfig::new(0.2, 0.3);
        let out = estimate_risks(&p, &cfg, &mut rng(6));
        assert!(out.samples_used <= out.nmax);
        assert!(out.nmax >= out.n0);
    }

    #[test]
    fn empty_problem() {
        let p = MockProblem {
            probs: vec![],
            vc: 1,
        };
        let out = estimate_risks(&p, &AdaptiveConfig::new(0.05, 0.05), &mut rng(7));
        assert!(out.estimates.is_empty());
        assert_eq!(out.samples_used, 0);
    }

    #[test]
    fn higher_vc_means_larger_worst_case_budget() {
        let cfg = AdaptiveConfig::new(0.05, 0.05);
        let a = MockProblem {
            probs: vec![0.5],
            vc: 1,
        };
        let b = MockProblem {
            probs: vec![0.5],
            vc: 20,
        };
        let oa = estimate_risks(&a, &cfg, &mut rng(8));
        let ob = estimate_risks(&b, &cfg, &mut rng(8));
        assert!(ob.nmax > oa.nmax);
    }

    #[test]
    fn outcome_is_bit_identical_across_thread_counts() {
        let p = MockProblem {
            probs: vec![0.4, 0.07, 0.9, 0.0],
            vc: 3,
        };
        let cfg = AdaptiveConfig::new(0.03, 0.1);
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| estimate_risks(&p, &cfg, &mut rng(99)))
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            let out = run(threads);
            assert_eq!(out.estimates, reference.estimates, "{threads} threads");
            assert_eq!(out.samples_used, reference.samples_used);
            assert_eq!(out.rounds_run, reference.rounds_run);
            assert_eq!(out.achieved_eps, reference.achieved_eps);
        }
    }
}
