//! Fractional-loss extension of the framework (the paper's future-work
//! direction: "extending the framework to other centrality measures such as
//! closeness centrality", §VI).
//!
//! Algorithm 1 only needs losses in `[0, 1]` — nothing about it is specific
//! to 0-1 losses except the Bernoulli variance shortcut. This module
//! generalizes the adaptive estimator to bounded real losses: per-hypothesis
//! sums and sums of squares give the unbiased sample variance for the
//! empirical-Bernstein check, and the worst-case budget falls back to
//! Hoeffding + union bound over the `k` hypotheses (the
//! `O(1/ε²(ln k + ln 1/δ))` of §II-A) since the VC argument of Lemma 4 does
//! not apply to real-valued classes.

use saphyra_stats::{allocate_deltas, doubling_rounds, empirical_bernstein_epsilon, hoeffding_samples};

use super::adaptive::{AdaptiveConfig, AdaptiveOutcome};
use super::problem::ExactPart;
use super::SaphyraEstimate;

/// A hypothesis-ranking problem with losses in `[0, 1]`.
pub trait WeightedHrProblem {
    /// Number of hypotheses `k`.
    fn num_hypotheses(&self) -> usize;

    /// Draws one sample `x ∼ D̃` and appends `(hypothesis, loss)` for every
    /// hypothesis with a nonzero loss on `x`. Losses must lie in `[0, 1]`.
    fn sample_losses(&mut self, rng: &mut dyn rand::RngCore, out: &mut Vec<(u32, f64)>);
}

/// Per-hypothesis accumulator: `Var = (Σx² − (Σx)²/N) / (N−1)`.
#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    sum: f64,
    sumsq: f64,
}

impl Acc {
    #[inline]
    fn push(&mut self, x: f64) {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&x), "loss out of range: {x}");
        self.sum += x;
        self.sumsq += x * x;
    }

    fn sample_variance(&self, n: usize) -> f64 {
        if n < 2 {
            return 0.0;
        }
        ((self.sumsq - self.sum * self.sum / n as f64) / (n as f64 - 1.0)).max(0.0)
    }
}

/// The adaptive estimator of Algorithm 1 for fractional losses.
pub fn estimate_weighted_risks<P: WeightedHrProblem + ?Sized>(
    problem: &mut P,
    cfg: &AdaptiveConfig,
    rng: &mut dyn rand::RngCore,
) -> AdaptiveOutcome {
    let k = problem.num_hypotheses();
    if k == 0 {
        return AdaptiveOutcome::empty();
    }
    let ln_inv_delta = (1.0 / cfg.delta).ln();
    let n0 = ((cfg.c_vc / (cfg.eps_prime * cfg.eps_prime) * ln_inv_delta).ceil() as usize)
        .max(cfg.min_pilot);
    let nmax = hoeffding_samples(cfg.eps_prime, cfg.delta, k).max(n0);

    let mut buf: Vec<(u32, f64)> = Vec::new();
    let mut draw = |accs: &mut [Acc], problem: &mut P, rng: &mut dyn rand::RngCore| {
        buf.clear();
        problem.sample_losses(rng, &mut buf);
        for &(i, x) in &buf {
            accs[i as usize].push(x);
        }
    };

    if !cfg.adaptive {
        let mut accs = vec![Acc::default(); k];
        for _ in 0..nmax {
            draw(&mut accs, problem, rng);
        }
        return AdaptiveOutcome {
            estimates: accs.iter().map(|a| a.sum / nmax as f64).collect(),
            samples_used: nmax,
            pilot_samples: 0,
            rounds_run: 0,
            n0,
            nmax,
            converged_early: false,
            achieved_eps: cfg.eps_prime,
        };
    }

    // Pilot pass for the δᵢ allocation (Eq. 13).
    let mut pilot = vec![Acc::default(); k];
    for _ in 0..n0 {
        draw(&mut pilot, problem, rng);
    }
    let pilot_vars: Vec<f64> = pilot.iter().map(|a| a.sample_variance(n0)).collect();
    let rounds = doubling_rounds(n0, nmax);
    let deltas = allocate_deltas(&pilot_vars, nmax, cfg.eps_prime, cfg.delta / rounds as f64);

    let mut accs = vec![Acc::default(); k];
    let mut n = 0usize;
    let mut target = n0.min(nmax);
    let mut converged_early = false;
    let mut achieved_eps;
    let mut rounds_run = 0usize;
    loop {
        while n < target {
            draw(&mut accs, problem, rng);
            n += 1;
        }
        rounds_run += 1;
        let mut max_eps = 0.0f64;
        for i in 0..k {
            let e = empirical_bernstein_epsilon(
                n.max(2),
                deltas[i].min(0.5),
                accs[i].sample_variance(n),
            );
            if e > max_eps {
                max_eps = e;
            }
        }
        achieved_eps = max_eps;
        if max_eps <= cfg.eps_prime {
            converged_early = true;
            break;
        }
        if target >= nmax {
            break;
        }
        if rounds_run >= rounds {
            while n < nmax {
                draw(&mut accs, problem, rng);
                n += 1;
            }
            break;
        }
        target = (2 * target).min(nmax);
    }

    AdaptiveOutcome {
        estimates: accs.iter().map(|a| a.sum / n as f64).collect(),
        samples_used: n,
        pilot_samples: n0,
        rounds_run,
        n0,
        nmax,
        converged_early,
        achieved_eps,
    }
}

/// The full SaPHyRa pipeline for fractional-loss problems (combination rule
/// Eq. 8, identical to the 0-1 case).
pub fn saphyra_estimate_weighted<P: WeightedHrProblem + ?Sized>(
    problem: &mut P,
    exact: &ExactPart,
    eps: f64,
    delta: f64,
    rng: &mut dyn rand::RngCore,
) -> SaphyraEstimate {
    let k = exact.exact_risks.len();
    assert_eq!(k, problem.num_hypotheses(), "exact part size mismatch");
    let lambda = (1.0 - exact.lambda_hat).clamp(0.0, 1.0);
    if lambda <= f64::EPSILON {
        return SaphyraEstimate {
            combined: exact.exact_risks.clone(),
            exact_part: exact.exact_risks.clone(),
            approx_part: vec![0.0; k],
            lambda,
            outcome: AdaptiveOutcome::empty(),
        };
    }
    let outcome = estimate_weighted_risks(problem, &AdaptiveConfig::new(eps / lambda, delta), rng);
    let combined: Vec<f64> = exact
        .exact_risks
        .iter()
        .zip(&outcome.estimates)
        .map(|(&e, &a)| e + lambda * a)
        .collect();
    SaphyraEstimate {
        combined,
        exact_part: exact.exact_risks.clone(),
        approx_part: outcome.estimates.clone(),
        lambda,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    /// Hypotheses whose losses are `value` with probability `p`, else 0.
    struct Mock {
        params: Vec<(f64, f64)>, // (p, value)
    }

    impl WeightedHrProblem for Mock {
        fn num_hypotheses(&self) -> usize {
            self.params.len()
        }
        fn sample_losses(&mut self, rng: &mut dyn rand::RngCore, out: &mut Vec<(u32, f64)>) {
            for (i, &(p, v)) in self.params.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    out.push((i as u32, v));
                }
            }
        }
    }

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn estimates_converge_to_expectations() {
        let mut p = Mock {
            params: vec![(0.5, 0.4), (0.1, 1.0), (0.9, 0.05), (0.0, 1.0)],
        };
        let out = estimate_weighted_risks(&mut p, &AdaptiveConfig::new(0.02, 0.05), &mut rng(1));
        let expect = [0.2, 0.1, 0.045, 0.0];
        for (e, t) in out.estimates.iter().zip(expect) {
            assert!((e - t).abs() < 0.02, "est {e} expect {t}");
        }
    }

    #[test]
    fn zero_loss_hypotheses_converge_fast() {
        let mut p = Mock {
            params: vec![(0.0, 1.0); 5],
        };
        let out = estimate_weighted_risks(&mut p, &AdaptiveConfig::new(0.05, 0.05), &mut rng(2));
        assert!(out.converged_early);
        assert_eq!(out.samples_used, out.n0);
    }

    #[test]
    fn fixed_budget_path() {
        let mut p = Mock {
            params: vec![(0.3, 0.5)],
        };
        let cfg = AdaptiveConfig::new(0.1, 0.1).with_fixed_budget();
        let out = estimate_weighted_risks(&mut p, &cfg, &mut rng(3));
        assert!(!out.converged_early);
        assert_eq!(out.samples_used, out.nmax);
        assert!((out.estimates[0] - 0.15).abs() < 0.05);
    }

    #[test]
    fn combination_matches_exact_plus_lambda_weighted() {
        let mut p = Mock {
            params: vec![(0.4, 0.5), (0.2, 0.25)],
        };
        let exact = ExactPart {
            lambda_hat: 0.25,
            exact_risks: vec![0.05, 0.01],
        };
        let est = saphyra_estimate_weighted(&mut p, &exact, 0.02, 0.05, &mut rng(4));
        assert!((est.lambda - 0.75).abs() < 1e-12);
        for i in 0..2 {
            let expect = exact.exact_risks[i] + est.lambda * est.approx_part[i];
            assert!((est.combined[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn full_exact_coverage_skips_sampling() {
        let mut p = Mock {
            params: vec![(0.4, 0.5)],
        };
        let exact = ExactPart {
            lambda_hat: 1.0,
            exact_risks: vec![0.2],
        };
        let est = saphyra_estimate_weighted(&mut p, &exact, 0.02, 0.05, &mut rng(5));
        assert_eq!(est.outcome.samples_used, 0);
        assert_eq!(est.combined, vec![0.2]);
    }
}
