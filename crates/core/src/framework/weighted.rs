//! Fractional-loss extension of the framework (the paper's future-work
//! direction: "extending the framework to other centrality measures such as
//! closeness centrality", §VI).
//!
//! Algorithm 1 only needs losses in `[0, 1]` — nothing about it is specific
//! to 0-1 losses except the Bernoulli variance shortcut. This module
//! generalizes the adaptive estimator to bounded real losses: per-hypothesis
//! sums and sums of squares give the unbiased sample variance for the
//! empirical-Bernstein check, and the worst-case budget falls back to
//! Hoeffding + union bound over the `k` hypotheses (the
//! `O(1/ε²(ln k + ln 1/δ))` of §II-A) since the VC argument of Lemma 4 does
//! not apply to real-valued classes.
//!
//! Like the 0-1 estimator, sampling runs through the parallel batch engine
//! ([`super::batch`]): per-worker [`WeightedHrSampler`] heads, counter-based
//! chunk RNG streams, and a fixed `f64` merge order, so results are
//! bit-identical for every thread count.

use rand::RngCore;
use saphyra_stats::hoeffding_samples;

use super::adaptive::{AdaptiveConfig, AdaptiveOutcome};
use super::batch::{sample_loss_accs, LossAcc};
use super::problem::ExactPart;
use super::tracker::{pilot_budget, Tracker};
use super::SaphyraEstimate;

/// A per-worker drawing head for one [`WeightedHrProblem`] (the
/// fractional-loss analogue of [`super::problem::HrSampler`]).
pub trait WeightedHrSampler: Send {
    /// Draws one sample `x ∼ D̃` and appends `(hypothesis, loss)` for every
    /// hypothesis with a nonzero loss on `x`. Losses must lie in `[0, 1]`.
    /// `out` arrives empty.
    fn sample_losses_into(&mut self, rng: &mut dyn RngCore, out: &mut Vec<(u32, f64)>);
}

/// A hypothesis-ranking problem with losses in `[0, 1]`.
///
/// The problem is the shared read-only half (`Sync`); mutable drawing
/// scratch lives in the [`WeightedHrSampler`] values it hands out.
pub trait WeightedHrProblem: Sync {
    /// Number of hypotheses `k`.
    fn num_hypotheses(&self) -> usize;

    /// Creates a drawing head with its own scratch buffers.
    fn sampler(&self) -> Box<dyn WeightedHrSampler + '_>;

    /// Single-sample convenience path: a thin adapter over a one-chunk
    /// batch. Creates a fresh sampler per call — use
    /// [`WeightedHrProblem::sampler`] directly in loops.
    fn sample_losses(&mut self, rng: &mut dyn RngCore, out: &mut Vec<(u32, f64)>) {
        self.sampler().sample_losses_into(rng, out);
    }
}

/// The adaptive estimator of Algorithm 1 for fractional losses.
///
/// The caller's `rng` contributes one master seed; sample blocks are drawn
/// by the parallel batch engine. Like the 0-1 estimator, the schedule is a
/// [`Tracker`] driven as a one-subscriber stream (the worst-case budget
/// falls back to Hoeffding over `k` hypotheses instead of the VC bound).
pub fn estimate_weighted_risks<P: WeightedHrProblem + ?Sized>(
    problem: &P,
    cfg: &AdaptiveConfig,
    rng: &mut dyn RngCore,
) -> AdaptiveOutcome {
    let k = problem.num_hypotheses();
    if k == 0 {
        return AdaptiveOutcome::empty();
    }
    let master = rng.next_u64();
    let n0 = pilot_budget(cfg);
    let nmax = hoeffding_samples(cfg.eps_prime, cfg.delta, k).max(n0);
    let mut tracker = Tracker::<LossAcc>::new(k, cfg, n0, nmax);
    while let Some(d) = tracker.demand() {
        let block = sample_loss_accs(problem, k, master, d.stream, d.first_chunk, d.count);
        tracker.absorb(&block);
    }
    tracker.finish()
}

/// The full SaPHyRa pipeline for fractional-loss problems (combination rule
/// Eq. 8, identical to the 0-1 case).
pub fn saphyra_estimate_weighted<P: WeightedHrProblem + ?Sized>(
    problem: &P,
    exact: &ExactPart,
    eps: f64,
    delta: f64,
    rng: &mut dyn RngCore,
) -> SaphyraEstimate {
    let k = exact.exact_risks.len();
    assert_eq!(k, problem.num_hypotheses(), "exact part size mismatch");
    let lambda = (1.0 - exact.lambda_hat).clamp(0.0, 1.0);
    if lambda <= f64::EPSILON {
        return SaphyraEstimate {
            combined: exact.exact_risks.clone(),
            exact_part: exact.exact_risks.clone(),
            approx_part: vec![0.0; k],
            lambda,
            outcome: AdaptiveOutcome::empty(),
        };
    }
    let outcome = estimate_weighted_risks(problem, &AdaptiveConfig::new(eps / lambda, delta), rng);
    let combined: Vec<f64> = exact
        .exact_risks
        .iter()
        .zip(&outcome.estimates)
        .map(|(&e, &a)| e + lambda * a)
        .collect();
    SaphyraEstimate {
        combined,
        exact_part: exact.exact_risks.clone(),
        approx_part: outcome.estimates.clone(),
        lambda,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    /// Hypotheses whose losses are `value` with probability `p`, else 0.
    struct Mock {
        params: Vec<(f64, f64)>, // (p, value)
    }

    struct MockSampler<'a> {
        params: &'a [(f64, f64)],
    }

    impl WeightedHrSampler for MockSampler<'_> {
        fn sample_losses_into(&mut self, rng: &mut dyn RngCore, out: &mut Vec<(u32, f64)>) {
            for (i, &(p, v)) in self.params.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    out.push((i as u32, v));
                }
            }
        }
    }

    impl WeightedHrProblem for Mock {
        fn num_hypotheses(&self) -> usize {
            self.params.len()
        }
        fn sampler(&self) -> Box<dyn WeightedHrSampler + '_> {
            Box::new(MockSampler {
                params: &self.params,
            })
        }
    }

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn estimates_converge_to_expectations() {
        let p = Mock {
            params: vec![(0.5, 0.4), (0.1, 1.0), (0.9, 0.05), (0.0, 1.0)],
        };
        let out = estimate_weighted_risks(&p, &AdaptiveConfig::new(0.02, 0.05), &mut rng(1));
        let expect = [0.2, 0.1, 0.045, 0.0];
        for (e, t) in out.estimates.iter().zip(expect) {
            assert!((e - t).abs() < 0.02, "est {e} expect {t}");
        }
    }

    #[test]
    fn zero_loss_hypotheses_converge_fast() {
        let p = Mock {
            params: vec![(0.0, 1.0); 5],
        };
        let out = estimate_weighted_risks(&p, &AdaptiveConfig::new(0.05, 0.05), &mut rng(2));
        assert!(out.converged_early);
        assert_eq!(out.samples_used, out.n0);
    }

    #[test]
    fn fixed_budget_path() {
        let p = Mock {
            params: vec![(0.3, 0.5)],
        };
        let cfg = AdaptiveConfig::new(0.1, 0.1).with_fixed_budget();
        let out = estimate_weighted_risks(&p, &cfg, &mut rng(3));
        assert!(!out.converged_early);
        assert_eq!(out.samples_used, out.nmax);
        assert!((out.estimates[0] - 0.15).abs() < 0.05);
    }

    #[test]
    fn combination_matches_exact_plus_lambda_weighted() {
        let p = Mock {
            params: vec![(0.4, 0.5), (0.2, 0.25)],
        };
        let exact = ExactPart {
            lambda_hat: 0.25,
            exact_risks: vec![0.05, 0.01],
        };
        let est = saphyra_estimate_weighted(&p, &exact, 0.02, 0.05, &mut rng(4));
        assert!((est.lambda - 0.75).abs() < 1e-12);
        for i in 0..2 {
            let expect = exact.exact_risks[i] + est.lambda * est.approx_part[i];
            assert!((est.combined[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn full_exact_coverage_skips_sampling() {
        let p = Mock {
            params: vec![(0.4, 0.5)],
        };
        let exact = ExactPart {
            lambda_hat: 1.0,
            exact_risks: vec![0.2],
        };
        let est = saphyra_estimate_weighted(&p, &exact, 0.02, 0.05, &mut rng(5));
        assert_eq!(est.outcome.samples_used, 0);
        assert_eq!(est.combined, vec![0.2]);
    }

    #[test]
    fn weighted_outcome_is_bit_identical_across_thread_counts() {
        let p = Mock {
            params: vec![(0.5, 0.8), (0.05, 0.3), (0.9, 0.1)],
        };
        let cfg = AdaptiveConfig::new(0.03, 0.1);
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| estimate_weighted_risks(&p, &cfg, &mut rng(42)))
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            let out = run(threads);
            // f64 accumulators merge in a fixed group order: bit equality,
            // not approximate equality.
            assert_eq!(out.estimates, reference.estimates, "{threads} threads");
            assert_eq!(out.samples_used, reference.samples_used);
            assert_eq!(out.achieved_eps, reference.achieved_eps);
        }
    }
}
