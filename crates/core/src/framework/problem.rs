//! The hypothesis-ranking problem abstraction (paper §II-B) and the batch
//! sampling contract behind the parallel `Gen(·)` engine.
//!
//! A problem owns the approximate sample space `X̃`, its distribution `D̃`,
//! and a hypothesis class `H = {h₁ … h_k}` with 0-1 losses. Because a
//! single sample touches few hypotheses (a shortest path contains few
//! target nodes), losses are reported *sparsely*: one sample yields the
//! list of hypothesis indices with loss 1.
//!
//! Sampling is split in two roles so the estimator can fan out across
//! cores:
//!
//! * [`HrProblem`] is the *shared, immutable* description — graph
//!   references, prefix-sum tables, index maps. It must be [`Sync`]: every
//!   worker reads it concurrently through `&self`.
//! * [`HrSampler`] is a *per-worker* drawing head created by
//!   [`HrProblem::sampler`]. It owns all mutable scratch (BFS distance /
//!   queue / σ buffers, path stacks) so a draw never allocates and never
//!   contends. Workers receive their randomness as counter-based chunk
//!   RNGs ([`saphyra_stats::stream`]), which makes estimates bit-identical
//!   for every thread count.

use rand::RngCore;

/// Result of the `Exact(·)` oracle (Algorithm 1, line 3): the probability
/// mass `λ̂` of the exact subspace and the per-hypothesis exact risks `ℓ̂ᵢ`
/// (Eq. 9), both under the *full* distribution `D`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactPart {
    /// `λ̂ = Pr_{x∼D}[x ∈ X̂]`.
    pub lambda_hat: f64,
    /// `ℓ̂ᵢ` for each hypothesis.
    pub exact_risks: Vec<f64>,
}

impl ExactPart {
    /// An empty exact subspace (`λ̂ = 0`): degrades SaPHyRa to direct
    /// estimation on `D`.
    pub fn trivial(k: usize) -> Self {
        ExactPart {
            lambda_hat: 0.0,
            exact_risks: vec![0.0; k],
        }
    }
}

/// A per-worker drawing head for one [`HrProblem`].
///
/// A sampler owns every mutable buffer one draw needs, so
/// [`HrSampler::sample_hits_into`] performs no allocation on the hot path
/// and samplers on different threads never share mutable state. Samplers
/// are `Send` (they may be created on one thread and driven on another)
/// but need not be `Sync` — each worker drives exactly one.
pub trait HrSampler: Send {
    /// Draws one sample `x ∼ D̃` (the `Gen(·)` oracle) and appends to
    /// `hits` the indices of all hypotheses with `L(hᵢ(x), f(x)) = 1`.
    /// `hits` arrives empty.
    fn sample_hits_into(&mut self, rng: &mut dyn RngCore, hits: &mut Vec<u32>);
}

/// A hypothesis-ranking problem over the approximate subspace.
///
/// Implementors: [`crate::bc::BcApproxProblem`] (random intra-component
/// shortest paths), [`crate::kpath::KPathApproxProblem`] (random walks).
///
/// The problem itself is the shared read-only half of the contract (hence
/// the `Sync` bound); all drawing state lives in the [`HrSampler`] values
/// it hands out.
pub trait HrProblem: Sync {
    /// Number of hypotheses `k`.
    fn num_hypotheses(&self) -> usize;

    /// Creates a drawing head with its own scratch buffers. The estimator
    /// calls this once per worker, then draws whole chunks through it.
    fn sampler(&self) -> Box<dyn HrSampler + '_>;

    /// An upper bound on the VC dimension of the hypothesis class over the
    /// approximate subspace, used for the worst-case budget `N_max`
    /// (Lemma 4). Implementations should return the tightest bound they can
    /// prove (Lemma 5 / Corollary 22); `log2(k) + 1` is always sound
    /// because π_max ≤ k.
    fn vc_dimension(&self) -> usize;

    /// Single-sample convenience path: a thin adapter over a one-chunk
    /// batch. Creates a fresh sampler per call — use [`HrProblem::sampler`]
    /// directly in loops.
    fn sample_hits(&mut self, rng: &mut dyn RngCore, hits: &mut Vec<u32>) {
        self.sampler().sample_hits_into(rng, hits);
    }
}

/// A problem whose `Gen(·)` draw is **independent of the hypothesis set**,
/// split into a draw half and a score half so one drawn sample can be
/// scored by many subscribers.
///
/// The k-path walk is the canonical case: the walk (start node, length,
/// neighbor steps) consumes RNG but never looks at the targets; only the
/// cheap hit scan does. Problems like personalized-ISP betweenness (whose
/// rejection step consults the target set mid-draw) or harmonic closeness
/// (whose sources are uniform over `V ∖ A`) cannot implement this.
///
/// # Contract
///
/// For every implementor, `{ draw_artifact(rng, buf); score_artifact(&buf,
/// hits) }` must consume exactly the RNG values — and push exactly the hit
/// indices — that [`HrSampler::sample_hits_into`] would on the same `rng`.
/// And because the batched engine lets problems score *each other's*
/// artifacts, `draw_artifact` must behave identically for every problem
/// instance over the same shared sample space (same graph, same walk
/// parameters): it may read the hypothesis set for nothing.
pub trait SharedDraw: HrProblem {
    /// Draws one sample's target-independent artifact (e.g. the walk's
    /// node sequence) into `buf` (cleared first).
    fn draw_artifact(&self, rng: &mut dyn RngCore, buf: &mut Vec<u32>);

    /// Scores a drawn artifact against *this* problem's hypotheses,
    /// appending hit indices to `hits` (which arrives empty).
    fn score_artifact(&self, artifact: &[u32], hits: &mut Vec<u32>);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn trivial_exact_part() {
        let e = ExactPart::trivial(3);
        assert_eq!(e.lambda_hat, 0.0);
        assert_eq!(e.exact_risks, vec![0.0; 3]);
    }

    /// A minimal problem exercising the default `sample_hits` adapter.
    struct Coin;
    struct CoinSampler;

    impl HrSampler for CoinSampler {
        fn sample_hits_into(&mut self, rng: &mut dyn RngCore, hits: &mut Vec<u32>) {
            if rng.gen::<f64>() < 0.5 {
                hits.push(0);
            }
        }
    }

    impl HrProblem for Coin {
        fn num_hypotheses(&self) -> usize {
            1
        }
        fn sampler(&self) -> Box<dyn HrSampler + '_> {
            Box::new(CoinSampler)
        }
        fn vc_dimension(&self) -> usize {
            1
        }
    }

    #[test]
    fn default_single_sample_adapter_matches_sampler() {
        let mut p = Coin;
        let mut via_adapter = 0u32;
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = Vec::new();
        for _ in 0..1000 {
            hits.clear();
            p.sample_hits(&mut rng, &mut hits);
            via_adapter += hits.len() as u32;
        }
        let mut via_sampler = 0u32;
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = p.sampler();
        for _ in 0..1000 {
            hits.clear();
            sampler.sample_hits_into(&mut rng, &mut hits);
            via_sampler += hits.len() as u32;
        }
        assert_eq!(via_adapter, via_sampler);
    }
}
