//! The hypothesis-ranking problem abstraction (paper §II-B).
//!
//! A problem owns the approximate sample space `X̃`, its distribution `D̃`,
//! and a hypothesis class `H = {h₁ … h_k}` with 0-1 losses. Because a
//! single sample touches few hypotheses (a shortest path contains few
//! target nodes), losses are reported *sparsely*: one sample yields the
//! list of hypothesis indices with loss 1.

/// Result of the `Exact(·)` oracle (Algorithm 1, line 3): the probability
/// mass `λ̂` of the exact subspace and the per-hypothesis exact risks `ℓ̂ᵢ`
/// (Eq. 9), both under the *full* distribution `D`.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactPart {
    /// `λ̂ = Pr_{x∼D}[x ∈ X̂]`.
    pub lambda_hat: f64,
    /// `ℓ̂ᵢ` for each hypothesis.
    pub exact_risks: Vec<f64>,
}

impl ExactPart {
    /// An empty exact subspace (`λ̂ = 0`): degrades SaPHyRa to direct
    /// estimation on `D`.
    pub fn trivial(k: usize) -> Self {
        ExactPart {
            lambda_hat: 0.0,
            exact_risks: vec![0.0; k],
        }
    }
}

/// A hypothesis-ranking problem over the approximate subspace.
///
/// Implementors: [`crate::bc::BcApproxProblem`] (random intra-component
/// shortest paths), [`crate::kpath::KPathApproxProblem`] (random walks).
pub trait HrProblem {
    /// Number of hypotheses `k`.
    fn num_hypotheses(&self) -> usize;

    /// Draws one sample `x ∼ D̃` (the `Gen(·)` oracle) and appends to
    /// `hits` the indices of all hypotheses with `L(hᵢ(x), f(x)) = 1`.
    /// `hits` arrives empty.
    fn sample_hits(&mut self, rng: &mut dyn rand::RngCore, hits: &mut Vec<u32>);

    /// An upper bound on the VC dimension of the hypothesis class over the
    /// approximate subspace, used for the worst-case budget `N_max`
    /// (Lemma 4). Implementations should return the tightest bound they can
    /// prove (Lemma 5 / Corollary 22); `log2(k) + 1` is always sound
    /// because π_max ≤ k.
    fn vc_dimension(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_exact_part() {
        let e = ExactPart::trivial(3);
        assert_eq!(e.lambda_hat, 0.0);
        assert_eq!(e.exact_risks, vec![0.0; 3]);
    }
}
