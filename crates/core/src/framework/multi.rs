//! Multi-subscriber adaptive estimation: one pass over sample blocks feeds
//! many independent (est, ε) trackers with per-subscriber stopping rules.
//!
//! Each subscriber is a [`Tracker`] (the demand/absorb form of Algorithm
//! 1's loop). The drivers here step all trackers in lockstep rounds: every
//! round collects the active subscribers' [`Demand`]s, executes them as
//! **one** parallel pass, and feeds each block back. A subscriber whose ε
//! target is met detaches while the pass keeps serving stricter ones.
//! Because a demand is a pure coordinate into the counter-based RNG
//! streams, each subscriber sees exactly the draws it would have seen
//! running alone under the same master seed — outcomes are bit-identical
//! to per-subscriber [`super::adaptive::estimate_risks`] runs, for every
//! thread count and every batch composition.
//!
//! ## Pluggable execution
//!
//! *Where* a round's demands are drawn is behind the [`BlockExec`] trait:
//! the drivers only see `demands in → per-subscriber accumulators out`.
//! Three in-process executors ship here:
//!
//! * [`LocalExec`] (behind [`estimate_risks_multi`] /
//!   [`estimate_weighted_risks_multi`] via [`LocalLossExec`]) — fused
//!   scheduling: all subscribers' blocks fan out over one rayon pass, but
//!   each block is drawn through its own problem's sampler (required when
//!   draws depend on the hypothesis set, as for personalized-ISP
//!   betweenness and harmonic closeness).
//! * [`LocalSharedExec`] (behind [`estimate_risks_shared`]) — genuine draw
//!   sharing for [`SharedDraw`] problems: overlapping chunk demands are
//!   unioned, each chunk's artifacts are drawn **once**, and every
//!   demanding subscriber scores them. Serving `s` subscribers costs one
//!   draw pass plus `s` cheap score scans instead of `s` draw passes.
//!
//! A distributed executor reproduces the local passes bit-exactly from the
//! published unit helpers: [`demand_chunks`] and [`exec_hit_unit`] for
//! integer hits (exact merges under any chunk partition), and
//! [`loss_unit_ranges`] + [`exec_loss_unit`] for fractional losses (units
//! are the solo path's `f64` fold groups; merging unit partials
//! left-to-right in unit order reproduces the solo association order, and
//! therefore the bits, no matter which backend computed which unit).

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

use rayon::prelude::*;
use saphyra_stats::{hoeffding_samples, stream, vc_sample_bound};

use super::adaptive::{AdaptiveConfig, AdaptiveOutcome};
use super::batch::LossAcc;
use super::problem::{HrProblem, HrSampler, SharedDraw};
use super::tracker::{pilot_budget, BlockAcc, Demand, Tracker};
use super::weighted::{WeightedHrProblem, WeightedHrSampler};

/// Failure of a pluggable [`BlockExec`] backend (an unreachable shard, a
/// wire decode error, ...). Local executors never produce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError(pub String);

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block execution failed: {}", self.0)
    }
}

impl std::error::Error for ExecError {}

/// Where sample blocks are drawn. One round's demands go in (one entry per
/// active subscriber, each a pure `(stream, first_chunk, count)` coordinate
/// paired with its subscriber index); per-subscriber accumulator vectors
/// come back, aligned with `reqs`.
///
/// The contract that makes executors interchangeable **bit-for-bit**: the
/// accumulators returned for a demand must equal the ones
/// [`exec_hit_unit`] / [`exec_loss_unit`] produce from the same master
/// seed, with `f64` unit partials merged in [`loss_unit_ranges`] order.
/// Under that contract solo == local == distributed by construction.
pub trait BlockExec<T: BlockAcc> {
    /// Executes one round of demands.
    fn run(&mut self, reqs: &[(usize, Demand)]) -> Result<Vec<Vec<T>>, ExecError>;
}

/// Steps trackers in lockstep rounds against a block executor until every
/// subscriber detaches.
fn drive<T: BlockAcc>(
    mut trackers: Vec<Tracker<T>>,
    exec: &mut dyn BlockExec<T>,
) -> Result<Vec<AdaptiveOutcome>, ExecError> {
    loop {
        let reqs: Vec<(usize, Demand)> = trackers
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.demand().map(|d| (i, d)))
            .collect();
        if reqs.is_empty() {
            break;
        }
        let blocks = exec.run(&reqs)?;
        debug_assert_eq!(blocks.len(), reqs.len());
        for (&(sub, _), block) in reqs.iter().zip(&blocks) {
            trackers[sub].absorb(block);
        }
    }
    Ok(trackers.into_iter().map(Tracker::finish).collect())
}

/// Number of [`stream::CHUNK`]-sized chunks a demand spans — the unit
/// coordinate space distributed executors partition.
pub fn demand_chunks(d: &Demand) -> usize {
    if d.count == 0 {
        0
    } else {
        stream::num_chunks(d.count, stream::CHUNK)
    }
}

/// Draws the chunk sub-range `chunks` of demand `d` through `sampler` and
/// accumulates hit counts. The one shared body behind the local parallel
/// pass and [`exec_hit_unit`], so in-process and remote units cannot
/// diverge.
fn hit_unit_into(
    sampler: &mut dyn HrSampler,
    hits: &mut Vec<u32>,
    counts: &mut [u64],
    master: u64,
    d: &Demand,
    chunks: Range<usize>,
) {
    for c in chunks {
        let mut rng = stream::chunk_rng(master, d.stream, d.first_chunk + c as u64);
        let len = stream::chunk_len(d.count, stream::CHUNK, c);
        for _ in 0..len {
            hits.clear();
            sampler.sample_hits_into(&mut rng, hits);
            for &i in hits.iter() {
                counts[i as usize] += 1;
            }
        }
    }
}

/// Executes one hit-count work unit — the chunk sub-range `chunks` of
/// demand `d` — and returns the per-hypothesis counts. Integer counts
/// merge exactly under any partition of a demand's chunks, so a
/// distributed executor may split demands into arbitrary contiguous
/// sub-ranges across backends and sum the partials in any order.
pub fn exec_hit_unit<P: HrProblem + ?Sized>(
    problem: &P,
    master: u64,
    d: &Demand,
    chunks: Range<usize>,
) -> Vec<u64> {
    let mut counts = vec![0u64; problem.num_hypotheses()];
    let mut sampler = problem.sampler();
    let mut hits = Vec::new();
    hit_unit_into(sampler.as_mut(), &mut hits, &mut counts, master, d, chunks);
    counts
}

/// The fold-group boundaries of a fractional-loss demand for a
/// `k`-hypothesis subscriber: the exact units the solo path folds
/// sequentially and merges left-to-right. A pure function of `(k,
/// d.count)` — router and shard compute identical boundaries without
/// coordination. A distributed executor must keep each unit atomic (one
/// backend folds its chunks sequentially) and merge unit partials in the
/// order returned here to reproduce the solo `f64` association order.
pub fn loss_unit_ranges(k: usize, d: &Demand) -> Vec<Range<usize>> {
    if d.count == 0 {
        return Vec::new();
    }
    let chunks = stream::num_chunks(d.count, stream::CHUNK);
    let groups = stream::f64_groups(k * std::mem::size_of::<LossAcc>());
    stream::group_bounds(chunks, groups)
}

/// Sequential body of one fractional-loss work unit, shared by the local
/// parallel pass and [`exec_loss_unit`].
fn loss_unit_into(
    sampler: &mut dyn WeightedHrSampler,
    buf: &mut Vec<(u32, f64)>,
    accs: &mut [LossAcc],
    master: u64,
    d: &Demand,
    chunks: Range<usize>,
) {
    for c in chunks {
        let mut rng = stream::chunk_rng(master, d.stream, d.first_chunk + c as u64);
        let len = stream::chunk_len(d.count, stream::CHUNK, c);
        for _ in 0..len {
            buf.clear();
            sampler.sample_losses_into(&mut rng, buf);
            for &(i, x) in buf.iter() {
                accs[i as usize].push(x);
            }
        }
    }
}

/// Executes one fractional-loss work unit — which must be exactly one
/// range from [`loss_unit_ranges`] — and returns the per-hypothesis moment
/// accumulators. The chunks fold sequentially, so the unit's partial is
/// bit-identical wherever it runs; only the *merge order across units*
/// (see [`loss_unit_ranges`]) carries association sensitivity.
pub fn exec_loss_unit<P: WeightedHrProblem + ?Sized>(
    problem: &P,
    master: u64,
    d: &Demand,
    chunks: Range<usize>,
) -> Vec<LossAcc> {
    let mut accs = vec![LossAcc::default(); problem.num_hypotheses()];
    let mut sampler = problem.sampler();
    let mut buf = Vec::new();
    loss_unit_into(sampler.as_mut(), &mut buf, &mut accs, master, d, chunks);
    accs
}

/// Executes hit-count demands as one rayon pass. Each demand's chunk range
/// is split into groups exactly like the solo path; integer counts merge
/// exactly under any grouping, so per-subscriber totals are bit-identical
/// to solo runs.
fn run_hit_blocks<'a, P: HrProblem + ?Sized>(
    problems: &[&'a P],
    master: u64,
    reqs: &[(usize, Demand)],
) -> Vec<Vec<u64>> {
    let ks: Vec<usize> = problems.iter().map(|p| p.num_hypotheses()).collect();
    // unit = (request index, chunk sub-range)
    let mut units: Vec<(usize, Range<usize>)> = Vec::new();
    for (ri, &(_, d)) in reqs.iter().enumerate() {
        if d.count == 0 {
            continue;
        }
        let chunks = stream::num_chunks(d.count, stream::CHUNK);
        for r in stream::group_bounds(chunks, stream::int_groups()) {
            units.push((ri, r));
        }
    }
    let partials: Vec<Vec<u64>> = (0..units.len())
        .into_par_iter()
        .map_init(
            || {
                let samplers: Vec<Option<Box<dyn HrSampler + 'a>>> =
                    problems.iter().map(|_| None).collect();
                (samplers, Vec::<u32>::new())
            },
            |(samplers, hits), u| {
                let (ri, range) = &units[u as usize];
                let (sub, d) = reqs[*ri];
                let mut counts = vec![0u64; ks[sub]];
                let sampler = samplers[sub].get_or_insert_with(|| problems[sub].sampler());
                hit_unit_into(
                    sampler.as_mut(),
                    hits,
                    &mut counts,
                    master,
                    &d,
                    range.clone(),
                );
                counts
            },
        )
        .collect();
    let mut totals: Vec<Vec<u64>> = reqs.iter().map(|&(s, _)| vec![0u64; ks[s]]).collect();
    for ((ri, _), part) in units.iter().zip(partials) {
        for (t, x) in totals[*ri].iter_mut().zip(part) {
            *t += x;
        }
    }
    totals
}

/// Executes weighted-loss demands as one rayon pass. Each demand keeps its
/// own solo grouping ([`loss_unit_ranges`]) and its groups merge
/// left-to-right, so the `f64` association order — and therefore the
/// bits — match a solo [`super::weighted::estimate_weighted_risks`] run.
fn run_loss_blocks<'a, P: WeightedHrProblem + ?Sized>(
    problems: &[&'a P],
    master: u64,
    reqs: &[(usize, Demand)],
) -> Vec<Vec<LossAcc>> {
    let ks: Vec<usize> = problems.iter().map(|p| p.num_hypotheses()).collect();
    let mut units: Vec<(usize, Range<usize>)> = Vec::new();
    for (ri, &(sub, d)) in reqs.iter().enumerate() {
        for r in loss_unit_ranges(ks[sub], &d) {
            units.push((ri, r));
        }
    }
    let partials: Vec<Vec<LossAcc>> = (0..units.len())
        .into_par_iter()
        .map_init(
            || {
                let samplers: Vec<Option<Box<dyn WeightedHrSampler + 'a>>> =
                    problems.iter().map(|_| None).collect();
                (samplers, Vec::<(u32, f64)>::new())
            },
            |(samplers, buf), u| {
                let (ri, range) = &units[u as usize];
                let (sub, d) = reqs[*ri];
                let mut accs = vec![LossAcc::default(); ks[sub]];
                let sampler = samplers[sub].get_or_insert_with(|| problems[sub].sampler());
                loss_unit_into(sampler.as_mut(), buf, &mut accs, master, &d, range.clone());
                accs
            },
        )
        .collect();
    // Units of one request arrive in group order; merging in unit order is
    // the same left-to-right association the solo path uses.
    let mut totals: Vec<Vec<LossAcc>> = reqs
        .iter()
        .map(|&(s, _)| vec![LossAcc::default(); ks[s]])
        .collect();
    for ((ri, _), part) in units.iter().zip(partials) {
        for (t, p) in totals[*ri].iter_mut().zip(&part) {
            t.add(p);
        }
    }
    totals
}

/// Executes hit-count demands with **shared draws**: the union of demanded
/// `(stream, chunk)` coordinates is drawn once, and every subscriber that
/// demanded a chunk scores its prefix of the chunk's artifacts.
///
/// Correctness leans on the [`SharedDraw`] contract: drawing is
/// target-independent and scoring consumes no RNG, so the first `len`
/// artifacts of a chunk are the same values a solo run would have drawn,
/// regardless of how many extra samples stricter subscribers demanded from
/// the same chunk.
fn run_shared_blocks<P: SharedDraw + ?Sized>(
    problems: &[&P],
    master: u64,
    reqs: &[(usize, Demand)],
) -> Vec<Vec<u64>> {
    let ks: Vec<usize> = problems.iter().map(|p| p.num_hypotheses()).collect();
    // (stream, chunk) → demanding (request index, samples needed).
    let mut by_chunk: BTreeMap<(u64, u64), Vec<(usize, usize)>> = BTreeMap::new();
    for (ri, &(_, d)) in reqs.iter().enumerate() {
        if d.count == 0 {
            continue;
        }
        let chunks = stream::num_chunks(d.count, stream::CHUNK);
        for c in 0..chunks {
            let len = stream::chunk_len(d.count, stream::CHUNK, c);
            by_chunk
                .entry((d.stream, d.first_chunk + c as u64))
                .or_default()
                .push((ri, len));
        }
    }
    // (stream, chunk) paired with its demanders: (request index, samples needed).
    type ChunkUnit = ((u64, u64), Vec<(usize, usize)>);
    let chunk_units: Vec<ChunkUnit> = by_chunk.into_iter().collect();
    let groups = stream::group_bounds(chunk_units.len(), stream::int_groups());
    let partials: Vec<Vec<Vec<u64>>> = (0..groups.len())
        .into_par_iter()
        .map_init(
            || (Vec::<u32>::new(), Vec::<u32>::new()), // (artifact, hits)
            |(buf, hits), gi| {
                let range = &groups[gi as usize];
                let mut counts: Vec<Vec<u64>> =
                    reqs.iter().map(|&(s, _)| vec![0u64; ks[s]]).collect();
                for u in range.clone() {
                    let ((stream_id, chunk), demanders) = &chunk_units[u];
                    let mut rng = stream::chunk_rng(master, *stream_id, *chunk);
                    let max_len = demanders.iter().map(|&(_, l)| l).max().unwrap_or(0);
                    // Any demander's problem can draw — the contract makes
                    // them interchangeable.
                    let drawer = problems[reqs[demanders[0].0].0];
                    for s in 0..max_len {
                        buf.clear();
                        drawer.draw_artifact(&mut rng, buf);
                        for &(ri, len) in demanders.iter() {
                            if s >= len {
                                continue;
                            }
                            hits.clear();
                            problems[reqs[ri].0].score_artifact(buf, hits);
                            for &i in hits.iter() {
                                counts[ri][i as usize] += 1;
                            }
                        }
                    }
                }
                counts
            },
        )
        .collect();
    let mut totals: Vec<Vec<u64>> = reqs.iter().map(|&(s, _)| vec![0u64; ks[s]]).collect();
    for part in partials {
        for (t, p) in totals.iter_mut().zip(part) {
            for (a, b) in t.iter_mut().zip(p) {
                *a += b;
            }
        }
    }
    totals
}

/// The in-process parallel executor: one fused rayon pass per round, each
/// block drawn through its own problem's sampler.
pub struct LocalExec<'a, P: HrProblem + ?Sized> {
    problems: &'a [&'a P],
    master: u64,
}

impl<'a, P: HrProblem + ?Sized> LocalExec<'a, P> {
    /// An executor drawing for `problems` under `master`.
    pub fn new(problems: &'a [&'a P], master: u64) -> Self {
        LocalExec { problems, master }
    }
}

impl<P: HrProblem + ?Sized> BlockExec<u64> for LocalExec<'_, P> {
    fn run(&mut self, reqs: &[(usize, Demand)]) -> Result<Vec<Vec<u64>>, ExecError> {
        Ok(run_hit_blocks(self.problems, self.master, reqs))
    }
}

/// The in-process shared-draw executor for [`SharedDraw`] problems.
pub struct LocalSharedExec<'a, P: SharedDraw + ?Sized> {
    problems: &'a [&'a P],
    master: u64,
}

impl<'a, P: SharedDraw + ?Sized> LocalSharedExec<'a, P> {
    /// An executor drawing for `problems` under `master`.
    pub fn new(problems: &'a [&'a P], master: u64) -> Self {
        LocalSharedExec { problems, master }
    }
}

impl<P: SharedDraw + ?Sized> BlockExec<u64> for LocalSharedExec<'_, P> {
    fn run(&mut self, reqs: &[(usize, Demand)]) -> Result<Vec<Vec<u64>>, ExecError> {
        Ok(run_shared_blocks(self.problems, self.master, reqs))
    }
}

/// The in-process fractional-loss executor.
pub struct LocalLossExec<'a, P: WeightedHrProblem + ?Sized> {
    problems: &'a [&'a P],
    master: u64,
}

impl<'a, P: WeightedHrProblem + ?Sized> LocalLossExec<'a, P> {
    /// An executor drawing for `problems` under `master`.
    pub fn new(problems: &'a [&'a P], master: u64) -> Self {
        LocalLossExec { problems, master }
    }
}

impl<P: WeightedHrProblem + ?Sized> BlockExec<LossAcc> for LocalLossExec<'_, P> {
    fn run(&mut self, reqs: &[(usize, Demand)]) -> Result<Vec<Vec<LossAcc>>, ExecError> {
        Ok(run_loss_blocks(self.problems, self.master, reqs))
    }
}

fn hit_trackers<P: HrProblem + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
) -> Vec<Tracker<u64>> {
    assert_eq!(problems.len(), cfgs.len(), "one config per subscriber");
    problems
        .iter()
        .zip(cfgs)
        .map(|(p, cfg)| {
            let n0 = pilot_budget(cfg);
            let nmax = vc_sample_bound(cfg.eps_prime, cfg.delta, p.vc_dimension().max(1)).max(n0);
            Tracker::new(p.num_hypotheses(), cfg, n0, nmax)
        })
        .collect()
}

fn loss_trackers<P: WeightedHrProblem + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
) -> Vec<Tracker<LossAcc>> {
    assert_eq!(problems.len(), cfgs.len(), "one config per subscriber");
    problems
        .iter()
        .zip(cfgs)
        .map(|(p, cfg)| {
            let k = p.num_hypotheses();
            let n0 = pilot_budget(cfg);
            let nmax = hoeffding_samples(cfg.eps_prime, cfg.delta, k).max(n0);
            Tracker::new(k, cfg, n0, nmax)
        })
        .collect()
}

/// [`estimate_risks_multi`] against a caller-supplied executor. The
/// trackers (and therefore the demand schedule) are built from `problems`
/// and `cfgs` exactly as the local path builds them; only the drawing is
/// delegated. An executor honoring the [`BlockExec`] contract yields
/// outcomes bit-identical to [`estimate_risks_multi`].
pub fn estimate_risks_multi_exec<P: HrProblem + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
    exec: &mut dyn BlockExec<u64>,
) -> Result<Vec<AdaptiveOutcome>, ExecError> {
    drive(hit_trackers(problems, cfgs), exec)
}

/// [`estimate_weighted_risks_multi`] against a caller-supplied executor —
/// the fractional-loss analogue of [`estimate_risks_multi_exec`].
pub fn estimate_weighted_risks_multi_exec<P: WeightedHrProblem + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
    exec: &mut dyn BlockExec<LossAcc>,
) -> Result<Vec<AdaptiveOutcome>, ExecError> {
    drive(loss_trackers(problems, cfgs), exec)
}

/// Batched [`super::adaptive::estimate_risks`]: one fused pass per round
/// serves every subscriber, each with its own stopping rule. Subscriber
/// `i`'s outcome is bit-identical to `estimate_risks(problems[i],
/// &cfgs[i], rng)` with an `rng` yielding the same `master`.
pub fn estimate_risks_multi<P: HrProblem + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
    master: u64,
) -> Vec<AdaptiveOutcome> {
    estimate_risks_multi_exec(problems, cfgs, &mut LocalExec::new(problems, master))
        .expect("local execution is infallible")
}

/// Batched [`super::adaptive::estimate_risks`] with shared draws (for
/// [`SharedDraw`] problems over one common sample space): overlapping
/// chunk demands are drawn once and scored by every subscriber. Same
/// bit-identity guarantee as [`estimate_risks_multi`].
pub fn estimate_risks_shared<P: SharedDraw + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
    master: u64,
) -> Vec<AdaptiveOutcome> {
    drive(
        hit_trackers(problems, cfgs),
        &mut LocalSharedExec::new(problems, master),
    )
    .expect("local execution is infallible")
}

/// Batched [`super::weighted::estimate_weighted_risks`]: the fused
/// fractional-loss analogue of [`estimate_risks_multi`].
pub fn estimate_weighted_risks_multi<P: WeightedHrProblem + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
    master: u64,
) -> Vec<AdaptiveOutcome> {
    estimate_weighted_risks_multi_exec(problems, cfgs, &mut LocalLossExec::new(problems, master))
        .expect("local execution is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A "sharded" hit executor built purely from the published unit
    /// helpers: every demand's chunks are split into contiguous per-backend
    /// sub-ranges, each unit runs through [`exec_hit_unit`] with a fresh
    /// sampler, partials sum per demand. Must be bit-identical to the
    /// local pass.
    struct SplitHitExec<'a, P: HrProblem + ?Sized> {
        problems: &'a [&'a P],
        master: u64,
        backends: usize,
    }

    impl<P: HrProblem + ?Sized> BlockExec<u64> for SplitHitExec<'_, P> {
        fn run(&mut self, reqs: &[(usize, Demand)]) -> Result<Vec<Vec<u64>>, ExecError> {
            Ok(reqs
                .iter()
                .map(|&(sub, d)| {
                    let p = self.problems[sub];
                    let mut total = vec![0u64; p.num_hypotheses()];
                    let chunks = demand_chunks(&d);
                    for r in stream::group_bounds(chunks, self.backends) {
                        for (t, x) in total.iter_mut().zip(exec_hit_unit(p, self.master, &d, r)) {
                            *t += x;
                        }
                    }
                    total
                })
                .collect())
        }
    }

    struct Fixed {
        probs: Vec<f64>,
    }

    struct FixedSampler<'a> {
        probs: &'a [f64],
    }

    impl HrSampler for FixedSampler<'_> {
        fn sample_hits_into(&mut self, rng: &mut dyn rand::RngCore, hits: &mut Vec<u32>) {
            use rand::Rng as _;
            for (i, &p) in self.probs.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    hits.push(i as u32);
                }
            }
        }
    }

    impl HrProblem for Fixed {
        fn num_hypotheses(&self) -> usize {
            self.probs.len()
        }
        fn sampler(&self) -> Box<dyn HrSampler + '_> {
            Box::new(FixedSampler { probs: &self.probs })
        }
        fn vc_dimension(&self) -> usize {
            2
        }
    }

    struct FixedLoss {
        scales: Vec<f64>,
    }

    struct FixedLossSampler<'a> {
        scales: &'a [f64],
    }

    impl WeightedHrSampler for FixedLossSampler<'_> {
        fn sample_losses_into(&mut self, rng: &mut dyn rand::RngCore, out: &mut Vec<(u32, f64)>) {
            use rand::Rng as _;
            let x: f64 = rng.gen();
            for (i, &s) in self.scales.iter().enumerate() {
                out.push((i as u32, (x * s).min(1.0)));
            }
        }
    }

    impl WeightedHrProblem for FixedLoss {
        fn num_hypotheses(&self) -> usize {
            self.scales.len()
        }
        fn sampler(&self) -> Box<dyn WeightedHrSampler + '_> {
            Box::new(FixedLossSampler {
                scales: &self.scales,
            })
        }
    }

    #[test]
    fn split_hit_exec_is_bit_identical_to_local() {
        let p1 = Fixed {
            probs: vec![0.3, 0.05],
        };
        let p2 = Fixed {
            probs: vec![0.6, 0.2, 0.01],
        };
        let problems: Vec<&Fixed> = vec![&p1, &p2];
        let cfgs = vec![
            AdaptiveConfig::new(0.05, 0.1),
            AdaptiveConfig::new(0.08, 0.1),
        ];
        let local = estimate_risks_multi(&problems, &cfgs, 42);
        for backends in [1usize, 2, 3, 7] {
            let mut exec = SplitHitExec {
                problems: &problems,
                master: 42,
                backends,
            };
            let split = estimate_risks_multi_exec(&problems, &cfgs, &mut exec).unwrap();
            for (a, b) in local.iter().zip(&split) {
                assert_eq!(a.estimates, b.estimates, "{backends} backends");
                assert_eq!(a.samples_used, b.samples_used);
                assert_eq!(a.rounds_run, b.rounds_run);
                assert_eq!(a.converged_early, b.converged_early);
                assert_eq!(a.achieved_eps.to_bits(), b.achieved_eps.to_bits());
            }
        }
    }

    #[test]
    fn split_loss_units_are_bit_identical_to_local() {
        // Unit-level check: recomputing each demand from loss_unit_ranges
        // through exec_loss_unit, merged in unit order, must reproduce the
        // engine's totals bit-for-bit (f64 association order included).
        let p = FixedLoss {
            scales: vec![0.9, 0.4, 0.1],
        };
        let problems: Vec<&FixedLoss> = vec![&p];
        let cfgs = vec![AdaptiveConfig::new(0.05, 0.1)];
        let local = estimate_weighted_risks_multi(&problems, &cfgs, 7);

        struct UnitExec<'a> {
            problems: &'a [&'a FixedLoss],
            master: u64,
        }
        impl BlockExec<LossAcc> for UnitExec<'_> {
            fn run(&mut self, reqs: &[(usize, Demand)]) -> Result<Vec<Vec<LossAcc>>, ExecError> {
                Ok(reqs
                    .iter()
                    .map(|&(sub, d)| {
                        let p = self.problems[sub];
                        let k = p.num_hypotheses();
                        let mut total = vec![LossAcc::default(); k];
                        for r in loss_unit_ranges(k, &d) {
                            let part = exec_loss_unit(p, self.master, &d, r);
                            for (t, x) in total.iter_mut().zip(&part) {
                                t.add(x);
                            }
                        }
                        total
                    })
                    .collect())
            }
        }
        let mut exec = UnitExec {
            problems: &problems,
            master: 7,
        };
        let split = estimate_weighted_risks_multi_exec(&problems, &cfgs, &mut exec).unwrap();
        for (a, b) in local.iter().zip(&split) {
            assert_eq!(a.samples_used, b.samples_used);
            for (x, y) in a.estimates.iter().zip(&b.estimates) {
                assert_eq!(x.to_bits(), y.to_bits(), "f64 association order diverged");
            }
            assert_eq!(a.achieved_eps.to_bits(), b.achieved_eps.to_bits());
        }
    }

    #[test]
    fn exec_error_propagates_out_of_drive() {
        struct Failing;
        impl BlockExec<u64> for Failing {
            fn run(&mut self, _reqs: &[(usize, Demand)]) -> Result<Vec<Vec<u64>>, ExecError> {
                Err(ExecError("backend down".into()))
            }
        }
        let p = Fixed { probs: vec![0.5] };
        let problems: Vec<&Fixed> = vec![&p];
        let cfgs = vec![AdaptiveConfig::new(0.1, 0.1)];
        let err = estimate_risks_multi_exec(&problems, &cfgs, &mut Failing).unwrap_err();
        assert!(err.0.contains("backend down"));
        assert!(err.to_string().contains("block execution failed"));
    }
}
